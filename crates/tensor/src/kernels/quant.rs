//! Low-precision numeric primitives: per-channel symmetric int8
//! quantization and f16 (IEEE binary16) storage conversion.
//!
//! Two reduced-precision paths share these helpers (DESIGN.md §3l):
//!
//! * **int8**: values are mapped to `[-127, 127]` with one scale per
//!   channel (`scale = amax / 127`, zero point 0). Quantized panels store
//!   the int8-range values as `i16` — the [`q8_microkernel`] reduce idiom
//!   compiles to `vpmaddwd`, which consumes 16-bit lanes, and an `i8` load
//!   with sign-extend on the critical path measured ~2× slower; `i16`
//!   still halves the weight traffic of f32.
//! * **f16**: storage-only — bits are expanded back to f32 before (or
//!   while) the f32 microkernel consumes them, so accumulation stays f32.
//!   The converters are branch-poor integer bit manipulation shaped to
//!   auto-vectorize; subnormal f16 magnitudes (< 2⁻¹⁴ ≈ 6.1e-5) are
//!   flushed to zero on encode so decode never needs the subnormal path.
//!
//! Everything here takes caller-provided slices and never allocates — this
//! file sits inside the hot-path-alloc lint scope with the other kernels.
//!
//! [`q8_microkernel`]: crate::kernels::microkernel::q8_microkernel

/// Largest absolute value in `xs` (0.0 for an empty slice; NaN-free inputs
/// assumed, as everywhere in the kernels).
pub fn amax(xs: &[f32]) -> f32 {
    xs.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
}

/// Symmetric int8 scale pair for a channel with the given `amax`:
/// `(scale, inv_scale)` with `scale = amax / 127` and
/// `inv_scale = 127 / amax` (both 0 for an all-zero channel, which
/// quantizes to all zeros and dequantizes back to exact zeros).
#[inline]
pub fn quant_scales(amax: f32) -> (f32, f32) {
    if amax > 0.0 {
        (amax / 127.0, 127.0 / amax)
    } else {
        (0.0, 0.0)
    }
}

/// Quantize one value: round-to-nearest, clamped to the int8 range.
#[inline(always)]
pub fn quantize1(v: f32, inv_scale: f32) -> i16 {
    (v * inv_scale).round().clamp(-127.0, 127.0) as i16
}

/// Quantize a channel into `out[..src.len()]`, zero-filling the rest
/// (the K padding the [`q8_microkernel`] dot runs over).
///
/// [`q8_microkernel`]: crate::kernels::microkernel::q8_microkernel
pub fn quantize_channel_into(src: &[f32], inv_scale: f32, out: &mut [i16]) {
    let (body, pad) = out.split_at_mut(src.len());
    for (o, &v) in body.iter_mut().zip(src) {
        *o = quantize1(v, inv_scale);
    }
    pad.fill(0);
}

/// Convert one f32 to f16 bits: round-to-nearest-even, overflow clamped to
/// ±65504 (the largest finite f16), subnormal magnitudes flushed to ±0.
/// The clamp also maps NaN to the max finite value — acceptable here
/// because quantized weights are finite by construction.
#[inline(always)]
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let b = x.to_bits();
    let sign = ((b >> 16) & 0x8000) as u16;
    let em = b & 0x7FFF_FFFF;
    if em >= 0x477F_F000 {
        // ≥ 65520 would round to f16 infinity; saturate instead.
        return sign | 0x7BFF;
    }
    if em < 0x3880_0000 {
        // Below the smallest normal f16 (2⁻¹⁴): flush to zero.
        return sign;
    }
    // Re-bias the exponent by -112 and shift the mantissa down 13 bits,
    // with round-to-nearest-even carried by integer addition (a mantissa
    // carry naturally increments the exponent field).
    let rounded = em + 0xFFF + ((em >> 13) & 1);
    sign | ((rounded - 0x3800_0000) >> 13) as u16
}

/// Convert f16 bits produced by [`f32_to_f16_bits`] back to f32. Only
/// zeros and normal numbers can have been stored, so the subnormal /
/// infinity / NaN decode paths are unnecessary and the body lowers to
/// branch-free selects that auto-vectorize.
#[inline(always)]
pub fn f16_bits_to_f32(bits: u16) -> f32 {
    let sign = ((bits as u32) & 0x8000) << 16;
    let em = (bits as u32) & 0x7FFF;
    let mag = if em == 0 { 0 } else { (em << 13) + 0x3800_0000 };
    f32::from_bits(sign | mag)
}

/// Expand a slice of f16 bits into f32 (`out.len() == bits.len()`): the
/// block converter the f16 GEMM paths use to reuse the f32 packed-panel
/// microkernel unchanged.
pub fn expand_f16_into(bits: &[u16], out: &mut [f32]) {
    assert_eq!(bits.len(), out.len(), "expand_f16: length mismatch");
    for (o, &b) in out.iter_mut().zip(bits) {
        *o = f16_bits_to_f32(b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amax_and_scales() {
        assert_eq!(amax(&[]), 0.0);
        assert_eq!(amax(&[-3.0, 2.0, 0.5]), 3.0);
        let (s, inv) = quant_scales(254.0);
        assert_eq!(s, 2.0);
        assert_eq!(inv, 0.5);
        assert_eq!(quant_scales(0.0), (0.0, 0.0));
    }

    #[test]
    fn quantize_channel_rounds_clamps_and_pads() {
        let src = [1.0f32, -1.0, 0.4, -0.6, 0.0];
        let mut out = [99i16; 8];
        // amax 1.0 → inv_scale 127.
        quantize_channel_into(&src, 127.0, &mut out);
        assert_eq!(&out[..5], &[127, -127, 51, -76, 0]);
        assert_eq!(&out[5..], &[0, 0, 0]);
        // Values above amax (possible only through misuse) clamp.
        let mut out2 = [0i16; 1];
        quantize_channel_into(&[10.0], 127.0, &mut out2);
        assert_eq!(out2[0], 127);
    }

    #[test]
    fn f16_roundtrip_exact_values() {
        // Values exactly representable in f16 survive the round trip.
        for v in [0.0f32, -0.0, 1.0, -1.0, 0.5, 65504.0, -65504.0, 0.099976] {
            let back = f16_bits_to_f32(f32_to_f16_bits(v));
            let rel = if v == 0.0 {
                back.abs()
            } else {
                ((back - v) / v).abs()
            };
            assert!(rel <= 1.0 / 1024.0, "{v} -> {back}");
        }
    }

    #[test]
    fn f16_rounds_to_nearest_even() {
        // 1 + 2⁻¹¹ is exactly between 1.0 and the next f16 (1 + 2⁻¹⁰):
        // nearest-even picks 1.0 (even mantissa).
        let x = 1.0 + f32::powi(2.0, -11);
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(x)), 1.0);
        // Just above the midpoint rounds up.
        let x = 1.0 + f32::powi(2.0, -11) + f32::powi(2.0, -13);
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(x)), 1.0 + f32::powi(2.0, -10));
    }

    #[test]
    fn f16_overflow_saturates_and_subnormals_flush() {
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(1e9)), 65504.0);
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(-1e9)), -65504.0);
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(1e-6)), 0.0);
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(-1e-6)), -0.0);
        // The smallest normal f16 survives.
        let tiny = f32::powi(2.0, -14);
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(tiny)), tiny);
    }

    #[test]
    fn expand_matches_scalar_convert() {
        let vals = [3.25f32, -0.125, 100.0, 0.0, -7.5];
        let bits: Vec<u16> = vals.iter().map(|&v| f32_to_f16_bits(v)).collect();
        let mut out = vec![0.0f32; bits.len()];
        expand_f16_into(&bits, &mut out);
        assert_eq!(out, vals);
    }
}
