//! Cross-crate integration: every engine × serving design runs the full
//! producer → broker → engine → broker → consumer pipeline correctly.

use std::time::Duration;

use crayfish::prelude::*;

fn quick_spec(serving: ServingChoice) -> ExperimentSpec {
    let mut spec = ExperimentSpec::quick(ModelSpec::TinyMlp, serving);
    spec.workload = Workload::Constant { rate: 300.0 };
    spec.duration = Duration::from_millis(1500);
    spec.mp = 2;
    spec
}

fn check(result: &crayfish::framework::ExperimentResult, label: &str) {
    assert!(
        result.consumed > 30,
        "{label}: only {} consumed",
        result.consumed
    );
    assert!(
        result.consumed as u64 <= result.produced,
        "{label}: consumed {} > produced {}",
        result.consumed,
        result.produced
    );
    // Every scored batch is unique (no duplication anywhere in the path).
    let mut ids: Vec<u64> = result.samples.iter().map(|s| s.id).collect();
    let n = ids.len();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), n, "{label}: duplicate batch ids");
    // Latencies are positive and sane.
    assert!(result.latency.count > 0, "{label}: empty summary");
    assert!(result.latency.min >= 0.0, "{label}: negative latency");
    assert!(
        result.latency.p99 < 30_000.0,
        "{label}: p99 {}",
        result.latency.p99
    );
    assert!(result.throughput_eps > 0.0, "{label}");
}

#[test]
fn all_engines_with_embedded_onnx() {
    for (name, processor) in registry::all_processors() {
        let spec = quick_spec(ServingChoice::Embedded {
            lib: EmbeddedLib::Onnx,
            device: Device::Cpu,
        });
        let result =
            run_experiment(processor.as_ref(), &spec).unwrap_or_else(|e| panic!("{name}: {e}"));
        check(&result, name);
    }
}

#[test]
fn all_engines_with_external_tf_serving() {
    for (name, processor) in registry::all_processors() {
        let spec = quick_spec(ServingChoice::External {
            kind: ExternalKind::TfServing,
            device: Device::Cpu,
        });
        let result =
            run_experiment(processor.as_ref(), &spec).unwrap_or_else(|e| panic!("{name}: {e}"));
        check(&result, name);
    }
}

#[test]
fn flink_with_every_embedded_library() {
    for lib in EmbeddedLib::ALL {
        let spec = quick_spec(ServingChoice::Embedded {
            lib,
            device: Device::Cpu,
        });
        let result = run_experiment(&FlinkProcessor::new(), &spec)
            .unwrap_or_else(|e| panic!("{}: {e}", lib.name()));
        check(&result, lib.name());
    }
}

#[test]
fn flink_with_every_external_server() {
    for kind in ExternalKind::ALL {
        let spec = quick_spec(ServingChoice::External {
            kind,
            device: Device::Cpu,
        });
        let result = run_experiment(&FlinkProcessor::new(), &spec)
            .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
        check(&result, kind.name());
    }
}

#[test]
fn flink_operator_level_parallelism_pipeline() {
    let spec = quick_spec(ServingChoice::Embedded {
        lib: EmbeddedLib::Onnx,
        device: Device::Cpu,
    });
    let mut options = FlinkOptions::operator_level(8, 8);
    options.buffer_timeout = Duration::from_millis(5);
    let processor = FlinkProcessor::with_options(options);
    let result = run_experiment(&processor, &spec).unwrap();
    check(&result, "flink[8-N-8]");
}

#[test]
fn batched_events_flow_through() {
    let mut spec = quick_spec(ServingChoice::Embedded {
        lib: EmbeddedLib::SavedModel,
        device: Device::Cpu,
    });
    spec.bsz = 16;
    spec.workload = Workload::Constant { rate: 100.0 };
    let result = run_experiment(&KStreamsProcessor::new(), &spec).unwrap();
    check(&result, "kstreams bsz=16");
}
