//! The broker API seam: one trait covering every operation the client
//! abstractions ([`crate::Producer`], [`crate::PartitionConsumer`],
//! [`crate::GroupConsumer`]) need from a broker.
//!
//! Two implementations exist: the in-process [`Broker`] (this crate's
//! original single-process cluster model) and [`crate::rpc::RemoteBroker`],
//! which speaks the same operations as typed RPCs over a
//! [`crayfish_net::Transport`]. Clients are written against
//! `Arc<dyn BrokerApi>`, so the same producer/consumer code runs unchanged
//! whether the broker lives in the same process or across a socket —
//! the in-proc/TCP equivalence the transport drills assert.
//!
//! Every method returns [`crate::Result`], including operations that are
//! infallible in-process (`commit_offset`, `join_group`, …): over a wire
//! they can fail with [`crate::BrokerError::Transport`], and the error
//! taxonomy must be identical on both sides of the seam.

use std::collections::HashMap;
use std::time::Duration;

use bytes::Bytes;

use crayfish_sim::NetworkModel;

use crate::broker::Broker;
use crate::replication::ReplicationStatus;
use crate::topic::FetchedRecord;
use crate::Result;

/// Everything a broker client can ask of a broker, local or remote.
pub trait BrokerApi: Send + Sync + std::fmt::Debug {
    /// Create a topic with `partitions` partitions and default retention.
    fn create_topic(&self, name: &str, partitions: u32) -> Result<()>;

    /// Create a topic with an explicit per-partition retention cap.
    fn create_topic_with_retention(
        &self,
        name: &str,
        partitions: u32,
        retention_bytes: usize,
    ) -> Result<()>;

    /// Delete a topic.
    fn delete_topic(&self, name: &str) -> Result<()>;

    /// Number of partitions of a topic.
    fn partitions(&self, topic: &str) -> Result<u32>;

    /// Offset of the earliest retained record of a partition.
    fn earliest_offset(&self, topic: &str, partition: u32) -> Result<u64>;

    /// Visible (committed) end offset of one partition.
    fn end_offset(&self, topic: &str, partition: u32) -> Result<u64>;

    /// Sum of committed end offsets across all partitions.
    fn total_records(&self, topic: &str) -> Result<u64>;

    /// Append records; returns the first assigned offset and the
    /// `LogAppendTime` stamp.
    fn append(&self, topic: &str, partition: u32, values: Vec<(Bytes, f64)>) -> Result<(u64, f64)>;

    /// Idempotent append fenced by producer id + sequence number.
    fn append_dedup(
        &self,
        topic: &str,
        partition: u32,
        producer_id: u64,
        first_seq: u64,
        values: Vec<(Bytes, f64)>,
    ) -> Result<(u64, f64)>;

    /// Read committed records from one partition.
    fn read(
        &self,
        topic: &str,
        partition: u32,
        offset: u64,
        max_records: usize,
        max_bytes: usize,
    ) -> Result<Vec<FetchedRecord>>;

    /// Replication status of every partition of a topic.
    fn replication_status(&self, topic: &str) -> Result<Vec<ReplicationStatus>>;

    /// Commit a consumer group's next-offset for a partition (monotonic).
    fn commit_offset(&self, group: &str, topic: &str, partition: u32, next: u64) -> Result<()>;

    /// The committed next-offset for a group/partition (0 if none).
    fn committed_offset(&self, group: &str, topic: &str, partition: u32) -> Result<u64>;

    /// Total consumer lag of a group over a topic.
    fn group_lag(&self, group: &str, topic: &str) -> Result<u64>;

    /// Join a consumer group; returns the generation joined at.
    fn join_group(&self, group: &str, member: &str) -> Result<u64>;

    /// Leave a consumer group.
    fn leave_group(&self, group: &str, member: &str) -> Result<()>;

    /// Current generation of a group (0 if never joined).
    fn group_generation(&self, group: &str) -> Result<u64>;

    /// The partitions of `topic` assigned to `member` under the group's
    /// current generation.
    fn group_assignment(&self, group: &str, topic: &str, member: &str) -> Result<Vec<u32>>;

    /// Commit a member's offsets, fenced by its generation.
    fn commit_offsets_fenced(
        &self,
        group: &str,
        topic: &str,
        member: &str,
        generation: u64,
        offsets: &HashMap<u32, u64>,
    ) -> Result<()>;

    /// Current long-poll version counter of a topic (bumped per append).
    fn topic_version(&self, topic: &str) -> Result<u64>;

    /// Block until the topic's version exceeds `seen` or the timeout
    /// passes; returns the version last observed.
    fn wait_for_data(&self, topic: &str, seen: u64, timeout: Duration) -> Result<u64>;

    /// The observability handle clients of this broker record into.
    fn obs(&self) -> &crayfish_obs::ObsHandle;

    /// The chaos handle clients of this broker consult for fault windows.
    fn chaos(&self) -> &crayfish_chaos::ChaosHandle;

    /// The modelled network clients of this broker should apply per
    /// request. Remote brokers return [`NetworkModel::zero`]: their cost is
    /// the real wire.
    fn network(&self) -> NetworkModel;
}

impl BrokerApi for Broker {
    fn create_topic(&self, name: &str, partitions: u32) -> Result<()> {
        Broker::create_topic(self, name, partitions)
    }

    fn create_topic_with_retention(
        &self,
        name: &str,
        partitions: u32,
        retention_bytes: usize,
    ) -> Result<()> {
        Broker::create_topic_with_retention(self, name, partitions, retention_bytes)
    }

    fn delete_topic(&self, name: &str) -> Result<()> {
        Broker::delete_topic(self, name)
    }

    fn partitions(&self, topic: &str) -> Result<u32> {
        Broker::partitions(self, topic)
    }

    fn earliest_offset(&self, topic: &str, partition: u32) -> Result<u64> {
        Broker::earliest_offset(self, topic, partition)
    }

    fn end_offset(&self, topic: &str, partition: u32) -> Result<u64> {
        Broker::end_offset(self, topic, partition)
    }

    fn total_records(&self, topic: &str) -> Result<u64> {
        Broker::total_records(self, topic)
    }

    fn append(&self, topic: &str, partition: u32, values: Vec<(Bytes, f64)>) -> Result<(u64, f64)> {
        Broker::append(self, topic, partition, values)
    }

    fn append_dedup(
        &self,
        topic: &str,
        partition: u32,
        producer_id: u64,
        first_seq: u64,
        values: Vec<(Bytes, f64)>,
    ) -> Result<(u64, f64)> {
        Broker::append_dedup(self, topic, partition, producer_id, first_seq, values)
    }

    fn read(
        &self,
        topic: &str,
        partition: u32,
        offset: u64,
        max_records: usize,
        max_bytes: usize,
    ) -> Result<Vec<FetchedRecord>> {
        Broker::read(self, topic, partition, offset, max_records, max_bytes)
    }

    fn replication_status(&self, topic: &str) -> Result<Vec<ReplicationStatus>> {
        Broker::replication_status(self, topic)
    }

    fn commit_offset(&self, group: &str, topic: &str, partition: u32, next: u64) -> Result<()> {
        Broker::commit_offset(self, group, topic, partition, next);
        Ok(())
    }

    fn committed_offset(&self, group: &str, topic: &str, partition: u32) -> Result<u64> {
        Ok(Broker::committed_offset(self, group, topic, partition))
    }

    fn group_lag(&self, group: &str, topic: &str) -> Result<u64> {
        Broker::group_lag(self, group, topic)
    }

    fn join_group(&self, group: &str, member: &str) -> Result<u64> {
        Ok(Broker::join_group(self, group, member))
    }

    fn leave_group(&self, group: &str, member: &str) -> Result<()> {
        Broker::leave_group(self, group, member);
        Ok(())
    }

    fn group_generation(&self, group: &str) -> Result<u64> {
        Ok(Broker::group_generation(self, group))
    }

    fn group_assignment(&self, group: &str, topic: &str, member: &str) -> Result<Vec<u32>> {
        Broker::group_assignment(self, group, topic, member)
    }

    fn commit_offsets_fenced(
        &self,
        group: &str,
        topic: &str,
        member: &str,
        generation: u64,
        offsets: &HashMap<u32, u64>,
    ) -> Result<()> {
        Broker::commit_offsets_fenced(self, group, topic, member, generation, offsets)
    }

    fn topic_version(&self, topic: &str) -> Result<u64> {
        Ok(self.topic(topic)?.current_version())
    }

    fn wait_for_data(&self, topic: &str, seen: u64, timeout: Duration) -> Result<u64> {
        Ok(self.topic(topic)?.wait_for_data(seen, timeout))
    }

    fn obs(&self) -> &crayfish_obs::ObsHandle {
        Broker::obs(self)
    }

    fn chaos(&self) -> &crayfish_chaos::ChaosHandle {
        Broker::chaos(self)
    }

    fn network(&self) -> NetworkModel {
        Broker::network(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn broker_coerces_to_the_api_object() {
        let b: Arc<dyn BrokerApi> = Broker::new(NetworkModel::zero());
        b.create_topic("t", 2).unwrap();
        assert_eq!(b.partitions("t").unwrap(), 2);
        let (off, _) = b
            .append("t", 0, vec![(Bytes::from_static(b"x"), 0.0)])
            .unwrap();
        assert_eq!(off, 0);
        assert_eq!(b.topic_version("t").unwrap(), 1);
        assert_eq!(b.read("t", 0, 0, 10, usize::MAX).unwrap().len(), 1);
        assert_eq!(b.wait_for_data("t", 0, Duration::ZERO).unwrap(), 1);
    }
}
