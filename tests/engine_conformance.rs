//! Engine-kernel conformance: every engine personality — including the
//! unchained Flink variant — must exhibit the kernel's delivery semantics
//! (no lost records across injected worker crashes, commit lag draining to
//! zero, supervised restarts resuming from the committed offsets, graceful
//! stop) for both serving modes, while still exercising its own observable
//! personality marker.

use std::sync::Arc;
use std::time::Duration;

use crayfish::broker::Broker;
use crayfish::chaos::{poll_until, ChaosHandle};
use crayfish::flink::{FlinkOptions, FlinkProcessor};
use crayfish::framework::batch::testkit::{distinct_ids, drain_distinct, feed_range, onnx_ctx};
use crayfish::framework::scoring::ScorerSpec;
use crayfish::framework::DataProcessor;
use crayfish::kstreams::KStreamsProcessor;
use crayfish::models::tiny;
use crayfish::obs::ObsHandle;
use crayfish::ray::RayProcessor;
use crayfish::runtime::{Device, EmbeddedLib};
use crayfish::serving::{ExternalKind, ServingConfig};
use crayfish::sim::NetworkModel;
use crayfish::sparkss::SparkProcessor;

/// The conformance matrix rows: each engine variant with the obs counter
/// that proves its personality actually ran (kernel commits for the
/// full-chain engines, exchange buffers for unchained Flink, micro-batches
/// for Spark, object-store hops for Ray).
fn engines() -> Vec<(&'static str, Box<dyn DataProcessor>, &'static str)> {
    let unchained = FlinkOptions {
        buffer_timeout: Duration::from_millis(5),
        ..FlinkOptions::operator_level(2, 2)
    };
    vec![
        (
            "flink",
            Box::new(FlinkProcessor::new()) as Box<dyn DataProcessor>,
            "engine_commits",
        ),
        (
            "flink[2-N-2]",
            Box::new(FlinkProcessor::with_options(unchained)),
            "flink_exchange_buffers",
        ),
        (
            "kstreams",
            Box::new(KStreamsProcessor::new()),
            "engine_commits",
        ),
        (
            "sparkss",
            Box::new(SparkProcessor::new()),
            "spark_microbatches",
        ),
        (
            "ray",
            Box::new(RayProcessor::new()),
            "ray_object_store_transfers",
        ),
    ]
}

/// Run one engine × serving cell through the conformance checklist.
fn conform(name: &str, processor: &dyn DataProcessor, scorer: ScorerSpec, marker: &str) {
    let obs = ObsHandle::enabled();
    let chaos = ChaosHandle::enabled();
    let broker = Broker::with_parts(NetworkModel::zero(), obs.clone(), chaos.clone());
    let mut ctx = onnx_ctx(broker.clone(), 8, 2);
    ctx.scorer = scorer;
    let job = processor.start(ctx).unwrap();

    // Half the load, then crash every supervised worker once, then the
    // rest: restarts must resume from the committed offsets with nothing
    // lost (at-least-once — duplicates are legal, gaps are not).
    feed_range(broker.as_ref(), "in", 8, 0, 25);
    let first = drain_distinct(broker.as_ref(), "out", 8, 25, Duration::from_secs(15));
    assert_eq!(
        distinct_ids(&first).len(),
        25,
        "{name}: records lost before any fault"
    );
    chaos.inject_worker_crashes(2);
    feed_range(broker.as_ref(), "in", 8, 25, 50);
    let scored = drain_distinct(broker.as_ref(), "out", 8, 50, Duration::from_secs(20));
    assert_eq!(
        distinct_ids(&scored).len(),
        50,
        "{name}: records lost across worker crashes"
    );

    // The commit lag drains to zero once the backlog is scored.
    assert!(
        poll_until(Duration::from_secs(10), || {
            broker.group_lag("sut", "in").unwrap() == 0
        }),
        "{name}: commit lag never drained"
    );

    // The crashes really hit supervised kernel workers. A crash token can
    // be consumed on the idle cycle *after* the final commit, in which
    // case the restart counter only moves once the supervisor's backoff
    // elapses — poll rather than sampling the counter instantly.
    assert!(
        poll_until(Duration::from_secs(5), || {
            obs.counter("worker_restarts").get() >= 1
        }),
        "{name}: no supervised restart observed"
    );
    // ...and the engine's own personality was exercised, not bypassed.
    assert!(
        obs.counter(marker).get() > 0,
        "{name}: personality marker {marker} never moved"
    );

    // Graceful stop: joins promptly, and nothing is fetched afterwards.
    job.stop();
    let settled = broker.total_records("out").unwrap();
    feed_range(broker.as_ref(), "in", 8, 50, 55);
    std::thread::sleep(Duration::from_millis(150));
    assert_eq!(
        broker.total_records("out").unwrap(),
        settled,
        "{name}: output produced after stop"
    );
}

#[test]
fn all_engines_conform_with_embedded_onnx() {
    for (name, processor, marker) in engines() {
        let scorer = ScorerSpec::Embedded {
            lib: EmbeddedLib::Onnx,
            graph: Arc::new(tiny::tiny_mlp(1)),
            device: Device::Cpu,
        };
        conform(name, processor.as_ref(), scorer, marker);
    }
}

#[test]
fn all_engines_conform_with_external_tf_serving() {
    let graph = tiny::tiny_mlp(1);
    let server = ExternalKind::TfServing
        .start(&graph, ServingConfig::default())
        .unwrap();
    for (name, processor, marker) in engines() {
        let scorer = ScorerSpec::External {
            kind: ExternalKind::TfServing,
            addr: server.addr(),
            network: NetworkModel::zero(),
        };
        conform(name, processor.as_ref(), scorer, marker);
    }
    server.shutdown();
}
