//! Failure injection across crate boundaries: engines must degrade
//! gracefully, never hang or panic, when parts of the fabric disappear.

use std::sync::Arc;
use std::time::Duration;

use crayfish::broker::Broker;
use crayfish::chaos::poll_until;
use crayfish::framework::batch::CrayfishDataBatch;
use crayfish::framework::scoring::ScorerSpec;
use crayfish::framework::{DataProcessor, ProcessorContext};
use crayfish::models::tiny;
use crayfish::prelude::*;
use crayfish::serving::ServingConfig;
use crayfish::sim::now_millis_f64;
use crayfish::tensor::Tensor;

fn ctx_with(broker: Arc<Broker>, scorer: ScorerSpec) -> ProcessorContext {
    broker.create_topic("in", 4).unwrap();
    broker.create_topic("out", 4).unwrap();
    ProcessorContext {
        broker,
        input_topic: "in".into(),
        output_topic: "out".into(),
        group: "sut".into(),
        scorer,
        mp: 2,
    }
}

fn feed(broker: &Broker, n: u64) {
    for id in 0..n {
        let t = Tensor::seeded_uniform([1, 8, 8], id, 0.0, 1.0);
        let payload = CrayfishDataBatch::from_tensor(id, now_millis_f64(), &t)
            .encode()
            .unwrap();
        broker
            .append("in", (id % 4) as u32, vec![(payload, 0.0)])
            .unwrap();
    }
}

fn embedded(broker: &Arc<Broker>) -> ProcessorContext {
    ctx_with(
        broker.clone(),
        ScorerSpec::Embedded {
            lib: EmbeddedLib::Onnx,
            graph: Arc::new(tiny::tiny_mlp(1)),
            device: Device::Cpu,
        },
    )
}

#[test]
fn input_topic_deleted_mid_run_stops_cleanly() {
    for (name, processor) in registry::all_processors() {
        let broker = Broker::new(NetworkModel::zero());
        let ctx = embedded(&broker);
        let job = processor.start(ctx).unwrap();
        feed(&broker, 10);
        // Wait (bounded) for output to start flowing before pulling the rug.
        assert!(
            poll_until(Duration::from_secs(10), || {
                broker.total_records("out").unwrap() >= 1
            }),
            "{name}: no output before topic deletion"
        );
        broker.delete_topic("in").unwrap();
        // Tasks observe the error and exit; stop must not hang.
        job.stop();
        assert!(broker.total_records("out").unwrap() >= 1, "{name}");
    }
}

#[test]
fn output_topic_deleted_mid_run_stops_cleanly() {
    let broker = Broker::new(NetworkModel::zero());
    let ctx = embedded(&broker);
    let job = FlinkProcessor::new().start(ctx).unwrap();
    feed(&broker, 5);
    assert!(
        poll_until(Duration::from_secs(10), || {
            broker.total_records("out").unwrap() >= 5
        }),
        "no output before topic deletion"
    );
    broker.delete_topic("out").unwrap();
    feed(&broker, 5);
    // Give the tasks a beat to hit the dead topic, then stop must not hang.
    std::thread::sleep(Duration::from_millis(100));
    job.stop();
}

#[test]
fn external_server_dying_mid_run_does_not_hang_the_engine() {
    let broker = Broker::new(NetworkModel::zero());
    let graph = tiny::tiny_mlp(1);
    let server = ExternalKind::TfServing
        .start(&graph, ServingConfig::default())
        .unwrap();
    let ctx = ctx_with(
        broker.clone(),
        ScorerSpec::External {
            kind: ExternalKind::TfServing,
            addr: server.addr(),
            network: NetworkModel::zero(),
        },
    );
    let job = KStreamsProcessor::new().start(ctx).unwrap();
    feed(&broker, 10);
    assert!(
        poll_until(Duration::from_secs(10), || {
            broker.total_records("out").unwrap() >= 10
        }),
        "engine never scored the initial batch"
    );
    // Kill the server, keep feeding: scoring fails, the supervisor keeps
    // restarting the worker against the dead address, and stop() must not
    // hang mid-backoff.
    server.shutdown();
    feed(&broker, 10);
    std::thread::sleep(Duration::from_millis(300));
    job.stop();
}

#[test]
fn scorer_connection_failure_at_startup_is_an_error() {
    let broker = Broker::new(NetworkModel::zero());
    // Nothing listens on this address.
    let addr: std::net::SocketAddr = "127.0.0.1:1".parse().unwrap();
    let ctx = ctx_with(
        broker,
        ScorerSpec::External {
            kind: ExternalKind::TfServing,
            addr,
            network: NetworkModel::zero(),
        },
    );
    let err = FlinkProcessor::new().start(ctx).err();
    assert!(err.is_some(), "expected startup failure");
}
