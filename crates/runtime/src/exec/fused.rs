//! The graph-optimised executor (ONNX-Runtime-style).
//!
//! At load time the graph is compiled into a plan:
//!
//! * **Conv + BatchNorm folding** — a batch-norm that solely consumes a
//!   convolution is folded into the convolution's weights and bias, removing
//!   an entire pass over the activation.
//! * **ReLU fusion** — a ReLU that solely consumes a conv/dense/add/bn step
//!   is applied in that step's output loop instead of a separate pass.
//! * **Weight pre-packing** — conv and dense weight matrices are packed
//!   into the blocked GEMM's strip layout once, here, so steady-state
//!   inference performs zero weight packing (conv weights as [`PackedA`],
//!   dense weights as [`PackedB`]; batch-norm folding rescales the packed
//!   panels in place).
//! * **Arena reuse** — per-step output buffers, the `im2col` scratch, and
//!   the GEMM packing scratch are allocated once and reused across calls,
//!   so the steady-state hot path does not touch the allocator.
//!
//! These are the real optimisations ONNX Runtime's graph optimiser performs,
//! and they are why the paper measures ONNX as the fastest embedded option.

use crayfish_tensor::kernels::conv::{conv2d_dispatch_into, Conv2dParams};
use crayfish_tensor::kernels::gemm::dense_dispatch_into;
use crayfish_tensor::kernels::quant::amax;
use crayfish_tensor::kernels::{activation, add_inplace, pool};
use crayfish_tensor::{
    ConvWeights, DenseWeights, GemmScratch, NnGraph, Op, PackedA, PackedA16, PackedB, PackedB16,
    QuantizedA, QuantizedB, Shape, Tensor,
};

use crate::error::RuntimeError;
use crate::exec::check_batched_input;
use crate::precision::{LayerReport, Precision, PrecisionReport, QuantConfig};
use crate::Result;

/// A compiled step's operation.
#[derive(Debug, Clone)]
enum FusedOp {
    Input,
    Conv {
        /// `[out_c, in_c*k*k]` weight, packed (and possibly quantized) at
        /// plan-compile time.
        w: ConvWeights,
        bias: Vec<f32>,
        params: Conv2dParams,
        relu: bool,
    },
    Dense {
        /// `[inf, outf]` weight, packed (and possibly quantized) at
        /// plan-compile time.
        w: DenseWeights,
        bias: Vec<f32>,
        outf: usize,
        relu: bool,
    },
    BatchNorm {
        scale: Vec<f32>,
        shift: Vec<f32>,
        relu: bool,
    },
    MaxPool {
        k: usize,
        s: usize,
        pad: usize,
    },
    Gap,
    Add {
        relu: bool,
    },
    Flatten,
    Relu,
    Softmax,
}

impl FusedOp {
    /// Whether this step launches a compute kernel (used by the GPU model).
    fn is_kernel(&self) -> bool {
        !matches!(self, FusedOp::Input | FusedOp::Flatten)
    }
}

/// A candidate weight operand produced by the quantization post-pass,
/// tagged by the step kind it replaces.
enum StepWeights {
    Conv(ConvWeights),
    Dense(DenseWeights),
}

#[derive(Debug, Clone)]
struct Step {
    name: String,
    op: FusedOp,
    inputs: Vec<usize>,
    /// Per-item output shape (batch dimension stripped).
    item_shape: Shape,
}

/// The compiled, arena-backed executor.
#[derive(Debug)]
pub struct FusedExec {
    steps: Vec<Step>,
    output_step: usize,
    input_shape: Shape,
    per_item_flops: u64,
    buffers: Vec<Vec<f32>>,
    col_scratch: Vec<f32>,
    gemm_scratch: GemmScratch,
    report: PrecisionReport,
}

impl FusedExec {
    /// Compile `graph` into a fused plan at full (f32) precision.
    pub fn new(graph: &NnGraph) -> Result<Self> {
        Self::with_precision(graph, QuantConfig::default())
    }

    /// Compile `graph` at the requested precision: the f32 plan is built
    /// first (so Conv+BN folding happens *before* quantization), then each
    /// conv/dense layer is re-compiled at `cfg.precision` and adopted only
    /// if its calibration error passes `cfg.max_rel_err` (see
    /// [`crate::precision`]).
    pub fn with_precision(graph: &NnGraph, cfg: QuantConfig) -> Result<Self> {
        let mut exec = Self::build_f32(graph)?;
        if cfg.precision != Precision::F32 {
            exec.report = exec.quantize_plan(&cfg)?;
        }
        Ok(exec)
    }

    /// Compile the full-precision plan.
    fn build_f32(graph: &NnGraph) -> Result<Self> {
        let shapes = graph.infer_shapes(1)?;
        let input_shape = graph.input_shape()?;
        let per_item_flops = graph.flops(1)?;

        // How many nodes consume each node's output (the graph output
        // counts as one extra consumer so it is never fused away invisibly).
        let mut consumers = vec![0usize; graph.nodes().len()];
        for node in graph.nodes() {
            for &i in &node.inputs {
                consumers[i] += 1;
            }
        }
        consumers[graph.output()] += 1;

        let mut steps: Vec<Step> = Vec::with_capacity(graph.nodes().len());
        // node id -> step id
        let mut map: Vec<usize> = Vec::with_capacity(graph.nodes().len());

        for node in graph.nodes() {
            let step_inputs: Vec<usize> = node.inputs.iter().map(|&i| map[i]).collect();
            let item_shape = shapes[node.id].per_item();
            match &node.op {
                Op::Input { .. } => {
                    map.push(push(
                        &mut steps,
                        node.name.clone(),
                        FusedOp::Input,
                        step_inputs,
                        item_shape,
                    ));
                }
                Op::Conv2d { w, b, params } => {
                    let bias = b.as_ref().map(|t| t.data().to_vec()).unwrap_or_default();
                    let krows = params.in_c * params.kernel * params.kernel;
                    let op = FusedOp::Conv {
                        w: ConvWeights::F32(PackedA::pack(w.data(), params.out_c, krows)),
                        bias,
                        params: *params,
                        relu: false,
                    };
                    map.push(push(
                        &mut steps,
                        node.name.clone(),
                        op,
                        step_inputs,
                        item_shape,
                    ));
                }
                Op::Dense { w, b } => {
                    let (inf, outf) = (w.shape().dim(0), w.shape().dim(1));
                    let op = FusedOp::Dense {
                        w: DenseWeights::F32(PackedB::pack(w.data(), inf, outf)),
                        bias: b.data().to_vec(),
                        outf,
                        relu: false,
                    };
                    map.push(push(
                        &mut steps,
                        node.name.clone(),
                        op,
                        step_inputs,
                        item_shape,
                    ));
                }
                Op::BatchNorm { params } => {
                    let (scale, shift) = params.fold();
                    let producer = node.inputs[0];
                    let target = map[producer];
                    let foldable = consumers[producer] == 1
                        && matches!(steps[target].op, FusedOp::Conv { .. });
                    if foldable {
                        // Fold into the convolution's weights and bias. The
                        // plan is always built at f32 first (quantization is
                        // a post-pass), so the weights are still `F32` here.
                        if let FusedOp::Conv {
                            w: ConvWeights::F32(w),
                            bias,
                            ..
                        } = &mut steps[target].op
                        {
                            // Each output channel is one row of the GEMM's
                            // A operand; rescale it inside the packed panels.
                            for (oc, &s) in scale.iter().enumerate() {
                                w.scale_row(oc, s);
                            }
                            if bias.is_empty() {
                                *bias = shift.clone();
                            } else {
                                for (bv, (&s, &t)) in bias.iter_mut().zip(scale.iter().zip(&shift))
                                {
                                    *bv = *bv * s + t;
                                }
                            }
                        }
                        map.push(target);
                    } else {
                        let op = FusedOp::BatchNorm {
                            scale,
                            shift,
                            relu: false,
                        };
                        map.push(push(
                            &mut steps,
                            node.name.clone(),
                            op,
                            step_inputs,
                            item_shape,
                        ));
                    }
                }
                Op::Relu => {
                    let producer = node.inputs[0];
                    let target = map[producer];
                    let fusable = consumers[producer] == 1
                        && match &steps[target].op {
                            FusedOp::Conv { relu, .. }
                            | FusedOp::Dense { relu, .. }
                            | FusedOp::BatchNorm { relu, .. }
                            | FusedOp::Add { relu } => !relu,
                            _ => false,
                        };
                    if fusable {
                        match &mut steps[target].op {
                            FusedOp::Conv { relu, .. }
                            | FusedOp::Dense { relu, .. }
                            | FusedOp::BatchNorm { relu, .. }
                            | FusedOp::Add { relu } => *relu = true,
                            _ => unreachable!("fusable checked above"),
                        }
                        map.push(target);
                    } else {
                        map.push(push(
                            &mut steps,
                            node.name.clone(),
                            FusedOp::Relu,
                            step_inputs,
                            item_shape,
                        ));
                    }
                }
                Op::MaxPool { k, s, pad } => {
                    let op = FusedOp::MaxPool {
                        k: *k,
                        s: *s,
                        pad: *pad,
                    };
                    map.push(push(
                        &mut steps,
                        node.name.clone(),
                        op,
                        step_inputs,
                        item_shape,
                    ));
                }
                Op::GlobalAvgPool => {
                    map.push(push(
                        &mut steps,
                        node.name.clone(),
                        FusedOp::Gap,
                        step_inputs,
                        item_shape,
                    ));
                }
                Op::Add => {
                    map.push(push(
                        &mut steps,
                        node.name.clone(),
                        FusedOp::Add { relu: false },
                        step_inputs,
                        item_shape,
                    ));
                }
                Op::Flatten => {
                    map.push(push(
                        &mut steps,
                        node.name.clone(),
                        FusedOp::Flatten,
                        step_inputs,
                        item_shape,
                    ));
                }
                Op::Softmax => {
                    map.push(push(
                        &mut steps,
                        node.name.clone(),
                        FusedOp::Softmax,
                        step_inputs,
                        item_shape,
                    ));
                }
            }
        }

        let output_step = map[graph.output()];
        let n = steps.len();
        Ok(FusedExec {
            steps,
            output_step,
            input_shape,
            per_item_flops,
            buffers: (0..n).map(|_| Vec::new()).collect(),
            col_scratch: Vec::new(),
            gemm_scratch: GemmScratch::new(),
            report: PrecisionReport::default(),
        })
    }

    /// The quantization post-pass: run a seeded calibration batch through
    /// the (already built, BN-folded) f32 plan, then re-compute each
    /// conv/dense step with candidate quantized weights against the same
    /// exact f32 inputs and adopt the candidate only when its error passes
    /// the gate. Runs once at plan-compile time; allocation here is fine.
    fn quantize_plan(&mut self, cfg: &QuantConfig) -> Result<PrecisionReport> {
        let mut report = PrecisionReport {
            requested: cfg.precision,
            layers: Vec::new(),
        };
        let batch = cfg.calib_batch.max(1);
        let mut dims = vec![batch];
        dims.extend_from_slice(self.input_shape.dims());
        let calib = Tensor::seeded_uniform(Shape::new(dims), cfg.calib_seed, -1.0, 1.0);
        // Fills self.buffers with every step's f32 output.
        self.run(&calib)?;

        for si in 0..self.steps.len() {
            let step = &self.steps[si];
            let oracle = &self.buffers[si];
            let out_len = batch * step.item_shape.numel();
            let mut candidate = vec![0.0f32; out_len];
            let (kind, name, replacement) = match &step.op {
                FusedOp::Conv {
                    w: ConvWeights::F32(pa),
                    bias,
                    params,
                    relu,
                } => {
                    let raw = pa.unpack();
                    let cand = match cfg.precision {
                        Precision::Int8 => {
                            ConvWeights::Int8(QuantizedA::from_f32(&raw, pa.m(), pa.k()))
                        }
                        Precision::F16 => ConvWeights::F16(PackedA16::pack(&raw, pa.m(), pa.k())),
                        Precision::F32 => unreachable!("quantize_plan is gated on != F32"),
                    };
                    let in_shape = &self.steps[step.inputs[0]].item_shape;
                    conv2d_dispatch_into(
                        &self.buffers[step.inputs[0]],
                        batch,
                        in_shape.dim(1),
                        in_shape.dim(2),
                        &cand,
                        bias,
                        params,
                        &mut self.col_scratch,
                        &mut candidate,
                        &mut self.gemm_scratch,
                    );
                    if *relu {
                        activation::relu_inplace(&mut candidate);
                    }
                    ("conv", step.name.clone(), StepWeights::Conv(cand))
                }
                FusedOp::Dense {
                    w: DenseWeights::F32(pb),
                    bias,
                    relu,
                    ..
                } => {
                    let raw = pb.unpack();
                    let cand = match cfg.precision {
                        Precision::Int8 => {
                            DenseWeights::Int8(QuantizedB::from_f32(&raw, pb.k(), pb.n()))
                        }
                        Precision::F16 => DenseWeights::F16(PackedB16::pack(&raw, pb.k(), pb.n())),
                        Precision::F32 => unreachable!("quantize_plan is gated on != F32"),
                    };
                    dense_dispatch_into(
                        &self.buffers[step.inputs[0]],
                        &cand,
                        bias,
                        batch,
                        &mut candidate,
                        &mut self.gemm_scratch,
                    );
                    if *relu {
                        activation::relu_inplace(&mut candidate);
                    }
                    ("dense", step.name.clone(), StepWeights::Dense(cand))
                }
                _ => continue,
            };

            let max_abs_err = candidate
                .iter()
                .zip(oracle)
                .fold(0.0f32, |m, (&c, &o)| m.max((c - o).abs()));
            let rel_err = max_abs_err / amax(oracle).max(1e-12);
            let adopt = rel_err <= cfg.max_rel_err;
            if adopt {
                match (&mut self.steps[si].op, replacement) {
                    (FusedOp::Conv { w, .. }, StepWeights::Conv(cand)) => *w = cand,
                    (FusedOp::Dense { w, .. }, StepWeights::Dense(cand)) => *w = cand,
                    _ => unreachable!("replacement kind matches the step it came from"),
                }
            }
            report.layers.push(LayerReport {
                name,
                kind,
                requested: cfg.precision.name(),
                chosen: if adopt { cfg.precision.name() } else { "f32" },
                rel_err,
                max_abs_err,
            });
        }
        Ok(report)
    }

    /// Per-layer accuracy accounting from plan compilation (empty for f32
    /// plans).
    pub fn precision_report(&self) -> &PrecisionReport {
        &self.report
    }

    /// `(ptr, capacity)` of every arena buffer and scratch — lets tests
    /// assert that steady-state inference reuses the arena instead of
    /// reallocating.
    #[doc(hidden)]
    pub fn arena_fingerprint(&self) -> Vec<(usize, usize)> {
        let mut fp: Vec<(usize, usize)> = self
            .buffers
            .iter()
            .map(|b| (b.as_ptr() as usize, b.capacity()))
            .collect();
        fp.push((
            self.col_scratch.as_ptr() as usize,
            self.col_scratch.capacity(),
        ));
        fp.extend(self.gemm_scratch.fingerprint());
        fp
    }

    /// Number of compiled steps (after fusion).
    pub fn step_count(&self) -> usize {
        self.steps.len()
    }

    /// Number of compute-kernel steps — the launches a GPU would perform.
    pub fn kernel_count(&self) -> usize {
        self.steps.iter().filter(|s| s.op.is_kernel()).count()
    }

    /// Forward FLOPs per batch item.
    pub fn per_item_flops(&self) -> u64 {
        self.per_item_flops
    }

    /// The model's per-item input shape.
    pub fn input_shape(&self) -> &Shape {
        &self.input_shape
    }

    /// The model's per-item output shape.
    pub fn output_item_shape(&self) -> &Shape {
        &self.steps[self.output_step].item_shape
    }

    /// Run a forward pass over a `[batch, ..input]` tensor.
    pub fn run(&mut self, input: &Tensor) -> Result<Tensor> {
        let batch = check_batched_input(input, &self.input_shape)?;
        for si in 0..self.steps.len() {
            let (before, rest) = self.buffers.split_at_mut(si);
            let out = &mut rest[0];
            // Clone step metadata borrows: split the steps slice the same way.
            let (steps_before, steps_rest) = self.steps.split_at(si);
            let step = &steps_rest[0];
            let in_buf = |i: usize| -> &[f32] { &before[step.inputs[i]] };
            let in_item = |i: usize| -> &Shape { &steps_before[step.inputs[i]].item_shape };
            let out_numel = batch * step.item_shape.numel();

            match &step.op {
                FusedOp::Input => {
                    out.clear();
                    out.extend_from_slice(input.data());
                }
                FusedOp::Conv {
                    w,
                    bias,
                    params,
                    relu,
                } => {
                    let s = in_item(0);
                    let (h, wd) = (s.dim(1), s.dim(2));
                    out.resize(out_numel, 0.0);
                    conv2d_dispatch_into(
                        in_buf(0),
                        batch,
                        h,
                        wd,
                        w,
                        bias,
                        params,
                        &mut self.col_scratch,
                        out,
                        &mut self.gemm_scratch,
                    );
                    if *relu {
                        activation::relu_inplace(out);
                    }
                }
                FusedOp::Dense {
                    w,
                    bias,
                    outf,
                    relu,
                    ..
                } => {
                    out.resize(batch * outf, 0.0);
                    dense_dispatch_into(in_buf(0), w, bias, batch, out, &mut self.gemm_scratch);
                    if *relu {
                        activation::relu_inplace(out);
                    }
                }
                FusedOp::BatchNorm { scale, shift, relu } => {
                    let s = in_item(0);
                    let c = s.dim(0);
                    let plane: usize = s.dims()[1..].iter().product();
                    out.clear();
                    out.extend_from_slice(in_buf(0));
                    for b in 0..batch {
                        for ch in 0..c {
                            let start = (b * c + ch) * plane;
                            let (sc, sh) = (scale[ch], shift[ch]);
                            for v in &mut out[start..start + plane] {
                                *v = sc * *v + sh;
                            }
                        }
                    }
                    if *relu {
                        activation::relu_inplace(out);
                    }
                }
                FusedOp::MaxPool { k, s, pad } => {
                    let sh = in_item(0);
                    out.resize(out_numel, 0.0);
                    pool::maxpool2d_into(
                        in_buf(0),
                        batch,
                        sh.dim(0),
                        sh.dim(1),
                        sh.dim(2),
                        *k,
                        *s,
                        *pad,
                        out,
                    );
                }
                FusedOp::Gap => {
                    let s = in_item(0);
                    out.resize(out_numel, 0.0);
                    pool::avgpool_global_into(in_buf(0), batch, s.dim(0), s.dim(1), s.dim(2), out);
                }
                FusedOp::Add { relu } => {
                    out.clear();
                    out.extend_from_slice(in_buf(0));
                    add_inplace(out, in_buf(1));
                    if *relu {
                        activation::relu_inplace(out);
                    }
                }
                FusedOp::Flatten => {
                    out.clear();
                    out.extend_from_slice(in_buf(0));
                }
                FusedOp::Relu => {
                    out.clear();
                    out.extend_from_slice(in_buf(0));
                    activation::relu_inplace(out);
                }
                FusedOp::Softmax => {
                    let cols = step.item_shape.numel();
                    out.clear();
                    out.extend_from_slice(in_buf(0));
                    activation::softmax_rows(out, batch, cols);
                }
            }
            debug_assert_eq!(out.len(), out_numel, "step {} output size", step.name);
        }

        let out_step = &self.steps[self.output_step];
        let shape = out_step.item_shape.clone();
        let mut dims = vec![batch];
        dims.extend_from_slice(shape.dims());
        Tensor::from_vec(Shape::new(dims), self.buffers[self.output_step].clone())
            .map_err(RuntimeError::from)
    }
}

fn push(
    steps: &mut Vec<Step>,
    name: String,
    op: FusedOp,
    inputs: Vec<usize>,
    item_shape: Shape,
) -> usize {
    steps.push(Step {
        name,
        op,
        inputs,
        item_shape,
    });
    steps.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::unfused::UnfusedExec;
    use crayfish_models::{ffnn, tiny};

    #[test]
    fn fusion_reduces_step_count() {
        let g = tiny::tiny_cnn(4);
        let exec = FusedExec::new(&g).unwrap();
        // conv1+bn1+relu1 fuse to 1 step; conv2 stays (its output feeds the
        // add); residual add fuses relu2.
        assert!(
            exec.step_count() < g.nodes().len(),
            "{} steps",
            exec.step_count()
        );
    }

    #[test]
    fn fused_matches_unfused_cnn() {
        let g = tiny::tiny_cnn(4);
        let mut fused = FusedExec::new(&g).unwrap();
        let mut plain = UnfusedExec::new(g, true, None).unwrap();
        for batch in [1usize, 3] {
            let input = Tensor::seeded_uniform([batch, 3, 8, 8], batch as u64, -1.0, 1.0);
            let a = fused.run(&input).unwrap();
            let b = plain.run(&input).unwrap();
            assert!(a.max_abs_diff(&b).unwrap() < 1e-4);
        }
    }

    #[test]
    fn fused_matches_unfused_ffnn() {
        let g = ffnn::build(6);
        let mut fused = FusedExec::new(&g).unwrap();
        let mut plain = UnfusedExec::new(g, true, None).unwrap();
        let input = Tensor::seeded_uniform([4, 28, 28], 3, 0.0, 1.0);
        let a = fused.run(&input).unwrap();
        let b = plain.run(&input).unwrap();
        assert_eq!(a.shape().dims(), &[4, 10]);
        assert!(a.max_abs_diff(&b).unwrap() < 1e-4);
    }

    #[test]
    fn repeated_calls_reuse_buffers_and_stay_correct() {
        let g = tiny::tiny_cnn(1);
        let mut fused = FusedExec::new(&g).unwrap();
        let input = Tensor::seeded_uniform([2, 3, 8, 8], 1, -1.0, 1.0);
        let first = fused.run(&input).unwrap();
        for _ in 0..5 {
            let again = fused.run(&input).unwrap();
            assert_eq!(first, again);
        }
        // Changing batch size mid-stream must also work.
        let big = Tensor::seeded_uniform([5, 3, 8, 8], 2, -1.0, 1.0);
        assert_eq!(fused.run(&big).unwrap().shape().dims(), &[5, 4]);
    }

    #[test]
    fn kernel_count_excludes_data_movement() {
        let g = tiny::tiny_mlp(1);
        let exec = FusedExec::new(&g).unwrap();
        assert!(exec.kernel_count() < exec.step_count());
        assert!(exec.kernel_count() >= 2, "at least the two dense layers");
    }

    #[test]
    fn exposes_shapes_and_flops() {
        let g = ffnn::build(2);
        let exec = FusedExec::new(&g).unwrap();
        assert_eq!(exec.input_shape().dims(), &[28, 28]);
        assert_eq!(exec.output_item_shape().dims(), &[10]);
        assert_eq!(exec.per_item_flops(), g.flops(1).unwrap());
    }

    #[test]
    fn quantized_plans_track_the_f32_plan() {
        let g = tiny::tiny_cnn(7);
        let input = Tensor::seeded_uniform([2, 3, 8, 8], 11, -1.0, 1.0);
        let mut f32_exec = FusedExec::new(&g).unwrap();
        let oracle = f32_exec.run(&input).unwrap();
        for precision in [Precision::Int8, Precision::F16] {
            let cfg = QuantConfig::with_precision(precision);
            let mut exec = FusedExec::with_precision(&g, cfg).unwrap();
            let report = exec.precision_report();
            assert_eq!(report.requested, precision);
            assert!(!report.layers.is_empty(), "conv+dense layers reported");
            for l in &report.layers {
                assert_eq!(l.requested, precision.name());
                assert!(l.rel_err >= 0.0 && l.max_abs_err >= 0.0);
            }
            let out = exec.run(&input).unwrap();
            // Softmax outputs live in [0,1]; quantized plans should stay
            // close enough that the distributions barely move.
            assert!(
                oracle.max_abs_diff(&out).unwrap() < 0.05,
                "{} plan drifted",
                precision.name()
            );
        }
    }

    #[test]
    fn zero_threshold_falls_back_to_exact_f32() {
        let g = tiny::tiny_cnn(3);
        let input = Tensor::seeded_uniform([2, 3, 8, 8], 5, -1.0, 1.0);
        let mut f32_exec = FusedExec::new(&g).unwrap();
        let mut cfg = QuantConfig::with_precision(Precision::Int8);
        cfg.max_rel_err = 0.0;
        let mut exec = FusedExec::with_precision(&g, cfg).unwrap();
        let report = exec.precision_report();
        assert_eq!(report.quantized_count(), 0, "gate rejects every layer");
        assert_eq!(report.fallback_count(), report.layers.len());
        // With every layer back at f32 the plans are bit-identical.
        assert_eq!(f32_exec.run(&input).unwrap(), exec.run(&input).unwrap());
    }

    #[test]
    fn quantized_steady_state_reuses_the_arena() {
        let g = tiny::tiny_cnn(2);
        let cfg = QuantConfig::with_precision(Precision::Int8);
        let mut exec = FusedExec::with_precision(&g, cfg).unwrap();
        let input = Tensor::seeded_uniform([2, 3, 8, 8], 1, -1.0, 1.0);
        exec.run(&input).unwrap();
        let fp = exec.arena_fingerprint();
        for _ in 0..3 {
            exec.run(&input).unwrap();
        }
        assert_eq!(fp, exec.arena_fingerprint(), "int8 steady state reallocated");
    }
}
