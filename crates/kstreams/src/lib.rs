//! # crayfish-kstreams
//!
//! A pull-based stream processing engine in the style of Kafka Streams
//! (§3.4.1 of the paper), implementing the Crayfish `DataProcessor`
//! interface.
//!
//! Mechanisms reproduced:
//!
//! * **Pull-based processing**: each stream thread polls a batch from its
//!   assigned partitions, runs *every* record through the whole topology
//!   (source → transform/score → sink), flushes the produced results, and
//!   commits — only then does it request new input. This is the "events
//!   need to go through the whole processing DAG before requesting a new
//!   one" behaviour from Figure 4 of the paper.
//! * **Partition-based scaling**: parallelism comes from assigning topic
//!   partitions to stream threads; `mp` threads share the input topic's
//!   partitions, and `mp` can never exceed the partition count usefully.
//! * **Tight broker integration**: no intermediate buffering — records move
//!   straight from the fetch to the producer, which the paper credits for
//!   Kafka Streams' throughput edge over Flink (§5.3.1, §5.3.3).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crayfish_broker::{Broker, PartitionConsumer, Producer, ProducerConfig};
use crayfish_core::chaos::{supervise, SupervisorConfig, WorkerExit};
use crayfish_core::scoring::{score_payload_obs, Scorer};
use crayfish_core::{DataProcessor, ProcessorContext, Result, RunningJob};
use crayfish_sim::{calibration, Cost};

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct KStreamsOptions {
    /// Max records fetched per poll (`max.poll.records`).
    pub max_poll_records: usize,
    /// Poll timeout for each cycle.
    pub poll_timeout: Duration,
    /// Calibrated per-record framework cost of the JVM stream thread (see
    /// [`calibration::RECORD_OVERHEAD_KSTREAMS`]).
    pub record_overhead: Cost,
}

impl Default for KStreamsOptions {
    fn default() -> Self {
        KStreamsOptions {
            max_poll_records: 500,
            poll_timeout: Duration::from_millis(50),
            record_overhead: calibration::RECORD_OVERHEAD_KSTREAMS,
        }
    }
}

/// The Kafka-Streams-style `DataProcessor`.
#[derive(Debug, Default, Clone, Copy)]
pub struct KStreamsProcessor {
    /// Engine options.
    pub options: KStreamsOptions,
}

impl KStreamsProcessor {
    /// Engine with default options.
    pub fn new() -> Self {
        Self::default()
    }

    /// Engine with explicit options.
    pub fn with_options(options: KStreamsOptions) -> Self {
        KStreamsProcessor { options }
    }
}

struct KStreamsJob {
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl RunningJob for KStreamsJob {
    fn stop(mut self: Box<Self>) {
        self.stop.store(true, Ordering::SeqCst);
        for h in self.threads.drain(..) {
            let _ = h.join();
        }
    }
}

impl DataProcessor for KStreamsProcessor {
    fn name(&self) -> &'static str {
        "kstreams"
    }

    fn start(&self, ctx: ProcessorContext) -> Result<Box<dyn RunningJob>> {
        ctx.validate()?;
        let stop = Arc::new(AtomicBool::new(false));
        let partitions = ctx.broker.partitions(&ctx.input_topic)?;
        let assignment = Broker::range_assignment(partitions, ctx.mp);
        let options = self.options;
        let mut threads = Vec::with_capacity(ctx.mp);
        for (i, assigned) in assignment.into_iter().enumerate() {
            // The first incarnation's parts are built eagerly so startup
            // errors (bad topic, unreachable serving) surface from start();
            // restarts rebuild them from the broker's committed offsets.
            let mut consumer = PartitionConsumer::new(
                ctx.broker.clone(),
                &ctx.input_topic,
                &ctx.group,
                assigned.clone(),
            )?;
            consumer.max_poll_records = options.max_poll_records;
            let producer = Producer::new(
                ctx.broker.clone(),
                &ctx.output_topic,
                ProducerConfig::default(),
            )?;
            let scorer = ctx.scorer.build()?;
            let mut parts: Option<(PartitionConsumer, Producer, Box<dyn Scorer>)> =
                Some((consumer, producer, scorer));

            let flag = stop.clone();
            let obs = ctx.obs().clone();
            let chaos = ctx.chaos().clone();
            let broker = ctx.broker.clone();
            let input_topic = ctx.input_topic.clone();
            let output_topic = ctx.output_topic.clone();
            let group = ctx.group.clone();
            let spec = ctx.scorer.clone();
            let batches_scored = obs.counter("batches_scored");
            let records_out = obs.counter("records_out");
            let score_errors = obs.counter("score_errors");
            let thread = supervise(
                format!("kstreams-thread-{i}"),
                stop.clone(),
                obs.clone(),
                chaos.clone(),
                SupervisorConfig::default(),
                move |_incarnation| {
                    let (mut consumer, mut producer, mut scorer) = match parts.take() {
                        Some(built) => built,
                        None => {
                            let mut consumer = match PartitionConsumer::new(
                                broker.clone(),
                                &input_topic,
                                &group,
                                assigned.clone(),
                            ) {
                                Ok(c) => c,
                                Err(e) if e.is_transient() => {
                                    return WorkerExit::Failed(format!("rebuild consumer: {e}"))
                                }
                                Err(_) => return WorkerExit::Stopped,
                            };
                            consumer.max_poll_records = options.max_poll_records;
                            let producer = match Producer::new(
                                broker.clone(),
                                &output_topic,
                                ProducerConfig::default(),
                            ) {
                                Ok(p) => p,
                                Err(e) if e.is_transient() => {
                                    return WorkerExit::Failed(format!("rebuild producer: {e}"))
                                }
                                Err(_) => return WorkerExit::Stopped,
                            };
                            let scorer = match spec.build() {
                                Ok(s) => s,
                                Err(e) if e.is_transient() => {
                                    return WorkerExit::Failed(format!("rebuild scorer: {e}"))
                                }
                                Err(_) => return WorkerExit::Stopped,
                            };
                            (consumer, producer, scorer)
                        }
                    };
                    while !flag.load(Ordering::SeqCst) {
                        if chaos.take_worker_crash() {
                            return WorkerExit::Failed("injected worker crash".into());
                        }
                        // Pull one batch through the complete topology.
                        let records = match consumer.poll(options.poll_timeout) {
                            Ok(r) => r,
                            Err(e) if e.is_transient() => {
                                return WorkerExit::Failed(format!("poll: {e}"))
                            }
                            Err(_) => return WorkerExit::Stopped,
                        };
                        if records.is_empty() {
                            continue;
                        }
                        for rec in records {
                            // JVM stream-thread framework cost per record.
                            let span = obs.timer(crayfish_core::Stage::Ingest);
                            options.record_overhead.spend(rec.value.len());
                            span.stop();
                            match score_payload_obs(scorer.as_mut(), &rec.value, &obs) {
                                Ok(out) => {
                                    batches_scored.inc();
                                    let span = obs.timer(crayfish_core::Stage::Emit);
                                    let sent = producer.send(None, out);
                                    span.stop();
                                    if sent.is_err() {
                                        return WorkerExit::Stopped;
                                    }
                                    records_out.inc();
                                }
                                // Exit without committing: the restarted
                                // incarnation refetches this batch.
                                Err(e) if e.is_transient() => {
                                    score_errors.inc();
                                    return WorkerExit::Failed(format!("score: {e}"));
                                }
                                Err(_) => score_errors.inc(),
                            }
                        }
                        // Finish the cycle: flush the sink, commit input
                        // offsets, and only then poll again.
                        producer.flush();
                        consumer.commit();
                    }
                    WorkerExit::Stopped
                },
            );
            threads.push(thread);
        }
        Ok(Box::new(KStreamsJob { stop, threads }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crayfish_core::batch::{CrayfishDataBatch, ScoredBatch};
    use crayfish_core::scoring::ScorerSpec;
    use crayfish_models::tiny;
    use crayfish_runtime::{Device, EmbeddedLib};
    use crayfish_sim::{now_millis_f64, NetworkModel};
    use crayfish_tensor::Tensor;

    fn bare() -> KStreamsProcessor {
        KStreamsProcessor::with_options(KStreamsOptions {
            record_overhead: Cost::ZERO,
            ..Default::default()
        })
    }

    fn make_ctx(mp: usize) -> ProcessorContext {
        let broker = Broker::new(NetworkModel::zero());
        broker.create_topic("in", 8).unwrap();
        broker.create_topic("out", 8).unwrap();
        ProcessorContext {
            broker,
            input_topic: "in".into(),
            output_topic: "out".into(),
            group: "sut".into(),
            scorer: ScorerSpec::Embedded {
                lib: EmbeddedLib::Onnx,
                graph: Arc::new(tiny::tiny_mlp(1)),
                device: Device::Cpu,
            },
            mp,
        }
    }

    fn feed(broker: &Broker, n: u64) {
        feed_range(broker, 0, n)
    }

    fn feed_range(broker: &Broker, from: u64, to: u64) {
        for id in from..to {
            let t = Tensor::seeded_uniform([1, 8, 8], id, 0.0, 1.0);
            let payload = CrayfishDataBatch::from_tensor(id, now_millis_f64(), &t)
                .encode()
                .unwrap();
            broker
                .append("in", (id % 8) as u32, vec![(payload, now_millis_f64())])
                .unwrap();
        }
    }

    fn drain(broker: &Broker, expect: usize) -> Vec<ScoredBatch> {
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        let mut out = Vec::new();
        let mut offsets = [0u64; 8];
        while out.len() < expect && std::time::Instant::now() < deadline {
            for p in 0..8u32 {
                let recs = broker
                    .read("out", p, offsets[p as usize], 1000, usize::MAX)
                    .unwrap();
                if let Some(last) = recs.last() {
                    offsets[p as usize] = last.offset + 1;
                }
                for r in recs {
                    out.push(ScoredBatch::decode(&r.value).unwrap());
                }
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        out
    }

    #[test]
    fn scores_every_batch_exactly_once() {
        let ctx = make_ctx(3);
        let broker = ctx.broker.clone();
        let job = bare().start(ctx).unwrap();
        feed(&broker, 50);
        let scored = drain(&broker, 50);
        let mut ids: Vec<u64> = scored.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 50);
        job.stop();
    }

    #[test]
    fn commits_offsets_as_it_processes() {
        let ctx = make_ctx(2);
        let broker = ctx.broker.clone();
        let job = bare().start(ctx).unwrap();
        feed(&broker, 20);
        drain(&broker, 20);
        // Give commits a beat to land.
        std::thread::sleep(Duration::from_millis(100));
        let lag = broker.group_lag("sut", "in").unwrap();
        assert_eq!(lag, 0, "uncommitted lag after processing");
        job.stop();
    }

    #[test]
    fn injected_worker_crashes_are_survived() {
        use crayfish_core::chaos::ChaosHandle;
        let chaos = ChaosHandle::enabled();
        let broker = Broker::with_parts(
            NetworkModel::zero(),
            crayfish_core::obs::ObsHandle::disabled(),
            chaos.clone(),
        );
        broker.create_topic("in", 8).unwrap();
        broker.create_topic("out", 8).unwrap();
        let ctx = ProcessorContext {
            broker: broker.clone(),
            input_topic: "in".into(),
            output_topic: "out".into(),
            group: "sut".into(),
            scorer: ScorerSpec::Embedded {
                lib: EmbeddedLib::Onnx,
                graph: Arc::new(tiny::tiny_mlp(1)),
                device: Device::Cpu,
            },
            mp: 2,
        };
        let job = bare().start(ctx).unwrap();
        feed(&broker, 15);
        chaos.inject_worker_crashes(2);
        feed_range(&broker, 15, 30);
        // At-least-once: every id appears, duplicates allowed after the
        // crash (re-fetch of the uncommitted batch).
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        let mut ids = std::collections::HashSet::new();
        let mut offsets = [0u64; 8];
        while ids.len() < 30 && std::time::Instant::now() < deadline {
            for p in 0..8u32 {
                let recs = broker
                    .read("out", p, offsets[p as usize], 1000, usize::MAX)
                    .unwrap();
                if let Some(last) = recs.last() {
                    offsets[p as usize] = last.offset + 1;
                }
                for r in recs {
                    ids.insert(ScoredBatch::decode(&r.value).unwrap().id);
                }
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(ids.len(), 30, "records lost across worker crashes");
        job.stop();
    }

    #[test]
    fn more_threads_than_partitions_is_harmless() {
        let broker = Broker::new(NetworkModel::zero());
        broker.create_topic("in", 2).unwrap();
        broker.create_topic("out", 2).unwrap();
        let ctx = ProcessorContext {
            broker: broker.clone(),
            input_topic: "in".into(),
            output_topic: "out".into(),
            group: "sut".into(),
            scorer: ScorerSpec::Embedded {
                lib: EmbeddedLib::Onnx,
                graph: Arc::new(tiny::tiny_mlp(1)),
                device: Device::Cpu,
            },
            mp: 6,
        };
        let job = bare().start(ctx).unwrap();
        for id in 0..10u64 {
            let t = Tensor::seeded_uniform([1, 8, 8], id, 0.0, 1.0);
            let payload = CrayfishDataBatch::from_tensor(id, now_millis_f64(), &t)
                .encode()
                .unwrap();
            broker
                .append("in", (id % 2) as u32, vec![(payload, 0.0)])
                .unwrap();
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while broker.total_records("out").unwrap() < 10 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(broker.total_records("out").unwrap(), 10);
        job.stop();
    }
}
