//! Property-based checks of the compute kernels against independent
//! reference implementations.

use proptest::prelude::*;

use crayfish_tensor::kernels::{activation, gemm, norm, pool};
use crayfish_tensor::{GemmScratch, PackedA, PackedB, Tensor, ThreadPool};

/// Assert `got == c0 + naive(A, B)` elementwise within `1e-4` — the
/// contract every GEMM variant (which all accumulate into `C`) must meet.
#[allow(clippy::too_many_arguments)]
fn assert_accumulates(
    got: &[f32],
    c0: &[f32],
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    label: &str,
) {
    let reference = gemm::matmul_naive(a, b, m, k, n);
    for i in 0..m * n {
        let expect = c0[i] + reference[i];
        assert!(
            (got[i] - expect).abs() < 1e-4,
            "{label} ({m},{k},{n})[{i}]: {} vs {}",
            got[i],
            expect
        );
    }
}

/// Deterministic sweep hitting every `MR`-row and `NR`-column remainder
/// (`MR = 6`, `NR = 16`), the `MC = 96`-row block boundary, and shapes past
/// 128 — the edge tiles the packed path zero-pads at pack time. Runs the
/// single-threaded packed driver and the tiled-unpacked ablation rung
/// against the naive oracle, accumulating into a non-zero `C`.
#[test]
fn packed_and_tiled_gemm_edge_remainder_sweep() {
    let mut scratch = GemmScratch::new();
    let ms: Vec<usize> = (1..=13).chain([96, 97, 130]).collect();
    let ns: Vec<usize> = (1..=17).chain([129, 130]).collect();
    let ks = [1usize, 3, 64, 130];
    for &m in &ms {
        for &n in &ns {
            for &k in &ks {
                let seed = (m * 1_000_000 + n * 1000 + k) as u64;
                let a = Tensor::seeded_uniform([m, k], seed, -1.0, 1.0);
                let b = Tensor::seeded_uniform([k, n], seed ^ 1, -1.0, 1.0);
                let c0 = Tensor::seeded_uniform([m, n], seed ^ 2, -1.0, 1.0);

                let mut c = c0.data().to_vec();
                gemm::gemm_st(a.data(), b.data(), &mut c, m, k, n, &mut scratch);
                assert_accumulates(&c, c0.data(), a.data(), b.data(), m, k, n, "st");

                if m % 7 == 0 {
                    // The unpacked rung shares no packing code; spot-check.
                    let mut c = c0.data().to_vec();
                    gemm::gemm_tiled_unpacked(a.data(), b.data(), &mut c, m, k, n);
                    assert_accumulates(&c, c0.data(), a.data(), b.data(), m, k, n, "tiled");
                }
            }
        }
    }
}

/// The worker-pool path must agree with the oracle across partition edge
/// cases: fewer strips than participants, remainder strips, and shapes big
/// enough that every participant owns several strips.
#[test]
fn pooled_gemm_matches_naive_on_mixed_shapes() {
    let pool = ThreadPool::new(3);
    let mut scratch = GemmScratch::new();
    for (m, k, n) in [
        (1usize, 1usize, 1usize),
        (5, 7, 17),
        (12, 16, 16),
        (13, 130, 33),
        (96, 64, 130),
        (130, 130, 130),
    ] {
        let seed = (m * 131 + n) as u64;
        let a = Tensor::seeded_uniform([m, k], seed, -1.0, 1.0);
        let b = Tensor::seeded_uniform([k, n], seed ^ 1, -1.0, 1.0);
        let c0 = Tensor::seeded_uniform([m, n], seed ^ 2, -1.0, 1.0);
        let mut c = c0.data().to_vec();
        gemm::gemm_with_pool(a.data(), b.data(), &mut c, m, k, n, &mut scratch, &pool);
        assert_accumulates(&c, c0.data(), a.data(), b.data(), m, k, n, "pool");
    }
}

/// Pre-packed weight operands must behave exactly like their row-major
/// originals, including on edge-tile shapes.
#[test]
fn prepacked_operands_match_naive_on_edge_shapes() {
    let mut scratch = GemmScratch::new();
    for (m, k, n) in [
        (1usize, 5usize, 1usize),
        (7, 9, 17),
        (61, 27, 50),
        (96, 16, 97),
    ] {
        let seed = (m + k * 7 + n * 1009) as u64;
        let a = Tensor::seeded_uniform([m, k], seed, -1.0, 1.0);
        let b = Tensor::seeded_uniform([k, n], seed ^ 1, -1.0, 1.0);
        let c0 = Tensor::seeded_uniform([m, n], seed ^ 2, -1.0, 1.0);

        let pa = PackedA::pack(a.data(), m, k);
        let mut c = c0.data().to_vec();
        gemm::gemm_prepacked_a(&pa, b.data(), &mut c, n, &mut scratch);
        assert_accumulates(&c, c0.data(), a.data(), b.data(), m, k, n, "prepacked_a");

        let pb = PackedB::pack(b.data(), k, n);
        let mut c = c0.data().to_vec();
        gemm::gemm_prepacked_b(a.data(), &pb, &mut c, m, &mut scratch);
        assert_accumulates(&c, c0.data(), a.data(), b.data(), m, k, n, "prepacked_b");
    }
}

/// Scalar reference for max pooling.
fn maxpool_reference(
    input: &[f32],
    c: usize,
    h: usize,
    w: usize,
    k: usize,
    s: usize,
    pad: usize,
) -> Vec<f32> {
    let oh = (h + 2 * pad - k) / s + 1;
    let ow = (w + 2 * pad - k) / s + 1;
    let mut out = Vec::with_capacity(c * oh * ow);
    for ch in 0..c {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut best = f32::NEG_INFINITY;
                for ky in 0..k {
                    for kx in 0..k {
                        let iy = (oy * s + ky) as isize - pad as isize;
                        let ix = (ox * s + kx) as isize - pad as isize;
                        if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                            best = best.max(input[(ch * h + iy as usize) * w + ix as usize]);
                        }
                    }
                }
                out.push(best);
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn maxpool_matches_reference(
        c in 1usize..3,
        hw in 2usize..9,
        k in 1usize..4,
        s in 1usize..3,
        pad in 0usize..2,
        seed in any::<u64>(),
    ) {
        prop_assume!(hw + 2 * pad >= k);
        let input = Tensor::seeded_uniform([1, c, hw, hw], seed, -5.0, 5.0);
        let (fast, _) = pool::maxpool2d(input.data(), 1, c, hw, hw, k, s, pad);
        let slow = maxpool_reference(input.data(), c, hw, hw, k, s, pad);
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn batchnorm_matches_scalar_formula(
        c in 1usize..4,
        plane in 1usize..6,
        seed in any::<u64>(),
    ) {
        let x = Tensor::seeded_uniform([1, c, plane], seed, -3.0, 3.0);
        let gamma = Tensor::seeded_uniform([c], seed ^ 1, 0.5, 1.5).into_data();
        let beta = Tensor::seeded_uniform([c], seed ^ 2, -0.5, 0.5).into_data();
        let mean = Tensor::seeded_uniform([c], seed ^ 3, -1.0, 1.0).into_data();
        let var = Tensor::seeded_uniform([c], seed ^ 4, 0.1, 2.0).into_data();
        let params = norm::BnParams {
            gamma: gamma.clone(),
            beta: beta.clone(),
            mean: mean.clone(),
            var: var.clone(),
            eps: 1e-5,
        };
        let mut fast = x.data().to_vec();
        norm::batchnorm_inference(&mut fast, 1, c, plane, &params);
        for ch in 0..c {
            for p in 0..plane {
                let v = x.data()[ch * plane + p];
                let expect = gamma[ch] * (v - mean[ch]) / (var[ch] + 1e-5).sqrt() + beta[ch];
                prop_assert!((fast[ch * plane + p] - expect).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn gemm_is_linear_in_a(
        m in 1usize..4,
        k in 1usize..4,
        n in 1usize..4,
        alpha in -3.0f32..3.0,
        seed in any::<u64>(),
    ) {
        // gemm(alpha * A, B) == alpha * gemm(A, B)
        let a = Tensor::seeded_uniform([m, k], seed, -1.0, 1.0);
        let b = Tensor::seeded_uniform([k, n], seed ^ 7, -1.0, 1.0);
        let scaled: Vec<f32> = a.data().iter().map(|v| v * alpha).collect();
        let mut c1 = vec![0.0f32; m * n];
        gemm::gemm(&scaled, b.data(), &mut c1, m, k, n);
        let mut c2 = vec![0.0f32; m * n];
        gemm::gemm(a.data(), b.data(), &mut c2, m, k, n);
        for (x, y) in c1.iter().zip(&c2) {
            prop_assert!((x - alpha * y).abs() < 1e-3, "{} vs {}", x, alpha * y);
        }
    }

    #[test]
    fn packed_gemm_is_linear_in_a(
        m in 1usize..40,
        k in 1usize..40,
        n in 1usize..40,
        alpha in -3.0f32..3.0,
        seed in any::<u64>(),
    ) {
        // gemm_st(alpha * A, B) == alpha * gemm_st(A, B): linearity must
        // survive packing, register tiling, and edge-tile padding.
        let a = Tensor::seeded_uniform([m, k], seed, -1.0, 1.0);
        let b = Tensor::seeded_uniform([k, n], seed ^ 7, -1.0, 1.0);
        let scaled: Vec<f32> = a.data().iter().map(|v| v * alpha).collect();
        let mut scratch = GemmScratch::new();
        let mut c1 = vec![0.0f32; m * n];
        gemm::gemm_st(&scaled, b.data(), &mut c1, m, k, n, &mut scratch);
        let mut c2 = vec![0.0f32; m * n];
        gemm::gemm_st(a.data(), b.data(), &mut c2, m, k, n, &mut scratch);
        for (x, y) in c1.iter().zip(&c2) {
            prop_assert!((x - alpha * y).abs() < 1e-3, "{} vs {}", x, alpha * y);
        }
    }

    #[test]
    fn packed_gemm_matches_naive_across_full_tile_range(
        m in 1usize..=130,
        k in 1usize..=130,
        n in 1usize..=130,
        seed in any::<u64>(),
    ) {
        // Every edge-tile remainder (m mod 6, n mod 16) and block boundary
        // within 1..=130, accumulating into a non-zero C.
        let a = Tensor::seeded_uniform([m, k], seed, -1.0, 1.0);
        let b = Tensor::seeded_uniform([k, n], seed ^ 7, -1.0, 1.0);
        let c0 = Tensor::seeded_uniform([m, n], seed ^ 8, -1.0, 1.0);
        let reference = gemm::matmul_naive(a.data(), b.data(), m, k, n);
        let mut scratch = GemmScratch::new();
        let mut c = c0.data().to_vec();
        gemm::gemm_st(a.data(), b.data(), &mut c, m, k, n, &mut scratch);
        for i in 0..m * n {
            let expect = c0.data()[i] + reference[i];
            prop_assert!((c[i] - expect).abs() < 1e-4, "[{}]: {} vs {}", i, c[i], expect);
        }
    }

    #[test]
    fn pooled_gemm_matches_naive_across_full_tile_range(
        m in 1usize..=130,
        k in 1usize..=96,
        n in 1usize..=130,
        threads in 2usize..=4,
        seed in any::<u64>(),
    ) {
        let a = Tensor::seeded_uniform([m, k], seed, -1.0, 1.0);
        let b = Tensor::seeded_uniform([k, n], seed ^ 7, -1.0, 1.0);
        let c0 = Tensor::seeded_uniform([m, n], seed ^ 8, -1.0, 1.0);
        let reference = gemm::matmul_naive(a.data(), b.data(), m, k, n);
        let pool = ThreadPool::new(threads);
        let mut scratch = GemmScratch::new();
        let mut c = c0.data().to_vec();
        gemm::gemm_with_pool(a.data(), b.data(), &mut c, m, k, n, &mut scratch, &pool);
        for i in 0..m * n {
            let expect = c0.data()[i] + reference[i];
            prop_assert!((c[i] - expect).abs() < 1e-4, "[{}]: {} vs {}", i, c[i], expect);
        }
    }

    #[test]
    fn relu_is_idempotent_and_nonnegative(
        n in 1usize..64,
        seed in any::<u64>(),
    ) {
        let mut x = Tensor::seeded_uniform([n], seed, -10.0, 10.0).into_data();
        activation::relu_inplace(&mut x);
        prop_assert!(x.iter().all(|&v| v >= 0.0));
        let once = x.clone();
        activation::relu_inplace(&mut x);
        prop_assert_eq!(x, once);
    }

    #[test]
    fn softmax_is_shift_invariant(
        cols in 2usize..10,
        shift in -20.0f32..20.0,
        seed in any::<u64>(),
    ) {
        let base = Tensor::seeded_uniform([1, cols], seed, -5.0, 5.0);
        let mut a = base.data().to_vec();
        let mut b: Vec<f32> = base.data().iter().map(|v| v + shift).collect();
        activation::softmax_rows(&mut a, 1, cols);
        activation::softmax_rows(&mut b, 1, cols);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-4, "{} vs {}", x, y);
        }
    }

    #[test]
    fn avgpool_preserves_total_mass(
        c in 1usize..4,
        hw in 1usize..6,
        seed in any::<u64>(),
    ) {
        let input = Tensor::seeded_uniform([1, c, hw, hw], seed, -2.0, 2.0);
        let out = pool::avgpool_global(input.data(), 1, c, hw, hw);
        let total_in: f32 = input.data().iter().sum();
        let total_out: f32 = out.iter().map(|v| v * (hw * hw) as f32).sum();
        prop_assert!((total_in - total_out).abs() < 1e-2);
    }
}
