//! Native PyTorch analog: the eager-mode runtime TorchServe hosts.
//!
//! Not one of the paper's three *embedded* libraries (Table 4 tests no
//! embedded Torch), but the execution engine behind the TorchServe external
//! server: eager kernels with none of the off-the-shelf CPU optimisations
//! the paper credits for TF-Serving's 3× edge (§5.1.1). Convolutions run
//! the direct sliding-window kernel instead of `im2col`+GEMM.

use crayfish_models::ModelFormat;
use crayfish_tensor::NnGraph;

use crate::device::Device;
use crate::exec::{GpuExec, UnfusedExec};
use crate::precision::{Precision, QuantConfig};
use crate::runtimes::{EmbeddedRuntime, GpuModel, LoadedModel, UnfusedModel};
use crate::Result;

/// The PyTorch-eager-style runtime.
#[derive(Debug, Default, Clone, Copy)]
pub struct TorchRuntime {
    quant: QuantConfig,
}

impl TorchRuntime {
    /// Create the runtime (f32 plans).
    pub fn new() -> Self {
        TorchRuntime::default()
    }

    /// Compile CPU plans at `precision`. Only dense layers are affected:
    /// the naive sliding-window conv reads the raw f32 weights.
    pub fn with_precision(precision: Precision) -> Self {
        Self::with_quant(QuantConfig::with_precision(precision))
    }

    /// Compile CPU plans with an explicit quantization config.
    pub fn with_quant(quant: QuantConfig) -> Self {
        TorchRuntime { quant }
    }
}

impl EmbeddedRuntime for TorchRuntime {
    fn name(&self) -> &'static str {
        "torch"
    }

    fn expected_format(&self) -> ModelFormat {
        ModelFormat::Torch
    }

    fn load_graph(&self, graph: &NnGraph, device: Device) -> Result<Box<dyn LoadedModel>> {
        match device {
            Device::Cpu => Ok(Box::new(UnfusedModel {
                name: self.name(),
                exec: UnfusedExec::with_precision(graph.clone(), true, None, self.quant)?
                    .with_naive_conv(),
            })),
            Device::Gpu(spec) => Ok(Box::new(GpuModel {
                name: self.name(),
                exec: GpuExec::new(graph, spec)?,
            })),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtimes::OnnxRuntime;
    use crayfish_models::tiny;
    use crayfish_sim::Stopwatch;
    use crayfish_tensor::Tensor;

    #[test]
    fn computes_the_same_function_as_onnx() {
        let g = tiny::tiny_cnn(3);
        let input = Tensor::seeded_uniform([2, 3, 8, 8], 1, -1.0, 1.0);
        let mut torch = TorchRuntime::new().load_graph(&g, Device::Cpu).unwrap();
        let mut onnx = OnnxRuntime::new().load_graph(&g, Device::Cpu).unwrap();
        let a = torch.apply(&input).unwrap();
        let b = onnx.apply(&input).unwrap();
        assert!(a.max_abs_diff(&b).unwrap() < 1e-4);
    }

    #[test]
    fn naive_kernels_are_slower_on_conv_models() {
        let g = tiny::tiny_cnn(3);
        // A larger spatial input magnifies the kernel difference.
        let input = Tensor::seeded_uniform([8, 3, 8, 8], 1, -1.0, 1.0);
        let mut torch = TorchRuntime::new().load_graph(&g, Device::Cpu).unwrap();
        let mut onnx = OnnxRuntime::new().load_graph(&g, Device::Cpu).unwrap();
        torch.apply(&input).unwrap();
        onnx.apply(&input).unwrap();
        let reps = 30;
        let sw = Stopwatch::start();
        for _ in 0..reps {
            torch.apply(&input).unwrap();
        }
        let t_torch = sw.elapsed();
        let sw = Stopwatch::start();
        for _ in 0..reps {
            onnx.apply(&input).unwrap();
        }
        let t_onnx = sw.elapsed();
        assert!(
            t_torch > t_onnx,
            "naive conv {t_torch:?} should be slower than fused {t_onnx:?}"
        );
    }
}
