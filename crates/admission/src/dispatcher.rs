//! Multi-replica batch dispatch.
//!
//! A [`Dispatcher`] owns a pool of persistent scoring workers — the same
//! worker-pool idiom as the packed-GEMM thread pool in `crayfish-tensor`,
//! on the same `crayfish-sync` shim — that pull ready batches from a
//! [`BatchQueue`] and run the serving layer's scoring closure on them.
//! Batch forming (queue), scoring (these workers), and connection I/O (the
//! reactor) therefore all overlap.

use std::io;

use crayfish_sync::thread::{self, JoinHandle};

use crate::queue::{BatchQueue, Pending};

/// A pool of scoring replicas draining one admission queue.
///
/// Dropping (or [`join`](Dispatcher::join)ing) the dispatcher shuts the
/// queue down and waits for the workers, which first drain every admitted
/// request — shutdown never loses accepted work.
pub struct Dispatcher {
    workers: Vec<JoinHandle<()>>,
    stop: Box<dyn Fn() + Send>,
}

impl Dispatcher {
    /// Spawn `replicas` scoring workers (threads named `{name}-score-{i}`)
    /// draining `queue`. `make_worker(i)` builds replica `i`'s scoring
    /// closure; each call to that closure receives one ready batch in
    /// arrival order and must complete every request in it (typically by
    /// draining the `Vec` and invoking each payload's completion token).
    ///
    /// Per-batch service time and sizes are recorded into the queue's
    /// admission metrics, and the service-time EWMA feeds the
    /// `retry_after` hint on overload.
    pub fn spawn<P, F, W>(
        name: &str,
        queue: BatchQueue<P>,
        replicas: usize,
        make_worker: F,
    ) -> io::Result<Dispatcher>
    where
        P: Send + 'static,
        F: Fn(usize) -> W,
        W: FnMut(&mut Vec<Pending<P>>) + Send + 'static,
    {
        let replicas = replicas.max(1);
        let mut workers = Vec::with_capacity(replicas);
        for i in 0..replicas {
            let q = queue.clone();
            let mut score = make_worker(i);
            let handle = thread::spawn_named(&format!("{name}-score-{i}"), move || {
                let mut batch: Vec<Pending<P>> = Vec::new();
                while q.next_batch(&mut batch) {
                    let size = batch.len();
                    #[cfg(not(loom))]
                    let started = {
                        for p in &batch {
                            q.metrics().wait.observe_ns(p.waited().as_nanos() as u64);
                        }
                        crayfish_sim::Stopwatch::start()
                    };
                    score(&mut batch);
                    #[cfg(not(loom))]
                    q.note_batch(started.elapsed(), size);
                    #[cfg(loom)]
                    let _ = size;
                    batch.clear();
                }
            })?;
            workers.push(handle);
        }
        let stop_queue = queue;
        Ok(Dispatcher {
            workers,
            stop: Box::new(move || stop_queue.shutdown()),
        })
    }

    /// Number of scoring replicas in the pool.
    pub fn replicas(&self) -> usize {
        self.workers.len()
    }

    /// Shut the queue down, drain remaining work, and join the workers.
    pub fn join(mut self) {
        self.shutdown_and_join();
    }

    fn shutdown_and_join(&mut self) {
        (self.stop)();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Dispatcher {
    fn drop(&mut self) {
        self.shutdown_and_join();
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use crate::metrics::AdmissionMetrics;
    use crate::AdmissionConfig;
    use crayfish_obs::ObsHandle;
    use std::sync::{Arc, Mutex};
    use std::time::Duration;

    #[test]
    fn every_request_scored_exactly_once_across_replicas() {
        let obs = ObsHandle::enabled();
        let queue: BatchQueue<u64> = BatchQueue::new(
            AdmissionConfig {
                max_batch: 4,
                max_wait: Duration::from_millis(1),
                queue_capacity: 1024,
            },
            3,
            AdmissionMetrics::new(&obs),
        );
        let scored: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let dispatcher = Dispatcher::spawn("test", queue.clone(), 3, |_i| {
            let scored = Arc::clone(&scored);
            move |batch: &mut Vec<Pending<u64>>| {
                let mut seen = scored.lock().unwrap();
                seen.extend(batch.drain(..).map(|p| p.payload));
            }
        })
        .unwrap();
        assert_eq!(dispatcher.replicas(), 3);

        for i in 0..257u64 {
            queue.push(i).unwrap();
        }
        dispatcher.join();

        let mut seen = scored.lock().unwrap().clone();
        seen.sort_unstable();
        let want: Vec<u64> = (0..257).collect();
        assert_eq!(seen, want, "lost or duplicated requests");

        let metrics = AdmissionMetrics::new(&obs);
        let sizes = metrics.batch_size_snapshot();
        assert_eq!(sizes.sum(), 257, "batch sizes must sum to request count");
        assert_eq!(metrics.wait_snapshot().count(), 257);
        assert_eq!(metrics.shed_total(), 0);
    }

    #[test]
    fn drop_shuts_down_cleanly_with_empty_queue() {
        let queue: BatchQueue<()> = BatchQueue::new(
            AdmissionConfig::default(),
            2,
            AdmissionMetrics::new(&ObsHandle::disabled()),
        );
        let dispatcher =
            Dispatcher::spawn("idle", queue, 2, |_| |_: &mut Vec<Pending<()>>| {}).unwrap();
        drop(dispatcher);
    }
}
