//! Cross-executor equivalence: every execution strategy (fused, unfused,
//! naive-conv, JNI-marshalled) computes the same function on randomly
//! generated convolutional models.

use std::sync::Arc;

use proptest::prelude::*;

use crayfish_runtime::exec::unfused::JniBoundary;
use crayfish_runtime::exec::{FusedExec, UnfusedExec};
use crayfish_sim::Cost;
use crayfish_tensor::kernels::conv::Conv2dParams;
use crayfish_tensor::kernels::norm::BnParams;
use crayfish_tensor::{NnGraph, Op, Shape, Tensor};

/// A randomly shaped conv → bn → relu → conv → add(residual) → gap → dense
/// network, exercising every fusion rule.
fn random_cnn(channels: usize, hw: usize, classes: usize, seed: u64) -> NnGraph {
    let mut g = NnGraph::new(format!("cnn-{seed}"));
    let input = g.add(
        "input",
        Op::Input {
            shape: Shape::from([3, hw, hw]),
        },
        vec![],
    );
    let w1 = Arc::new(Tensor::seeded_uniform([channels, 3, 3, 3], seed, -0.3, 0.3));
    let c1 = g.add(
        "conv1",
        Op::Conv2d {
            w: w1,
            b: None,
            params: Conv2dParams {
                in_c: 3,
                out_c: channels,
                kernel: 3,
                stride: 1,
                pad: 1,
            },
        },
        vec![input],
    );
    let bn = g.add(
        "bn1",
        Op::BatchNorm {
            params: Arc::new(BnParams {
                gamma: Tensor::seeded_uniform([channels], seed ^ 1, 0.8, 1.2).into_data(),
                beta: Tensor::seeded_uniform([channels], seed ^ 2, -0.2, 0.2).into_data(),
                mean: Tensor::seeded_uniform([channels], seed ^ 3, -0.5, 0.5).into_data(),
                var: Tensor::seeded_uniform([channels], seed ^ 4, 0.5, 1.5).into_data(),
                eps: 1e-5,
            }),
        },
        vec![c1],
    );
    let r1 = g.add("relu1", Op::Relu, vec![bn]);
    let w2 = Arc::new(Tensor::seeded_uniform(
        [channels, channels, 3, 3],
        seed ^ 5,
        -0.2,
        0.2,
    ));
    let c2 = g.add(
        "conv2",
        Op::Conv2d {
            w: w2,
            b: Some(Arc::new(Tensor::seeded_uniform(
                [channels],
                seed ^ 6,
                -0.1,
                0.1,
            ))),
            params: Conv2dParams {
                in_c: channels,
                out_c: channels,
                kernel: 3,
                stride: 1,
                pad: 1,
            },
        },
        vec![r1],
    );
    let add = g.add("residual", Op::Add, vec![c2, r1]);
    let r2 = g.add("relu2", Op::Relu, vec![add]);
    let gap = g.add("gap", Op::GlobalAvgPool, vec![r2]);
    let wf = Arc::new(Tensor::seeded_uniform(
        [channels, classes],
        seed ^ 7,
        -0.4,
        0.4,
    ));
    let bf = Arc::new(Tensor::seeded_uniform([classes], seed ^ 8, -0.1, 0.1));
    let fc = g.add("fc", Op::Dense { w: wf, b: bf }, vec![gap]);
    g.add("softmax", Op::Softmax, vec![fc]);
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn all_cpu_executors_agree(
        channels in 1usize..6,
        hw in 2usize..7,
        classes in 2usize..6,
        batch in 1usize..4,
        seed in any::<u64>(),
    ) {
        let g = random_cnn(channels, hw, classes, seed);
        let input = Tensor::seeded_uniform([batch, 3, hw, hw], seed ^ 0xAB, -1.0, 1.0);

        let mut fused = FusedExec::new(&g).unwrap();
        let mut unfused = UnfusedExec::new(g.clone(), true, None).unwrap();
        let mut naive = UnfusedExec::new(g.clone(), true, None).unwrap().with_naive_conv();
        let mut jni = UnfusedExec::new(
            g,
            false,
            Some(JniBoundary { cost: Cost::ZERO }),
        )
        .unwrap();

        let a = fused.run(&input).unwrap();
        let b = unfused.run(&input).unwrap();
        let c = naive.run(&input).unwrap();
        let d = jni.run(&input).unwrap();
        prop_assert!(a.max_abs_diff(&b).unwrap() < 1e-3);
        prop_assert!(a.max_abs_diff(&c).unwrap() < 1e-3);
        prop_assert!(a.max_abs_diff(&d).unwrap() < 1e-3);
        // Outputs are distributions.
        for r in 0..batch {
            let sum: f32 = a.batch_item(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn fusion_preserves_step_semantics_across_batches(
        channels in 1usize..5,
        seed in any::<u64>(),
    ) {
        // Running the same executor at varying batch sizes must keep
        // results consistent with fresh executors at that batch size.
        let g = random_cnn(channels, 4, 3, seed);
        let mut reused = FusedExec::new(&g).unwrap();
        for batch in [1usize, 3, 2] {
            let input = Tensor::seeded_uniform([batch, 3, 4, 4], seed ^ batch as u64, -1.0, 1.0);
            let from_reused = reused.run(&input).unwrap();
            let mut fresh = FusedExec::new(&g).unwrap();
            let from_fresh = fresh.run(&input).unwrap();
            prop_assert!(from_reused.max_abs_diff(&from_fresh).unwrap() < 1e-5);
        }
    }
}
