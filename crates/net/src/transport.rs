//! The pluggable request/response seam.
//!
//! A [`Transport`] carries one length-prefixed request frame to a service
//! and returns its response frame. Two implementations:
//!
//! * [`InProcTransport`] — direct dispatch into the service's handler on
//!   the caller's thread. No sockets, no buffering, no reordering: the
//!   single-process semantics (and test determinism) of calling the
//!   service directly are preserved exactly.
//! * [`TcpTransport`] — a real socket to a [`spawn_rpc_server`] endpoint,
//!   lazily connected and re-established after any failure. Chaos fault
//!   windows (extra delay, connection resets, dead/isolated peers) are
//!   applied here, at the seam, so the same fault matrix drives both the
//!   in-process broker and a broker living in another process.
//!
//! Every error a `TcpTransport` returns is transient by construction: the
//! next call reconnects. Request/response framing errors are the one
//! terminal case and indicate a protocol bug, not weather.

use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crayfish_chaos::ChaosHandle;
use crayfish_obs::{Counter, ObsHandle};
use parking_lot::Mutex;

use crate::codec::{frame_bytes, read_frame, write_frame};
use crate::reactor::{spawn_reactor_on, Wire};
use crate::server::ServerHandle;
use crate::{NetError, Result};

/// A service's request handler: one request payload in, one response
/// payload out. Shared between the in-process transport (which calls it
/// directly) and the RPC server (which calls it from worker threads).
pub type RpcHandler = Arc<dyn Fn(&[u8]) -> Vec<u8> + Send + Sync>;

/// One request/response exchange with a service.
pub trait Transport: Send + Sync {
    /// Send `request`, block until the response arrives.
    fn call(&self, request: &[u8]) -> Result<Vec<u8>>;
}

/// Direct in-process dispatch: `call` runs the handler on the caller's
/// thread and returns its response. Infallible and deterministic.
pub struct InProcTransport {
    handler: RpcHandler,
}

impl InProcTransport {
    /// Wrap a handler.
    pub fn new(handler: RpcHandler) -> InProcTransport {
        InProcTransport { handler }
    }
}

impl std::fmt::Debug for InProcTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InProcTransport").finish_non_exhaustive()
    }
}

impl Transport for InProcTransport {
    fn call(&self, request: &[u8]) -> Result<Vec<u8>> {
        Ok((self.handler)(request))
    }
}

/// Default per-call read timeout. Long-poll RPCs clamp their server-side
/// wait well below this, so a timeout firing means the peer is gone.
const READ_TIMEOUT: Duration = Duration::from_secs(10);

/// A lazily connected, self-healing client socket to one RPC endpoint.
///
/// Calls are serialized over a single connection (one request frame out,
/// one response frame in); any I/O failure drops the connection so the
/// next call dials fresh. When constructed with instruments, byte
/// counters, a reconnect counter, and chaos fault windows attach here —
/// the seam through which `NetworkDelay`, connection resets, and
/// dead/isolated-peer faults reach a remote service.
pub struct TcpTransport {
    addr: SocketAddr,
    conn: Mutex<Option<TcpStream>>,
    read_timeout: Duration,
    /// Numeric peer id consulted against chaos dead/isolated windows.
    peer: Option<u32>,
    chaos: ChaosHandle,
    bytes_out: Counter,
    bytes_in: Counter,
    reconnects: Counter,
    /// Distinguishes the first dial (not a reconnect) from re-dials.
    ever_connected: AtomicBool,
}

impl std::fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpTransport")
            .field("addr", &self.addr)
            .field("peer", &self.peer)
            .finish_non_exhaustive()
    }
}

impl TcpTransport {
    /// A bare transport with no instrumentation and no chaos coupling.
    pub fn new(addr: SocketAddr) -> TcpTransport {
        TcpTransport::with_instruments(addr, &ObsHandle::disabled(), ChaosHandle::disabled())
    }

    /// A transport wired into observability counters and chaos windows.
    pub fn with_instruments(addr: SocketAddr, obs: &ObsHandle, chaos: ChaosHandle) -> TcpTransport {
        TcpTransport {
            addr,
            conn: Mutex::new(None),
            read_timeout: READ_TIMEOUT,
            peer: None,
            chaos,
            bytes_out: obs.counter("net_bytes_out"),
            bytes_in: obs.counter("net_bytes_in"),
            reconnects: obs.counter("net_reconnects"),
            ever_connected: AtomicBool::new(false),
        }
    }

    /// Tag this transport with the peer id chaos uses for dead/isolated
    /// windows (`set_broker_dead` / `set_broker_isolated`).
    pub fn with_peer(mut self, peer: u32) -> TcpTransport {
        self.peer = Some(peer);
        self
    }

    /// Override the per-call read timeout.
    pub fn with_read_timeout(mut self, timeout: Duration) -> TcpTransport {
        self.read_timeout = timeout;
        self
    }

    /// The endpoint this transport dials.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    fn dial(&self) -> Result<TcpStream> {
        let stream = TcpStream::connect(self.addr)?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(self.read_timeout))?;
        if self.ever_connected.swap(true, Ordering::Relaxed) {
            self.reconnects.inc();
        }
        Ok(stream)
    }
}

impl Transport for TcpTransport {
    fn call(&self, request: &[u8]) -> Result<Vec<u8>> {
        // Chaos windows apply before any bytes move: a degraded network
        // delays every call, a dead or isolated peer refuses them all.
        if let Some(extra) = self.chaos.extra_net_delay() {
            std::thread::sleep(extra);
        }
        let mut conn = self.conn.lock();
        if let Some(peer) = self.peer {
            if self.chaos.broker_dead(peer) || self.chaos.broker_isolated(peer) {
                *conn = None;
                return Err(NetError::Io(std::io::Error::new(
                    std::io::ErrorKind::ConnectionRefused,
                    "peer unreachable (fault window)",
                )));
            }
        }
        if self.chaos.connection_reset_due() {
            *conn = None;
            return Err(NetError::Io(std::io::Error::new(
                std::io::ErrorKind::ConnectionReset,
                "connection reset (fault window)",
            )));
        }
        if conn.is_none() {
            *conn = Some(self.dial()?);
        }
        let Some(stream) = conn.as_mut() else {
            return Err(NetError::Closed);
        };
        if let Err(e) = write_frame(stream, request) {
            *conn = None;
            return Err(e);
        }
        self.bytes_out.add(4 + request.len() as u64);
        match read_frame(stream) {
            Ok(Some(response)) => {
                self.bytes_in.add(4 + response.len() as u64);
                Ok(response)
            }
            Ok(None) => {
                *conn = None;
                Err(NetError::Closed)
            }
            Err(e) => {
                *conn = None;
                Err(e)
            }
        }
    }
}

/// Spawn a length-prefixed RPC service: a reactor accepts connections and
/// frames, a pool of `workers` threads runs the handler (so slow or
/// blocking RPCs — long polls, replication fan-out — do not stall the
/// poll thread), and responses flow back through the reactor in
/// per-connection request order.
pub fn spawn_rpc_server(
    name: &'static str,
    addr: SocketAddr,
    workers: usize,
    handler: RpcHandler,
) -> Result<ServerHandle> {
    let (tx, rx) = crossbeam::channel::unbounded::<(Vec<u8>, crate::reactor::Responder)>();
    let mut pool = Vec::with_capacity(workers.max(1));
    for i in 0..workers.max(1) {
        let rx = rx.clone();
        let handler = handler.clone();
        let worker = std::thread::Builder::new()
            .name(format!("{name}-rpc-{i}"))
            .spawn(move || {
                while let Ok((request, responder)) = rx.recv() {
                    let response = handler(&request);
                    match frame_bytes(&response) {
                        Ok(bytes) => responder.send(bytes),
                        // An oversized response is a service bug; dropping
                        // the responder leaves the client to its read
                        // timeout rather than corrupting the stream.
                        Err(_) => drop(responder),
                    }
                }
            })?;
        pool.push(worker);
    }
    drop(rx);

    let mut handle = spawn_reactor_on(name, addr, Wire::Grpc, move |payload, responder| {
        // The reactor's callback must not block; hand off to the pool.
        // Send fails only during teardown, when responses no longer
        // matter.
        let _ = tx.send((payload.to_vec(), responder));
    })?;
    // Teardown order: the reactor hook (registered by spawn_reactor_on)
    // joins the poll thread first, which drops the dispatch closure and
    // with it the last sender — so by the time this hook runs, worker
    // recv() calls are draining toward disconnect.
    handle.add_teardown(move || {
        for worker in pool {
            let _ = worker.join();
        }
    });
    Ok(handle)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn upper_handler() -> RpcHandler {
        Arc::new(|req: &[u8]| req.to_ascii_uppercase())
    }

    #[test]
    fn inproc_call_dispatches_directly() {
        let t = InProcTransport::new(upper_handler());
        assert_eq!(t.call(b"ping").unwrap(), b"PING");
    }

    #[test]
    fn tcp_call_roundtrips_through_an_rpc_server() {
        let server = spawn_rpc_server(
            "upper",
            SocketAddr::from(([127, 0, 0, 1], 0)),
            2,
            upper_handler(),
        )
        .unwrap();
        let t = TcpTransport::new(server.addr());
        assert_eq!(t.call(b"hello").unwrap(), b"HELLO");
        assert_eq!(t.call(b"again").unwrap(), b"AGAIN");
        server.shutdown();
    }

    #[test]
    fn tcp_transport_reconnects_after_server_restart() {
        let addr;
        {
            let server = spawn_rpc_server(
                "upper-a",
                SocketAddr::from(([127, 0, 0, 1], 0)),
                1,
                upper_handler(),
            )
            .unwrap();
            addr = server.addr();
            let t = TcpTransport::new(addr);
            assert_eq!(t.call(b"one").unwrap(), b"ONE");
            server.shutdown();
            // The connection is severed; the next call errors but heals.
            assert!(t.call(b"two").is_err());
            let revived = spawn_rpc_server("upper-b", addr, 1, upper_handler()).unwrap();
            assert_eq!(t.call(b"three").unwrap(), b"THREE");
            revived.shutdown();
        }
    }

    #[test]
    fn chaos_dead_peer_refuses_calls() {
        let server = spawn_rpc_server(
            "upper-chaos",
            SocketAddr::from(([127, 0, 0, 1], 0)),
            1,
            upper_handler(),
        )
        .unwrap();
        let chaos = ChaosHandle::enabled();
        let t =
            TcpTransport::with_instruments(server.addr(), &ObsHandle::disabled(), chaos.clone())
                .with_peer(3);
        assert_eq!(t.call(b"up").unwrap(), b"UP");
        chaos.set_broker_dead(3, true);
        let err = t.call(b"down").unwrap_err();
        assert!(err.is_transient(), "dead-peer error must be retryable");
        chaos.set_broker_dead(3, false);
        assert_eq!(t.call(b"back").unwrap(), b"BACK");
        server.shutdown();
    }
}
