//! The scoring stage, the emitting sink, and the `ingest` span helpers.
//!
//! These are the pieces every engine topology is assembled from once the
//! commit-owning loop is split out: [`ScoreStage`] funnels payloads through
//! the shared scoring body with the right failure discipline for its
//! position relative to the offset commit, and [`ProducerSink`] owns the
//! `emit` span, the producer, and the `records_out` counter.

use bytes::Bytes;

use crayfish_broker::Producer;
use crayfish_core::chaos::{RetryPolicy, WorkerExit};
use crayfish_core::obs::Counter;
use crayfish_core::scoring::{score_payload_obs, Scorer};
use crayfish_core::{CoreError, ObsHandle, Stage};
use crayfish_sim::{precise_sleep, Cost};

use crate::source::SinkClosed;

/// The scoring operator: decode → score → encode with the engine-agnostic
/// counters, in one of two failure disciplines.
///
/// * [`ScoreStage::replay`] — for commit-owning loops (Kafka Streams
///   threads, chained Flink subtasks): a transient failure fails the
///   incarnation *before* the commit, so the restarted worker refetches
///   and rescores the batch.
/// * [`ScoreStage::in_place`] — for stages past the commit scope (Spark
///   executors, Flink scoring/async tasks, Ray scoring actors): the input
///   offset is already committed, so transient failures retry in place
///   with a patient backoff rather than dropping the record.
///
/// Terminal failures (malformed payloads, model errors) are counted as
/// `score_errors` and skipped in both disciplines.
pub struct ScoreStage {
    scorer: Box<dyn Scorer>,
    obs: ObsHandle,
    batches_scored: Counter,
    score_errors: Counter,
    retries: Counter,
    retry: Option<RetryPolicy>,
}

impl ScoreStage {
    /// Scoring inside commit scope: transient failures exit the
    /// incarnation for an offset replay.
    pub fn replay(scorer: Box<dyn Scorer>, obs: &ObsHandle) -> Self {
        Self::with_policy(scorer, obs, None)
    }

    /// Scoring past commit scope: transient failures retry in place.
    pub fn in_place(scorer: Box<dyn Scorer>, obs: &ObsHandle) -> Self {
        Self::with_policy(scorer, obs, Some(RetryPolicy::patient()))
    }

    fn with_policy(scorer: Box<dyn Scorer>, obs: &ObsHandle, retry: Option<RetryPolicy>) -> Self {
        ScoreStage {
            scorer,
            obs: obs.clone(),
            batches_scored: obs.counter("batches_scored"),
            score_errors: obs.counter("score_errors"),
            retries: obs.counter("retries"),
            retry,
        }
    }

    /// Score one payload. `Ok(Some(out))` is the encoded `ScoredBatch`;
    /// `Ok(None)` means the record was counted and skipped (terminal
    /// failure, or a retry budget exhausted past commit scope);
    /// `Err(exit)` ends the incarnation (replay discipline only).
    pub fn score(&mut self, payload: &[u8]) -> std::result::Result<Option<Bytes>, WorkerExit> {
        let outcome = match &self.retry {
            Some(policy) => policy.run(
                CoreError::is_transient,
                |_| self.retries.inc(),
                || score_payload_obs(self.scorer.as_mut(), payload, &self.obs),
            ),
            None => score_payload_obs(self.scorer.as_mut(), payload, &self.obs),
        };
        match outcome {
            Ok(out) => {
                self.batches_scored.inc();
                Ok(Some(out))
            }
            Err(e) if self.retry.is_none() && e.is_transient() => {
                self.score_errors.inc();
                Err(WorkerExit::Failed(format!("score: {e}")))
            }
            Err(_) => {
                self.score_errors.inc();
                Ok(None)
            }
        }
    }
}

/// The output operator: the `emit` span around an optional per-record
/// framework cost plus the producer send, and the `records_out` counter.
pub struct ProducerSink {
    producer: Producer,
    obs: ObsHandle,
    records_out: Counter,
    emit_cost: Cost,
}

impl ProducerSink {
    /// A sink with no modelled per-record emit cost.
    pub fn new(producer: Producer, obs: &ObsHandle) -> Self {
        Self::with_cost(producer, obs, Cost::ZERO)
    }

    /// A sink charging `emit_cost` per record inside the `emit` span
    /// (e.g. the sink operator's share of Flink's chain cost, or Ray's
    /// object-store dispatch on the output hop).
    pub fn with_cost(producer: Producer, obs: &ObsHandle, emit_cost: Cost) -> Self {
        ProducerSink {
            producer,
            obs: obs.clone(),
            records_out: obs.counter("records_out"),
            emit_cost,
        }
    }

    /// Emit one scored payload. [`SinkClosed`] means the output topic is
    /// gone: the caller winds down.
    pub fn emit(&mut self, payload: Bytes) -> std::result::Result<(), SinkClosed> {
        let bytes = payload.len();
        let span = self.obs.timer(Stage::Emit);
        self.emit_cost.spend(bytes);
        let sent = self.producer.send(None, payload);
        span.stop();
        if sent.is_err() {
            return Err(SinkClosed);
        }
        self.records_out.inc();
        Ok(())
    }

    /// Flush buffered sends (engines with a flush-before-commit cycle).
    pub fn flush(&self) {
        self.producer.flush();
    }
}

/// Run `f` inside an `ingest` span. For personality-owned ingestion work
/// that is not a plain [`Cost`] (e.g. Ray's object-store copy).
pub fn ingest_span<T>(obs: &ObsHandle, f: impl FnOnce() -> T) -> T {
    let span = obs.timer(Stage::Ingest);
    let out = f();
    span.stop();
    out
}

/// Charge a per-record framework cost inside an `ingest` span.
pub fn charge_ingest(obs: &ObsHandle, cost: Cost, bytes: usize) {
    let span = obs.timer(Stage::Ingest);
    cost.spend(bytes);
    span.stop();
}

/// Charge a per-record cost amortised over a whole chunk, as one aggregate
/// sleep in one `ingest` span (Spark's whole-stage codegen charges
/// framework cost per chunk, not per record).
pub fn charge_ingest_chunk(obs: &ObsHandle, cost: Cost, total_bytes: usize, n_records: usize) {
    let span = obs.timer(Stage::Ingest);
    let per_chunk = cost
        .duration(total_bytes / n_records.max(1))
        .mul_f64(n_records as f64);
    precise_sleep(per_chunk);
    span.stop();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use crayfish_core::batch::{CrayfishDataBatch, ScoredBatch};
    use crayfish_core::scoring::ScorerSpec;
    use crayfish_core::Result;
    use crayfish_models::tiny;
    use crayfish_runtime::{Device, EmbeddedLib};
    use crayfish_sim::now_millis_f64;
    use crayfish_tensor::Tensor;

    fn embedded_scorer() -> Box<dyn Scorer> {
        ScorerSpec::Embedded {
            lib: EmbeddedLib::Onnx,
            graph: Arc::new(tiny::tiny_mlp(1)),
            device: Device::Cpu,
        }
        .build()
        .unwrap()
    }

    fn payload(id: u64) -> Bytes {
        let t = Tensor::seeded_uniform([1, 8, 8], id, 0.0, 1.0);
        CrayfishDataBatch::from_tensor(id, now_millis_f64(), &t)
            .encode()
            .unwrap()
    }

    #[test]
    fn replay_stage_scores_and_counts() {
        let obs = ObsHandle::enabled();
        let mut stage = ScoreStage::replay(embedded_scorer(), &obs);
        let out = stage.score(&payload(7)).unwrap().unwrap();
        assert_eq!(ScoredBatch::decode(&out).unwrap().id, 7);
        assert_eq!(obs.counter("batches_scored").get(), 1);
        assert_eq!(obs.counter("score_errors").get(), 0);
    }

    #[test]
    fn terminal_errors_are_skipped_in_both_disciplines() {
        let obs = ObsHandle::enabled();
        let mut replay = ScoreStage::replay(embedded_scorer(), &obs);
        assert!(matches!(replay.score(b"not json"), Ok(None)));
        let mut in_place = ScoreStage::in_place(embedded_scorer(), &obs);
        assert!(matches!(in_place.score(b"not json"), Ok(None)));
        assert_eq!(obs.counter("score_errors").get(), 2);
    }

    struct FlakyScorer {
        failures_left: u32,
    }

    impl Scorer for FlakyScorer {
        fn name(&self) -> String {
            "flaky".into()
        }
        fn score(&mut self, input: &Tensor) -> Result<Tensor> {
            if self.failures_left > 0 {
                self.failures_left -= 1;
                return Err(CoreError::Serving(crayfish_serving::ServingError::Closed));
            }
            Ok(input.clone())
        }
    }

    #[test]
    fn replay_discipline_fails_the_incarnation_on_transient_errors() {
        let obs = ObsHandle::enabled();
        let mut stage =
            ScoreStage::with_policy(Box::new(FlakyScorer { failures_left: 1 }), &obs, None);
        assert!(matches!(
            stage.score(&payload(1)),
            Err(WorkerExit::Failed(_))
        ));
    }

    #[test]
    fn in_place_discipline_retries_transient_errors() {
        let obs = ObsHandle::enabled();
        let mut stage = ScoreStage::with_policy(
            Box::new(FlakyScorer { failures_left: 2 }),
            &obs,
            Some(RetryPolicy {
                base: std::time::Duration::from_millis(1),
                ..RetryPolicy::patient()
            }),
        );
        assert!(matches!(stage.score(&payload(1)), Ok(Some(_))));
        assert_eq!(obs.counter("retries").get(), 2);
        assert_eq!(obs.counter("score_errors").get(), 0);
    }

    #[test]
    fn chunk_ingest_records_one_span() {
        let obs = ObsHandle::enabled();
        charge_ingest_chunk(&obs, Cost::ZERO, 4096, 8);
        assert_eq!(obs.stage_snapshot(Stage::Ingest).count(), 1);
    }
}
