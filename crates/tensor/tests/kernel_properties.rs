//! Property-based checks of the compute kernels against independent
//! reference implementations.

use proptest::prelude::*;

use crayfish_tensor::kernels::{activation, gemm, norm, pool};
use crayfish_tensor::Tensor;

/// Scalar reference for max pooling.
fn maxpool_reference(
    input: &[f32],
    c: usize,
    h: usize,
    w: usize,
    k: usize,
    s: usize,
    pad: usize,
) -> Vec<f32> {
    let oh = (h + 2 * pad - k) / s + 1;
    let ow = (w + 2 * pad - k) / s + 1;
    let mut out = Vec::with_capacity(c * oh * ow);
    for ch in 0..c {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut best = f32::NEG_INFINITY;
                for ky in 0..k {
                    for kx in 0..k {
                        let iy = (oy * s + ky) as isize - pad as isize;
                        let ix = (ox * s + kx) as isize - pad as isize;
                        if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                            best = best.max(input[(ch * h + iy as usize) * w + ix as usize]);
                        }
                    }
                }
                out.push(best);
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn maxpool_matches_reference(
        c in 1usize..3,
        hw in 2usize..9,
        k in 1usize..4,
        s in 1usize..3,
        pad in 0usize..2,
        seed in any::<u64>(),
    ) {
        prop_assume!(hw + 2 * pad >= k);
        let input = Tensor::seeded_uniform([1, c, hw, hw], seed, -5.0, 5.0);
        let (fast, _) = pool::maxpool2d(input.data(), 1, c, hw, hw, k, s, pad);
        let slow = maxpool_reference(input.data(), c, hw, hw, k, s, pad);
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn batchnorm_matches_scalar_formula(
        c in 1usize..4,
        plane in 1usize..6,
        seed in any::<u64>(),
    ) {
        let x = Tensor::seeded_uniform([1, c, plane], seed, -3.0, 3.0);
        let gamma = Tensor::seeded_uniform([c], seed ^ 1, 0.5, 1.5).into_data();
        let beta = Tensor::seeded_uniform([c], seed ^ 2, -0.5, 0.5).into_data();
        let mean = Tensor::seeded_uniform([c], seed ^ 3, -1.0, 1.0).into_data();
        let var = Tensor::seeded_uniform([c], seed ^ 4, 0.1, 2.0).into_data();
        let params = norm::BnParams {
            gamma: gamma.clone(),
            beta: beta.clone(),
            mean: mean.clone(),
            var: var.clone(),
            eps: 1e-5,
        };
        let mut fast = x.data().to_vec();
        norm::batchnorm_inference(&mut fast, 1, c, plane, &params);
        for ch in 0..c {
            for p in 0..plane {
                let v = x.data()[ch * plane + p];
                let expect = gamma[ch] * (v - mean[ch]) / (var[ch] + 1e-5).sqrt() + beta[ch];
                prop_assert!((fast[ch * plane + p] - expect).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn gemm_is_linear_in_a(
        m in 1usize..4,
        k in 1usize..4,
        n in 1usize..4,
        alpha in -3.0f32..3.0,
        seed in any::<u64>(),
    ) {
        // gemm(alpha * A, B) == alpha * gemm(A, B)
        let a = Tensor::seeded_uniform([m, k], seed, -1.0, 1.0);
        let b = Tensor::seeded_uniform([k, n], seed ^ 7, -1.0, 1.0);
        let scaled: Vec<f32> = a.data().iter().map(|v| v * alpha).collect();
        let mut c1 = vec![0.0f32; m * n];
        gemm::gemm(&scaled, b.data(), &mut c1, m, k, n);
        let mut c2 = vec![0.0f32; m * n];
        gemm::gemm(a.data(), b.data(), &mut c2, m, k, n);
        for (x, y) in c1.iter().zip(&c2) {
            prop_assert!((x - alpha * y).abs() < 1e-3, "{} vs {}", x, alpha * y);
        }
    }

    #[test]
    fn relu_is_idempotent_and_nonnegative(
        n in 1usize..64,
        seed in any::<u64>(),
    ) {
        let mut x = Tensor::seeded_uniform([n], seed, -10.0, 10.0).into_data();
        activation::relu_inplace(&mut x);
        prop_assert!(x.iter().all(|&v| v >= 0.0));
        let once = x.clone();
        activation::relu_inplace(&mut x);
        prop_assert_eq!(x, once);
    }

    #[test]
    fn softmax_is_shift_invariant(
        cols in 2usize..10,
        shift in -20.0f32..20.0,
        seed in any::<u64>(),
    ) {
        let base = Tensor::seeded_uniform([1, cols], seed, -5.0, 5.0);
        let mut a = base.data().to_vec();
        let mut b: Vec<f32> = base.data().iter().map(|v| v + shift).collect();
        activation::softmax_rows(&mut a, 1, cols);
        activation::softmax_rows(&mut b, 1, cols);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-4, "{} vs {}", x, y);
        }
    }

    #[test]
    fn avgpool_preserves_total_mass(
        c in 1usize..4,
        hw in 1usize..6,
        seed in any::<u64>(),
    ) {
        let input = Tensor::seeded_uniform([1, c, hw, hw], seed, -2.0, 2.0);
        let out = pool::avgpool_global(input.data(), 1, c, hw, hw);
        let total_in: f32 = input.data().iter().sum();
        let total_out: f32 = out.iter().map(|v| v * (hw * hw) as f32).sum();
        prop_assert!((total_in - total_out).abs() < 1e-2);
    }
}
