//! `serving_saturation` — the admission-control ablation: offered-load
//! sweep against the TF-Serving analog in its two I/O shapes.
//!
//! * `thread_per_connection_batch1` — the paper-original blocking server:
//!   one thread per connection, every request scored alone. No admission
//!   control, so nothing is ever shed; overload shows up as latency.
//! * `reactor_batch16` — the readiness-driven reactor feeding the
//!   `crayfish-admission` continuous-batching queue (`max_batch` 16):
//!   requests from all connections stack into cross-connection batches,
//!   and a full queue sheds with a typed `Overloaded { retry_after }`.
//!
//! Load is closed-loop: `C` concurrent client connections, each issuing
//! the paper's FFNN (28×28 → 3×32 ReLU → 10) as fast as the server
//! answers. Sweeping `C` walks the latency/throughput curve past the knee
//! where p99 crosses the SLO; *goodput* counts only within-SLO responses.
//! A shed request (`Overloaded`) is not an error and not goodput — the
//! client honours `retry_after` and tries again; any other failure counts
//! as a drop, and the bench asserts there are none.
//!
//! The raw FFNN applies in microseconds on this hardware, which would put
//! the experiment in the wrong regime (the host saturates on protocol CPU
//! long before the scoring replicas do). Real external servers spend
//! milliseconds per invocation — the repo's own calibration puts
//! TF-Serving at ~2.25 ms per single-record request — so each deployed
//! replica wraps the real FFNN executor in a [`TimedModel`] that spends a
//! modelled `PER_CALL + rows × PER_ROW` service time (via [`Cost::spend`],
//! i.e. off-CPU, like every foreign-runtime cost in this repo) while the
//! replica is held. That is exactly the structure continuous batching
//! exploits: the per-invocation fixed cost is paid once per *batch*
//! instead of once per *request*.
//!
//! ```sh
//! cargo run --release -p crayfish-bench --bin serving_saturation            # full
//! cargo run --release -p crayfish-bench --bin serving_saturation -- --quick # CI
//! ```
//!
//! Writes `bench_results/serving_saturation.json` (in both modes — CI
//! archives the quick run as an artifact) and prints the table. Timing
//! goes through `crayfish_sim::Stopwatch` (the repo's clock authority).

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::path::Path;
use std::time::Duration;

use crayfish_admission::AdmissionMetrics;
use crayfish_models::ffnn;
use crayfish_obs::ObsHandle;
use crayfish_runtime::{EmbeddedRuntime, LoadedModel, OnnxRuntime};
use crayfish_serving::{
    AdmissionConfig, GrpcClient, IoModel, ModelRegistry, ScoringClient, ServingConfig, ServingError,
};
use crayfish_sim::{Cost, NetworkModel, Stopwatch};
use crayfish_tensor::Tensor;

/// Latency SLO the goodput and the knee are defined against.
const SLO_MS: f64 = 25.0;
/// Scoring replicas for both server shapes (model pool size / dispatcher
/// workers).
const REPLICAS: usize = 2;
/// Batch cap for the reactor mode.
const MAX_BATCH: usize = 16;
/// Modelled fixed cost of one scoring invocation (session dispatch, op
/// scheduling, server-side stack) and marginal cost per batched row.
/// `2 ms + 1 × 250 µs` reproduces the repo's calibrated ~2.25 ms
/// TF-Serving single-record latency.
const PER_CALL_US: f64 = 2_000.0;
const PER_ROW_US: f64 = 250.0;
/// Bounded admission queue for the reactor mode — small enough that the
/// top of the sweep actually sheds, demonstrating the backpressure path.
const QUEUE_CAPACITY: usize = 48;

const SWEEP: &[usize] = &[1, 2, 4, 8, 16, 32, 64, 128];
const QUICK_SWEEP: &[usize] = &[2, 8];

/// The real FFNN executor behind a modelled service time: `apply` spends
/// `PER_CALL + rows × PER_ROW` while the caller holds the pool replica,
/// then scores for real. `Cost`'s per-byte term is reinterpreted as
/// per-row (the affine shape is identical).
struct TimedModel {
    inner: Box<dyn LoadedModel>,
    service: Cost,
}

impl LoadedModel for TimedModel {
    fn runtime_name(&self) -> &'static str {
        "timed-onnx"
    }

    fn apply(&mut self, input: &Tensor) -> crayfish_runtime::Result<Tensor> {
        let rows = input.shape().dims().first().copied().unwrap_or(1);
        self.service.spend(rows);
        self.inner.apply(input)
    }
}

struct Mode {
    name: &'static str,
    io: IoModel,
    admission: AdmissionConfig,
}

#[derive(Debug)]
struct Point {
    clients: usize,
    secs: f64,
    ok: u64,
    within_slo: u64,
    shed: u64,
    errors: u64,
    p50_ms: f64,
    p99_ms: f64,
    mean_batch: f64,
}

impl Point {
    fn throughput_rps(&self) -> f64 {
        self.ok as f64 / self.secs
    }
    fn goodput_rps(&self) -> f64 {
        self.within_slo as f64 / self.secs
    }
}

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() as f64 - 1.0) * q).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

/// Drive one (mode, client-count) point against a fresh server.
fn run_point(mode: &Mode, clients: usize, window: Duration) -> Point {
    let obs = ObsHandle::enabled();
    let registry = ModelRegistry::new(ServingConfig {
        replicas: REPLICAS,
        io: mode.io,
        admission: mode.admission,
        obs: obs.clone(),
        ..Default::default()
    });
    let graph = ffnn::build(1);
    let loader = OnnxRuntime::new();
    let service = Cost::new(PER_CALL_US * 1e3, PER_ROW_US * 1e3);
    registry
        .deploy_with("ffnn", move || {
            let inner = loader.load_graph(&graph, crayfish_runtime::Device::Cpu)?;
            Ok(Box::new(TimedModel { inner, service }) as Box<dyn LoadedModel>)
        })
        .expect("deploy timed FFNN");
    let server = crayfish_serving::tf_serving::start_with_registry(registry).expect("start server");
    let addr = server.addr();

    let mut handles = Vec::new();
    for t in 0..clients {
        handles.push(std::thread::spawn(move || {
            let mut latencies_ms: Vec<f64> = Vec::new();
            let mut shed = 0u64;
            let mut errors = 0u64;
            let mut client = match GrpcClient::connect(addr, NetworkModel::zero()) {
                Ok(c) => c,
                Err(_) => return (latencies_ms, shed, 1u64),
            };
            let input = Tensor::seeded_uniform([1, 28, 28], t as u64 + 1, 0.0, 1.0);
            // Warm up the connection and the server's caches off the record.
            for _ in 0..3 {
                let _ = client.infer(&input);
            }
            let window_sw = Stopwatch::start();
            while window_sw.elapsed() < window {
                let sw = Stopwatch::start();
                match client.infer(&input) {
                    Ok(_) => latencies_ms.push(sw.elapsed_millis()),
                    Err(ServingError::Overloaded { retry_after }) => {
                        shed += 1;
                        std::thread::sleep(retry_after.min(Duration::from_millis(10)));
                    }
                    Err(_) => {
                        errors += 1;
                        break;
                    }
                }
            }
            (latencies_ms, shed, errors)
        }));
    }
    let run_sw = Stopwatch::start();
    let mut all_ms: Vec<f64> = Vec::new();
    let (mut shed, mut errors) = (0u64, 0u64);
    for h in handles {
        let (ms, s, e) = h.join().expect("client thread");
        all_ms.extend(ms);
        shed += s;
        errors += e;
    }
    let secs = run_sw.elapsed().as_secs_f64().max(1e-9);
    server.shutdown();

    let sizes = AdmissionMetrics::new(&obs).batch_size_snapshot();
    let mean_batch = if sizes.count() > 0 {
        sizes.sum() as f64 / sizes.count() as f64
    } else {
        1.0
    };
    all_ms.sort_by(|a, b| a.total_cmp(b));
    let within_slo = all_ms.iter().filter(|&&ms| ms <= SLO_MS).count() as u64;
    Point {
        clients,
        secs,
        ok: all_ms.len() as u64,
        within_slo,
        shed,
        errors,
        p50_ms: percentile(&all_ms, 0.50),
        p99_ms: percentile(&all_ms, 0.99),
        mean_batch,
    }
}

/// The knee: the sweep point with the highest goodput whose p99 still
/// meets the SLO; if every point violates it, the lowest-load point.
fn knee(points: &[Point]) -> &Point {
    points
        .iter()
        .filter(|p| p.p99_ms <= SLO_MS)
        .max_by(|a, b| a.goodput_rps().total_cmp(&b.goodput_rps()))
        .unwrap_or(&points[0])
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let window = if quick {
        Duration::from_millis(300)
    } else {
        Duration::from_millis(1500)
    };
    let sweep = if quick { QUICK_SWEEP } else { SWEEP };
    let threads_available = std::thread::available_parallelism().map_or(1, |n| n.get());
    let cpu = std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1))
                .map(|v| v.trim().to_string())
        })
        .unwrap_or_else(|| "unknown".into());

    let modes = [
        Mode {
            name: "thread_per_connection_batch1",
            io: IoModel::ThreadPerConnection,
            admission: AdmissionConfig::batch1(),
        },
        Mode {
            name: "reactor_batch16",
            io: IoModel::Reactor,
            admission: AdmissionConfig {
                max_batch: MAX_BATCH,
                max_wait: Duration::from_micros(500),
                queue_capacity: QUEUE_CAPACITY,
            },
        },
    ];

    let mut results: Vec<(&'static str, Vec<Point>)> = Vec::new();
    for mode in &modes {
        println!("{} (replicas {REPLICAS}, SLO {SLO_MS} ms):", mode.name);
        let mut points = Vec::new();
        for &clients in sweep {
            let p = run_point(mode, clients, window);
            println!(
                "  C={:<3} {:>8.0} rps  goodput {:>8.0} rps  p50 {:>7.2} ms  p99 {:>7.2} ms  \
                 shed {:>6}  errors {}  batch {:.1}",
                p.clients,
                p.throughput_rps(),
                p.goodput_rps(),
                p.p50_ms,
                p.p99_ms,
                p.shed,
                p.errors,
                p.mean_batch
            );
            assert_eq!(p.errors, 0, "non-shed requests dropped at C={clients}");
            points.push(p);
        }
        results.push((mode.name, points));
    }

    let baseline = knee(&results[0].1);
    let batched = knee(&results[1].1);
    let ratio = batched.goodput_rps() / baseline.goodput_rps().max(1e-9);
    println!(
        "knee goodput: {} {:.0} rps (C={}) vs {} {:.0} rps (C={}) — ratio {:.2}x",
        results[0].0,
        baseline.goodput_rps(),
        baseline.clients,
        results[1].0,
        batched.goodput_rps(),
        batched.clients,
        ratio
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(
        json,
        "  \"bench\": \"serving_saturation\",\n  \"quick\": {quick},\n  \"slo_ms\": {SLO_MS},\n  \"replicas\": {REPLICAS},\n  \"max_batch\": {MAX_BATCH},\n  \"queue_capacity\": {QUEUE_CAPACITY},\n  \"service_per_call_us\": {PER_CALL_US},\n  \"service_per_row_us\": {PER_ROW_US},\n  \"host\": {{\n    \"cpu\": {cpu:?},\n    \"threads_available\": {threads_available},\n    \"note\": \"closed-loop sweep; goodput counts within-SLO responses only; shed requests answered with Overloaded+retry_after are neither goodput nor errors; each replica pays a modelled per_call + rows*per_row service time while held\"\n  }},"
    );
    json.push_str("  \"modes\": [\n");
    for (i, (name, points)) in results.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\n      \"mode\": \"{name}\",\n      \"points\": ["
        );
        for (j, p) in points.iter().enumerate() {
            let comma = if j + 1 == points.len() { "" } else { "," };
            let _ = writeln!(
                json,
                "        {{ \"clients\": {}, \"throughput_rps\": {:.1}, \"goodput_rps\": {:.1}, \
                 \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"ok\": {}, \"shed\": {}, \"errors\": {}, \
                 \"mean_batch\": {:.2} }}{comma}",
                p.clients,
                p.throughput_rps(),
                p.goodput_rps(),
                p.p50_ms,
                p.p99_ms,
                p.ok,
                p.shed,
                p.errors,
                p.mean_batch
            );
        }
        json.push_str("      ]\n");
        let comma = if i + 1 == results.len() { "" } else { "," };
        let _ = writeln!(json, "    }}{comma}");
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"summary\": {{\n    \"baseline_knee\": {{ \"clients\": {}, \"goodput_rps\": {:.1}, \"p99_ms\": {:.3} }},\n    \"batched_knee\": {{ \"clients\": {}, \"goodput_rps\": {:.1}, \"p99_ms\": {:.3} }},\n    \"goodput_ratio\": {:.3}\n  }}",
        baseline.clients,
        baseline.goodput_rps(),
        baseline.p99_ms,
        batched.clients,
        batched.goodput_rps(),
        batched.p99_ms,
        ratio
    );
    json.push_str("}\n");

    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../bench_results");
    let path = dir.join("serving_saturation.json");
    std::fs::create_dir_all(&dir).expect("create bench_results/");
    std::fs::write(&path, json).expect("write serving_saturation.json");
    println!("wrote {}", path.display());
}
