//! The precision knob on plan compilation and its accuracy accounting.
//!
//! Both executors compile their plans at a requested [`Precision`]. For
//! int8/f16 the conv/dense weight operands are quantized at plan-compile
//! time (after Conv+BN folding in the fused plan, so the folded scales are
//! what gets quantized) and steady-state inference runs the matching
//! reduced-precision kernels in `crayfish_tensor`.
//!
//! Quantization is *guarded*: plan compilation runs a small seeded
//! calibration batch through the f32 plan, re-computes every candidate
//! layer with its quantized weights against the same (exact f32) inputs,
//! and only adopts the quantized operand when the layer's relative error
//! stays under [`QuantConfig::max_rel_err`] — otherwise that layer falls
//! back to f32. The per-layer decisions and errors are recorded in a
//! [`PrecisionReport`] so accuracy is accounted for, not assumed
//! (DESIGN.md §3l).

use serde::{Deserialize, Serialize};

/// Numeric precision of the weight operands in a compiled plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum Precision {
    /// Full precision — the packed f32 panels (the default).
    #[default]
    F32,
    /// Per-channel symmetric int8 weights, int8 activations, `i32`
    /// accumulation, dequantized on store.
    Int8,
    /// f16 weight storage, f32 arithmetic — halves weight bandwidth and
    /// footprint at ~2⁻¹¹ relative weight error.
    F16,
}

impl Precision {
    /// Configuration / report name ("f32", "int8", "f16").
    pub fn name(&self) -> &'static str {
        match self {
            Precision::F32 => "f32",
            Precision::Int8 => "int8",
            Precision::F16 => "f16",
        }
    }
}

fn default_max_rel_err() -> f32 {
    0.05
}

fn default_calib_batch() -> usize {
    2
}

/// How a plan is compiled at reduced precision.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct QuantConfig {
    /// Requested weight precision for conv/dense layers.
    #[serde(default)]
    pub precision: Precision,
    /// Per-layer calibration gate: a layer whose max absolute error on the
    /// calibration batch exceeds this fraction of the layer's output range
    /// falls back to f32.
    #[serde(default = "default_max_rel_err")]
    pub max_rel_err: f32,
    /// Calibration batch size (seeded synthetic inputs).
    #[serde(default = "default_calib_batch")]
    pub calib_batch: usize,
    /// Seed for the calibration inputs — fixed so plan compilation is
    /// deterministic.
    #[serde(default)]
    pub calib_seed: u64,
}

impl Default for QuantConfig {
    fn default() -> Self {
        QuantConfig {
            precision: Precision::F32,
            max_rel_err: default_max_rel_err(),
            calib_batch: default_calib_batch(),
            calib_seed: 0,
        }
    }
}

impl QuantConfig {
    /// A config requesting `precision` with the default calibration gate.
    pub fn with_precision(precision: Precision) -> QuantConfig {
        QuantConfig {
            precision,
            ..QuantConfig::default()
        }
    }
}

/// One layer's calibration outcome.
#[derive(Debug, Clone)]
pub struct LayerReport {
    /// Graph node / step name.
    pub name: String,
    /// "conv" or "dense".
    pub kind: &'static str,
    /// Precision the config asked for.
    pub requested: &'static str,
    /// Precision the layer actually compiled to (falls back to "f32" when
    /// the calibration gate rejects the quantized candidate).
    pub chosen: &'static str,
    /// Max absolute error of the candidate on the calibration batch,
    /// relative to the layer's f32 output amax.
    pub rel_err: f32,
    /// Max absolute error of the candidate on the calibration batch.
    pub max_abs_err: f32,
}

/// Per-layer accuracy accounting produced by plan compilation at reduced
/// precision. Empty for f32 plans.
#[derive(Debug, Clone, Default)]
pub struct PrecisionReport {
    /// Requested precision for the whole plan.
    pub requested: Precision,
    /// One entry per conv/dense layer, in execution order.
    pub layers: Vec<LayerReport>,
}

impl PrecisionReport {
    /// Layers that adopted the reduced precision.
    pub fn quantized_count(&self) -> usize {
        self.layers
            .iter()
            .filter(|l| l.chosen == l.requested)
            .count()
    }

    /// Layers the calibration gate sent back to f32.
    pub fn fallback_count(&self) -> usize {
        self.layers.len() - self.quantized_count()
    }

    /// Largest per-layer relative error across the plan.
    pub fn worst_rel_err(&self) -> f32 {
        self.layers.iter().fold(0.0f32, |m, l| m.max(l.rel_err))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_names_and_default() {
        assert_eq!(Precision::default(), Precision::F32);
        assert_eq!(Precision::Int8.name(), "int8");
        assert_eq!(Precision::F16.name(), "f16");
    }

    #[test]
    fn config_defaults_are_sane() {
        let cfg = QuantConfig::default();
        assert_eq!(cfg.precision, Precision::F32);
        assert!(cfg.max_rel_err > 0.0 && cfg.max_rel_err < 1.0);
        assert!(cfg.calib_batch >= 1);
        let cfg = QuantConfig::with_precision(Precision::Int8);
        assert_eq!(cfg.precision, Precision::Int8);
        assert_eq!(cfg.max_rel_err, QuantConfig::default().max_rel_err);
    }

    #[test]
    fn report_counts_fallbacks() {
        let mk = |chosen: &'static str, rel: f32| LayerReport {
            name: "l".into(),
            kind: "dense",
            requested: "int8",
            chosen,
            rel_err: rel,
            max_abs_err: rel,
        };
        let report = PrecisionReport {
            requested: Precision::Int8,
            layers: vec![mk("int8", 0.01), mk("f32", 0.4), mk("int8", 0.02)],
        };
        assert_eq!(report.quantized_count(), 2);
        assert_eq!(report.fallback_count(), 1);
        assert!((report.worst_rel_err() - 0.4).abs() < 1e-6);
    }
}
