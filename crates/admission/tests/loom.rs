//! Loom models for the batch-former handoff. Compiled only under
//! `RUSTFLAGS="--cfg loom"`.
//!
//! The admission queue is a bounded FIFO behind one mutex and one condvar.
//! Producers (`push`) race against flushers (`next_batch`) and shutdown,
//! and three invariants must hold under every interleaving:
//!
//! 1. **No lost request** — every `Ok` push is eventually drained by some
//!    flusher, even when shutdown lands between the enqueue and the drain.
//! 2. **No double-score** — a request is handed to exactly one flusher;
//!    two workers draining concurrently must partition the queue, never
//!    overlap.
//! 3. **No lost wakeup / stuck flusher** — a flusher parked on the condvar
//!    must observe both new work and shutdown. loom condvars never time
//!    out, so a design leaning on `wait_timeout` as its only wakeup path
//!    deadlocks here and fails the model — exactly the discipline the
//!    `crayfish-sync` shim documents.
//!
//! Participant counts stay at 2–3 threads to keep loom's state space
//! tractable.
#![cfg(loom)]

use crayfish_admission::{AdmissionConfig, AdmissionError, AdmissionMetrics, BatchQueue};
use crayfish_obs::ObsHandle;
use crayfish_sync::{model, thread, Arc, Mutex};
use std::time::Duration;

fn queue(max_batch: usize, capacity: usize) -> BatchQueue<u64> {
    BatchQueue::new(
        AdmissionConfig {
            max_batch,
            // Irrelevant under loom: wait_timeout never times out there.
            max_wait: Duration::from_millis(1),
            queue_capacity: capacity,
        },
        1,
        AdmissionMetrics::new(&ObsHandle::disabled()),
    )
}

/// Invariants 1 + 2: two producers race one flusher; every successfully
/// admitted request is drained exactly once after shutdown.
#[test]
fn no_request_lost_or_double_scored() {
    model(|| {
        let q = queue(2, 8);
        let producers: Vec<_> = [10u64, 20u64]
            .into_iter()
            .map(|base| {
                let q = q.clone();
                thread::spawn(move || q.push(base).is_ok())
            })
            .collect();

        let drained = Arc::new(Mutex::new(Vec::new()));
        let flusher = {
            let q = q.clone();
            let drained = Arc::clone(&drained);
            thread::spawn(move || {
                let mut out = Vec::new();
                while q.next_batch(&mut out) {
                    drained.lock().extend(out.drain(..).map(|p| p.payload));
                }
            })
        };

        let admitted: Vec<u64> = producers
            .into_iter()
            .zip([10u64, 20u64])
            .filter_map(|(h, base)| h.join().unwrap().then_some(base))
            .collect();
        q.shutdown();
        flusher.join().unwrap();

        let mut seen = drained.lock().clone();
        seen.sort_unstable();
        assert_eq!(seen, admitted, "lost or double-scored request");
    });
}

/// Invariant 2 across workers: two flushers drain four pre-queued requests
/// in batches of two; their unions must partition the queue exactly.
#[test]
fn concurrent_flushers_partition_the_queue() {
    model(|| {
        let q = queue(2, 8);
        for i in 0..4u64 {
            q.push(i).unwrap();
        }
        q.shutdown();
        let flushers: Vec<_> = (0..2)
            .map(|_| {
                let q = q.clone();
                thread::spawn(move || {
                    let mut mine = Vec::new();
                    let mut out = Vec::new();
                    while q.next_batch(&mut out) {
                        assert!(out.len() <= 2, "batch cap violated");
                        mine.extend(out.drain(..).map(|p| p.payload));
                    }
                    mine
                })
            })
            .collect();
        let mut seen: Vec<u64> = flushers
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3], "queue not partitioned");
    });
}

/// Invariant 3: a flusher parked on an empty queue must observe shutdown
/// from another thread. A lost shutdown wakeup deadlocks the model.
#[test]
fn shutdown_wakes_a_parked_flusher() {
    model(|| {
        let q = queue(2, 4);
        let flusher = {
            let q = q.clone();
            thread::spawn(move || {
                let mut out = Vec::new();
                let mut total = 0usize;
                while q.next_batch(&mut out) {
                    total += out.len();
                    out.clear();
                }
                total
            })
        };
        let stopper = {
            let q = q.clone();
            thread::spawn(move || q.shutdown())
        };
        stopper.join().unwrap();
        flusher.join().unwrap();
    });
}

/// Push-after-shutdown is always refused, whatever the interleaving: a
/// producer racing shutdown either gets admitted (and drained) or sees
/// `Shutdown` — never a silent drop.
#[test]
fn racing_push_and_shutdown_never_drops_silently() {
    model(|| {
        let q = queue(1, 4);
        let producer = {
            let q = q.clone();
            thread::spawn(move || q.push(7))
        };
        let stopper = {
            let q = q.clone();
            thread::spawn(move || q.shutdown())
        };
        stopper.join().unwrap();
        let result = producer.join().unwrap();

        let mut drained = Vec::new();
        let mut out = Vec::new();
        while q.next_batch(&mut out) {
            drained.extend(out.drain(..).map(|p| p.payload));
        }
        match result {
            Ok(()) => assert_eq!(drained, vec![7], "admitted request lost"),
            Err(rejected) => match rejected.error {
                AdmissionError::Shutdown => {
                    assert_eq!(rejected.payload, 7, "rejected payload not handed back");
                    assert!(drained.is_empty());
                }
                other => panic!("unexpected admission error: {other:?}"),
            },
        }
    });
}
