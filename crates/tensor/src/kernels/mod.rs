//! Neural-network compute kernels.
//!
//! GEMM-backed kernels (dense, `im2col` convolution) run through the
//! packed, cache-blocked path in [`gemm`]; problems above the size floor
//! are additionally spread across the worker pool in [`crate::par`]
//! (default single-threaded — the paper's one-intra-op-thread serving
//! configuration — opt in via `CRAYFISH_THREADS`). Everything operates on
//! the row-major layouts documented in the crate root, and the hot-path
//! functions in this module are allocation-free (enforced by the
//! `hot-path-alloc` lint rule) — buffers come from caller arenas and
//! [`crate::packed`] scratch.

pub mod activation;
pub mod conv;
pub mod gemm;
pub mod microkernel;
pub mod norm;
pub mod pack;
pub mod pool;
pub mod quant;

pub use activation::{relu_inplace, softmax_rows};
pub use conv::{
    conv2d_direct, conv2d_dispatch_into, conv2d_f16_prepacked_into, conv2d_im2col,
    conv2d_prepacked_into, conv2d_q8_prepacked_into, im2col, Conv2dParams,
};
pub use gemm::{
    dense, dense_dispatch_into, dense_into, dense_prepacked_into, gemm, gemm_ipj, gemm_prepacked_a,
    gemm_prepacked_a16, gemm_prepacked_b, gemm_prepacked_b16, gemm_prepacked_b16_ipj,
    gemm_prepacked_b_ipj, gemm_prepacked_qa, gemm_prepacked_qb, gemm_scratch, gemm_st,
    gemm_tiled_unpacked, gemm_with_pool, matmul_naive,
};
pub use norm::{batchnorm_inference, BnParams};
pub use pool::{avgpool_global, avgpool_global_into, maxpool2d, maxpool2d_into};

/// Elementwise `a += b` for residual connections.
///
/// # Panics
/// Panics if the slices differ in length (graph validation guarantees they
/// do not).
pub fn add_inplace(a: &mut [f32], b: &[f32]) {
    assert_eq!(a.len(), b.len(), "add_inplace length mismatch");
    for (x, y) in a.iter_mut().zip(b) {
        *x += y;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_inplace_adds() {
        let mut a = vec![1.0, 2.0];
        add_inplace(&mut a, &[10.0, 20.0]);
        assert_eq!(a, vec![11.0, 22.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn add_inplace_panics_on_mismatch() {
        let mut a = vec![1.0];
        add_inplace(&mut a, &[1.0, 2.0]);
    }
}
