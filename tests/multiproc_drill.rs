//! The multi-process drill: real `crayfish-node` broker processes and
//! `crayfish-worker` engine processes, wired over TCP, surviving SIGKILL.
//!
//! These tests spawn the workspace's own binaries (located through the
//! `CARGO_BIN_EXE_*` env Cargo sets for integration tests) and assert the
//! cross-process guarantees the in-process chaos matrix already enforces:
//! a SIGKILLed leader node loses nothing and duplicates nothing, a
//! SIGKILLed worker resumes from committed offsets, and the experiment
//! runner drives the whole topology end to end. `CHAOS_SEED` varies the
//! producer flush cadence.

use std::collections::HashSet;
use std::process::{Command, Stdio};
use std::time::Duration;

use crayfish::broker::{BrokerApi, PartitionConsumer, Producer, ProducerConfig};
use crayfish::chaos::poll_until;
use crayfish::framework::batch::{CrayfishDataBatch, ScoredBatch};
use crayfish::framework::deploy::{self, DeploymentTopology, NODE_BIN_ENV, WORKER_BIN_ENV};
use crayfish::framework::{DataProcessor, ProcessorContext, RunningJob};
use crayfish::prelude::*;
use crayfish::sim::now_millis_f64;
use crayfish::tensor::Tensor;

fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

fn set_bin_env() {
    std::env::set_var(NODE_BIN_ENV, env!("CARGO_BIN_EXE_crayfish-node"));
    std::env::set_var(WORKER_BIN_ENV, env!("CARGO_BIN_EXE_crayfish-worker"));
}

#[test]
fn leader_sigkill_loses_nothing_and_duplicates_nothing() {
    set_bin_env();
    let seed = chaos_seed();
    let mut cluster = deploy::spawn_broker_cluster(3, 2).unwrap();
    let obs = ObsHandle::enabled();
    let chaos = ChaosHandle::enabled();
    let client = cluster.client(obs.clone(), chaos.clone());
    client.create_topic("t", 4).unwrap();

    const TOTAL: u64 = 90;
    let mut producer = Producer::new(
        client.clone(),
        "t",
        ProducerConfig {
            retry: RetryPolicy::patient(),
            ..Default::default()
        },
    )
    .unwrap();
    let mut consumer =
        PartitionConsumer::new(client.clone(), "t", "drill", (0..4).collect()).unwrap();
    let mut all: Vec<u64> = Vec::new();
    let mut drain = |all: &mut Vec<u64>| {
        for r in consumer.poll(Duration::from_millis(20)).unwrap_or_default() {
            all.push(u64::from_le_bytes(r.value[..8].try_into().unwrap()));
        }
        consumer.commit();
    };

    let mut incident = None;
    for id in 0..TOTAL {
        producer
            .send(None, id.to_le_bytes().to_vec().into())
            .unwrap();
        if id % 8 == seed % 8 {
            producer.flush();
        }
        if id == TOTAL / 3 {
            // SIGKILL the bootstrap leader mid-stream. No graceful
            // handover: the client must fail over to a caught-up replica.
            incident = chaos.open_incident(FaultKind::LeaderKill);
            assert!(cluster.kill_node(0), "node 0 already dead");
        }
        if id == 2 * TOTAL / 3 {
            chaos.end_fault(incident.take());
        }
        drain(&mut all);
    }
    producer.flush();

    let drained = poll_until(Duration::from_secs(30), || {
        drain(&mut all);
        all.iter().copied().collect::<HashSet<_>>().len() as u64 >= TOTAL
    });
    let seen: HashSet<u64> = all.iter().copied().collect();
    assert!(drained, "only {} of {TOTAL} ids arrived", seen.len());
    assert_eq!(seen.len() as u64, TOTAL, "records lost across failover");
    assert_eq!(all.len() as u64, TOTAL, "duplicates past the dedup window");

    // The client really failed over (and says so in the net counters).
    assert!(
        obs.counter("net_failovers").get() > 0,
        "no failover recorded"
    );
    let report = chaos.report();
    assert_eq!(report.incidents.len(), 1, "{report}");
    assert!(
        report.incidents[0].mttr_ms.unwrap_or(-1.0) > 0.0,
        "MTTR not measured: {report}"
    );
    cluster.shutdown();
}

#[test]
fn killed_worker_process_resumes_from_committed_offsets() {
    set_bin_env();
    let mut cluster = deploy::spawn_broker_cluster(1, 1).unwrap();
    let client = cluster.client(ObsHandle::disabled(), ChaosHandle::disabled());
    client.create_topic("in", 4).unwrap();
    client.create_topic("out", 4).unwrap();

    const TOTAL: u64 = 40;
    let mut producer = Producer::new(client.clone(), "in", ProducerConfig::default()).unwrap();
    for id in 0..TOTAL {
        let t = Tensor::seeded_uniform([1, 8, 8], id, 0.0, 1.0);
        let payload = CrayfishDataBatch::from_tensor(id, now_millis_f64(), &t)
            .encode()
            .unwrap();
        producer.send(None, payload).unwrap();
    }
    producer.flush();

    let nodes_arg = cluster
        .addrs()
        .iter()
        .map(|(id, addr)| format!("{id}={addr}"))
        .collect::<Vec<_>>()
        .join(",");
    let worker_args = [
        "--nodes",
        &nodes_arg,
        "--input",
        "in",
        "--output",
        "out",
        "--group",
        "sut",
        "--partitions",
        "0,1,2,3",
        "--model",
        "tiny-mlp",
        "--seed",
        "42",
    ];
    let spawn_worker = || {
        Command::new(env!("CARGO_BIN_EXE_crayfish-worker"))
            .args(worker_args)
            .stdin(Stdio::null())
            .spawn()
            .unwrap()
    };

    let out_ids = || -> Vec<u64> {
        let mut ids = Vec::new();
        for p in 0..4u32 {
            if let Ok(records) = client.read("out", p, 0, usize::MAX, usize::MAX) {
                for r in records {
                    ids.push(ScoredBatch::decode(&r.value).unwrap().id);
                }
            }
        }
        ids
    };

    // First incarnation scores part of the input, then dies mid-stream.
    let mut worker = spawn_worker();
    let progressed = poll_until(Duration::from_secs(20), || {
        out_ids().iter().copied().collect::<HashSet<_>>().len() >= 10
    });
    assert!(progressed, "worker never started scoring");
    worker.kill().unwrap();
    worker.wait().unwrap();

    // Second incarnation resumes from the group's committed offsets.
    let mut worker = spawn_worker();
    let finished = poll_until(Duration::from_secs(30), || {
        out_ids().iter().copied().collect::<HashSet<_>>().len() as u64 >= TOTAL
    });
    let all = out_ids();
    let seen: HashSet<u64> = all.iter().copied().collect();
    worker.kill().unwrap();
    worker.wait().unwrap();
    assert!(finished, "only {} of {TOTAL} ids scored", seen.len());
    assert_eq!(seen.len() as u64, TOTAL, "records lost across restart");
    // At-least-once across the kill: at most the uncommitted tail replays.
    assert!(
        all.len() as u64 <= 2 * TOTAL,
        "{} emissions exceed the replay bound",
        all.len()
    );
    cluster.shutdown();
}

/// Never called: with `engine_workers > 0` the runner spawns worker
/// processes instead of an in-process engine.
struct NoEngine;

impl DataProcessor for NoEngine {
    fn name(&self) -> &'static str {
        "none"
    }
    fn start(&self, _ctx: ProcessorContext) -> crayfish::framework::Result<Box<dyn RunningJob>> {
        panic!("multi-process runs must not start an in-process engine");
    }
}

#[test]
fn runner_drives_a_multiprocess_experiment_end_to_end() {
    set_bin_env();
    let mut spec = ExperimentSpec::quick(
        ModelSpec::TinyMlp,
        ServingChoice::Embedded {
            lib: EmbeddedLib::Onnx,
            device: Device::Cpu,
        },
    );
    spec.obs = ObsHandle::enabled();
    spec.partitions = 4;
    spec.duration = Duration::from_secs(3);
    spec.deployment = DeploymentTopology::MultiProcess {
        broker_nodes: 3,
        engine_workers: 2,
    };
    let result = run_experiment(&NoEngine, &spec).unwrap();
    assert!(result.produced > 20, "produced {}", result.produced);
    assert!(result.consumed > 20, "consumed {}", result.consumed);
    assert!(result.latency.count > 0);
    assert!(result.latency.mean > 0.0);
    // The run's RPC instrumentation saw real wire traffic.
    assert!(spec.obs.counter("net_bytes_out").get() > 0);
}
