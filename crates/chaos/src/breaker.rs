//! A circuit breaker with half-open probing.
//!
//! Serving clients wrap calls in [`CircuitBreaker::try_acquire`]: after
//! `failure_threshold` consecutive failures the circuit opens and calls
//! fail fast (no socket work at all) until `cooldown` elapses, at which
//! point a limited number of half-open probes test whether the backend
//! recovered. A probe success closes the circuit; a probe failure re-opens
//! it for another cooldown.

use std::time::{Duration, Instant};

use crayfish_sync::Mutex;

/// Breaker tunables.
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Consecutive failures that open the circuit.
    pub failure_threshold: u32,
    /// How long the circuit stays open before probing.
    pub cooldown: Duration,
    /// Concurrent probes allowed while half-open.
    pub half_open_probes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 5,
            cooldown: Duration::from_millis(250),
            half_open_probes: 1,
        }
    }
}

/// Breaker state, exported as a gauge (0 closed, 1 open, 2 half-open).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CircuitState {
    /// Calls flow normally.
    Closed,
    /// Calls fail fast.
    Open,
    /// A limited number of probe calls test the backend.
    HalfOpen,
}

impl CircuitState {
    /// Numeric code for the obs gauge.
    pub fn code(&self) -> i64 {
        match self {
            CircuitState::Closed => 0,
            CircuitState::Open => 1,
            CircuitState::HalfOpen => 2,
        }
    }
}

#[derive(Debug)]
struct Inner {
    state: CircuitState,
    consecutive_failures: u32,
    opened_at: Option<Instant>,
    probes_in_flight: u32,
    /// Closed/half-open → open transitions since construction.
    trips: u64,
}

/// See module docs.
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    inner: Mutex<Inner>,
}

impl CircuitBreaker {
    /// A closed breaker.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            inner: Mutex::new(Inner {
                state: CircuitState::Closed,
                consecutive_failures: 0,
                opened_at: None,
                probes_in_flight: 0,
                trips: 0,
            }),
        }
    }

    /// May a call proceed right now? `false` means fail fast. A `true`
    /// from a half-open circuit claims a probe slot; report the outcome
    /// via [`on_success`](Self::on_success)/[`on_failure`](Self::on_failure).
    pub fn try_acquire(&self) -> bool {
        let mut inner = self.inner.lock();
        match inner.state {
            CircuitState::Closed => true,
            CircuitState::Open => {
                let cooled = inner
                    .opened_at
                    .map(|t| {
                        crayfish_sim::now().saturating_duration_since(t) >= self.config.cooldown
                    })
                    .unwrap_or(true);
                if cooled {
                    inner.state = CircuitState::HalfOpen;
                    inner.probes_in_flight = 1;
                    true
                } else {
                    false
                }
            }
            CircuitState::HalfOpen => {
                if inner.probes_in_flight < self.config.half_open_probes {
                    inner.probes_in_flight += 1;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Report a successful call: closes the circuit.
    pub fn on_success(&self) {
        let mut inner = self.inner.lock();
        inner.state = CircuitState::Closed;
        inner.consecutive_failures = 0;
        inner.probes_in_flight = 0;
        inner.opened_at = None;
    }

    /// Report a failed call: opens the circuit after `failure_threshold`
    /// consecutive failures, or immediately from half-open.
    ///
    /// Failures reported while the circuit is *already open* — stragglers
    /// from calls admitted before the trip — are counted but do not re-stamp
    /// `opened_at`. The first version of this method tripped unconditionally,
    /// so two racing failures extended the cooldown (and under sustained
    /// load could postpone probing indefinitely); the loom model in
    /// `tests/loom.rs` pins the single-trip behaviour.
    pub fn on_failure(&self) {
        let mut inner = self.inner.lock();
        inner.consecutive_failures = inner.consecutive_failures.saturating_add(1);
        let trip = inner.state == CircuitState::HalfOpen
            || (inner.state == CircuitState::Closed
                && inner.consecutive_failures >= self.config.failure_threshold);
        if trip {
            inner.state = CircuitState::Open;
            inner.opened_at = Some(crayfish_sim::now());
            inner.probes_in_flight = 0;
            inner.trips += 1;
        }
    }

    /// Current state.
    pub fn state(&self) -> CircuitState {
        self.inner.lock().state
    }

    /// How many times the circuit has tripped open. Exposed for tests and
    /// dashboards; one burst of concurrent failures must trip exactly once.
    pub fn trips(&self) -> u64 {
        self.inner.lock().trips
    }

    /// Numeric state code for the obs gauge.
    pub fn state_code(&self) -> i64 {
        self.state().code()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_millis(20),
            half_open_probes: 1,
        }
    }

    #[test]
    fn opens_after_threshold_failures() {
        let b = CircuitBreaker::new(cfg());
        for _ in 0..2 {
            assert!(b.try_acquire());
            b.on_failure();
            assert_eq!(b.state(), CircuitState::Closed);
        }
        b.on_failure();
        assert_eq!(b.state(), CircuitState::Open);
        assert!(!b.try_acquire());
    }

    #[test]
    fn half_open_probe_closes_on_success() {
        let b = CircuitBreaker::new(cfg());
        for _ in 0..3 {
            b.on_failure();
        }
        std::thread::sleep(Duration::from_millis(25));
        assert!(b.try_acquire(), "cooldown elapsed: probe allowed");
        assert_eq!(b.state(), CircuitState::HalfOpen);
        assert!(!b.try_acquire(), "only one probe in flight");
        b.on_success();
        assert_eq!(b.state(), CircuitState::Closed);
        assert!(b.try_acquire());
    }

    #[test]
    fn half_open_probe_failure_reopens() {
        let b = CircuitBreaker::new(cfg());
        for _ in 0..3 {
            b.on_failure();
        }
        std::thread::sleep(Duration::from_millis(25));
        assert!(b.try_acquire());
        b.on_failure();
        assert_eq!(b.state(), CircuitState::Open);
        assert!(!b.try_acquire(), "fresh cooldown after failed probe");
        assert_eq!(b.state_code(), 1);
    }
}
