//! Inference-time batch normalisation.

/// Frozen batch-norm parameters (inference mode).
#[derive(Debug, Clone, PartialEq)]
pub struct BnParams {
    /// Learned scale, one per channel.
    pub gamma: Vec<f32>,
    /// Learned shift, one per channel.
    pub beta: Vec<f32>,
    /// Running mean, one per channel.
    pub mean: Vec<f32>,
    /// Running variance, one per channel.
    pub var: Vec<f32>,
    /// Numerical stabiliser.
    pub eps: f32,
}

impl BnParams {
    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.gamma.len()
    }

    /// Fold the four parameter vectors into per-channel `(scale, shift)` so
    /// that `y = scale * x + shift`. Fused runtimes fold these further into
    /// the preceding convolution's weights.
    pub fn fold(&self) -> (Vec<f32>, Vec<f32>) {
        let scale: Vec<f32> = self
            .gamma
            .iter()
            .zip(&self.var)
            .map(|(g, v)| g / (v + self.eps).sqrt())
            .collect();
        let shift: Vec<f32> = self
            .beta
            .iter()
            .zip(&self.mean)
            .zip(&scale)
            .map(|((b, m), s)| b - m * s)
            .collect();
        (scale, shift)
    }
}

/// Apply inference batch-norm in place over NCHW data:
/// `x[b,c,·,·] = gamma[c] * (x - mean[c]) / sqrt(var[c] + eps) + beta[c]`.
pub fn batchnorm_inference(x: &mut [f32], batch: usize, c: usize, plane: usize, p: &BnParams) {
    assert_eq!(x.len(), batch * c * plane, "batchnorm: input length");
    assert_eq!(p.channels(), c, "batchnorm: channel count");
    let (scale, shift) = p.fold();
    for b in 0..batch {
        for ch in 0..c {
            let (s, t) = (scale[ch], shift[ch]);
            let start = (b * c + ch) * plane;
            for v in &mut x[start..start + plane] {
                *v = s * *v + t;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(c: usize) -> BnParams {
        BnParams {
            gamma: vec![2.0; c],
            beta: vec![1.0; c],
            mean: vec![0.5; c],
            var: vec![4.0; c],
            eps: 0.0,
        }
    }

    #[test]
    fn fold_produces_affine_form() {
        let p = params(1);
        let (scale, shift) = p.fold();
        // scale = 2 / sqrt(4) = 1, shift = 1 - 0.5 * 1 = 0.5
        assert_eq!(scale, vec![1.0]);
        assert_eq!(shift, vec![0.5]);
    }

    #[test]
    fn normalises_per_channel() {
        let mut x = vec![0.5, 2.5, 10.0, 20.0]; // c=2, plane=2
        let mut p = params(2);
        p.gamma = vec![2.0, 1.0];
        p.mean = vec![0.5, 10.0];
        p.var = vec![4.0, 0.0];
        p.eps = 1.0;
        batchnorm_inference(&mut x, 1, 2, 2, &p);
        // ch0: 2*(x-0.5)/sqrt(5) + 1; ch1: (x-10)/1 + 1
        let s0 = 2.0 / 5.0f32.sqrt();
        assert!((x[0] - 1.0).abs() < 1e-6);
        assert!((x[1] - (s0 * 2.0 + 1.0)).abs() < 1e-6);
        assert!((x[2] - 1.0).abs() < 1e-6);
        assert!((x[3] - 11.0).abs() < 1e-6);
    }

    #[test]
    fn identity_batchnorm_is_noop() {
        let p = BnParams {
            gamma: vec![1.0; 3],
            beta: vec![0.0; 3],
            mean: vec![0.0; 3],
            var: vec![1.0; 3],
            eps: 0.0,
        };
        let mut x: Vec<f32> = (0..12).map(|v| v as f32).collect();
        let orig = x.clone();
        batchnorm_inference(&mut x, 2, 3, 2, &p);
        for (a, b) in x.iter().zip(&orig) {
            assert!((a - b).abs() < 1e-6);
        }
    }
}
