//! The paper's FFNN: a Fashion-MNIST-scale fully connected classifier.
//!
//! Architecture (§4.1 "Pre-trained Models"): 28×28 input, three hidden
//! layers of 32 ReLU neurons, 10-way softmax output; ~28 K parameters.

use std::sync::Arc;

use crayfish_tensor::{NnGraph, Op, Shape, Tensor};

/// Input image side length.
pub const INPUT_SIDE: usize = 28;
/// Hidden-layer width.
pub const HIDDEN: usize = 32;
/// Number of output classes.
pub const CLASSES: usize = 10;

/// Build the FFNN with weights seeded from `seed`.
pub fn build(seed: u64) -> NnGraph {
    let mut g = NnGraph::new("ffnn");
    let input = g.add(
        "input",
        Op::Input {
            shape: Shape::from([INPUT_SIDE, INPUT_SIDE]),
        },
        vec![],
    );
    let mut x = g.add("flatten", Op::Flatten, vec![input]);
    let mut in_f = INPUT_SIDE * INPUT_SIDE;
    for layer in 0..3 {
        let w = Arc::new(Tensor::seeded_he(
            [in_f, HIDDEN],
            seed.wrapping_add(layer as u64 * 2 + 1),
            in_f,
        ));
        let b = Arc::new(Tensor::zeros([HIDDEN]));
        let d = g.add(format!("fc{layer}"), Op::Dense { w, b }, vec![x]);
        x = g.add(format!("relu{layer}"), Op::Relu, vec![d]);
        in_f = HIDDEN;
    }
    let w = Arc::new(Tensor::seeded_he(
        [HIDDEN, CLASSES],
        seed.wrapping_add(100),
        HIDDEN,
    ));
    let b = Arc::new(Tensor::zeros([CLASSES]));
    let logits = g.add("fc_out", Op::Dense { w, b }, vec![x]);
    g.add("softmax", Op::Softmax, vec![logits]);
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_table2_shapes() {
        let g = build(7);
        assert_eq!(g.input_shape().unwrap().dims(), &[28, 28]);
        assert_eq!(g.output_shape(1).unwrap().dims(), &[1, 10]);
    }

    #[test]
    fn parameter_count_is_about_28k() {
        let g = build(7);
        let params = g.param_count();
        // 784*32+32 + 32*32+32 + 32*32+32 + 32*10+10 = 27,562
        assert_eq!(params, 27_562);
        assert!((27_000..29_000).contains(&params), "Table 2 says ~28 K");
    }

    #[test]
    fn builds_deterministically_from_seed() {
        let a = build(42);
        let b = build(42);
        assert_eq!(a.param_count(), b.param_count());
        // Compare one weight tensor bit-for-bit.
        let wa = match &a.nodes()[2].op {
            Op::Dense { w, .. } => w.clone(),
            other => panic!("unexpected op {}", other.kind()),
        };
        let wb = match &b.nodes()[2].op {
            Op::Dense { w, .. } => w.clone(),
            other => panic!("unexpected op {}", other.kind()),
        };
        assert_eq!(wa.data(), wb.data());
    }

    #[test]
    fn batch_shape_inference_scales() {
        let g = build(7);
        assert_eq!(g.output_shape(512).unwrap().dims(), &[512, 10]);
    }

    #[test]
    fn flops_are_dense_dominated() {
        let g = build(7);
        let flops = g.flops(1).unwrap();
        // 2*(784*32 + 32*32 + 32*32 + 32*10) = 54,784 MAC FLOPs, plus
        // activations. Must be within a few percent of that.
        assert!(flops > 54_000 && flops < 56_000, "flops = {flops}");
    }
}
