//! A self-healing [`ScoringClient`].
//!
//! Wraps any external-serving connection with the resilience layer the
//! chaos tests exercise: per-call socket deadlines, bounded retries with
//! exponential backoff and deterministic jitter, reconnect after resets or
//! server crashes, and a circuit breaker that fails fast while the backend
//! is down (with half-open probing once the cooldown elapses). Chaos hooks
//! let a fault plan degrade the connection deterministically; with a
//! disabled [`ChaosHandle`] every hook is a single branch, so the wrapper
//! adds no measurable cost to a healthy call.

use std::net::SocketAddr;
use std::time::Duration;

use crayfish_chaos::{BreakerConfig, ChaosHandle, CircuitBreaker, Domain, RetryPolicy};
use crayfish_sim::NetworkModel;
use crayfish_tensor::Tensor;

use crate::client::ScoringClient;
use crate::{ExternalKind, Result, ServingError};

/// Tuning for [`ResilientClient`].
#[derive(Debug, Clone)]
pub struct ResilienceConfig {
    /// Retry schedule for transient call failures.
    pub retry: RetryPolicy,
    /// Circuit-breaker thresholds.
    pub breaker: BreakerConfig,
    /// Per-call socket deadline (read and write). `None` leaves calls
    /// unbounded.
    pub deadline: Option<Duration>,
    /// Fault switches; disabled (zero-cost) by default.
    pub chaos: ChaosHandle,
    /// Recovery instruments (`retries`, `errors{stage=serving_rpc}`,
    /// `circuit_state`); disabled by default.
    pub obs: crayfish_obs::ObsHandle,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            retry: RetryPolicy::quick(),
            breaker: BreakerConfig::default(),
            deadline: Some(Duration::from_secs(2)),
            chaos: ChaosHandle::disabled(),
            obs: crayfish_obs::ObsHandle::disabled(),
        }
    }
}

/// A [`ScoringClient`] owning the reconnect/retry/breaker logic around a
/// protocol-appropriate inner connection.
pub struct ResilientClient {
    kind: ExternalKind,
    addr: SocketAddr,
    network: NetworkModel,
    config: ResilienceConfig,
    breaker: CircuitBreaker,
    /// `None` between a connection-poisoning failure and the reconnect.
    inner: Option<Box<dyn ScoringClient>>,
    retries: crayfish_obs::Counter,
    errors: crayfish_obs::Counter,
    circuit_state: crayfish_obs::Gauge,
}

impl ResilientClient {
    /// Connect eagerly — a dead server at startup is an error, not a retry
    /// loop — and wrap the connection in the resilience layer.
    pub fn connect(
        kind: ExternalKind,
        addr: SocketAddr,
        network: NetworkModel,
        config: ResilienceConfig,
    ) -> Result<ResilientClient> {
        let obs = config.obs.clone();
        let mut client = ResilientClient {
            kind,
            addr,
            network,
            breaker: CircuitBreaker::new(config.breaker),
            config,
            inner: None,
            retries: obs.counter("retries"),
            errors: obs.counter_with("errors", "stage", "serving_rpc"),
            circuit_state: obs.gauge("circuit_state"),
        };
        client.inner = Some(client.connect_inner()?);
        Ok(client)
    }

    fn connect_inner(&self) -> Result<Box<dyn ScoringClient>> {
        let mut c = self.kind.connect(self.addr, self.network)?;
        c.set_deadline(self.config.deadline)?;
        Ok(c)
    }

    /// One attempt: breaker gate, chaos degradation, (re)connect, call.
    fn try_once(&mut self, input: &Tensor) -> Result<Tensor> {
        if !self.breaker.try_acquire() {
            self.circuit_state.set(self.breaker.state_code());
            return Err(ServingError::CircuitOpen);
        }
        // Chaos: a degraded network adds latency to every call, and a due
        // reset kills the connection like a real RST would.
        if let Some(extra) = self.config.chaos.extra_net_delay() {
            std::thread::sleep(extra);
        }
        if self.config.chaos.connection_reset_due() {
            self.inner = None;
            self.breaker.on_failure();
            self.errors.inc();
            self.circuit_state.set(self.breaker.state_code());
            return Err(ServingError::Io(std::io::Error::new(
                std::io::ErrorKind::ConnectionReset,
                "injected connection reset",
            )));
        }
        let result = match self.inner.as_mut() {
            Some(c) => c.infer(input),
            None => match self.connect_inner() {
                Ok(mut c) => {
                    let r = c.infer(input);
                    self.inner = Some(c);
                    r
                }
                Err(e) => Err(e),
            },
        };
        match result {
            Ok(t) => {
                self.breaker.on_success();
                self.circuit_state.set(self.breaker.state_code());
                self.config.chaos.note_success(Domain::Serving);
                Ok(t)
            }
            Err(e) => {
                match &e {
                    // Connection-level failure: the socket is gone or
                    // timed out mid-frame — reconnect next attempt, and
                    // count it against the breaker.
                    ServingError::Io(_) | ServingError::Closed => {
                        self.inner = None;
                        self.breaker.on_failure();
                    }
                    // A desynchronised stream can't be trusted either,
                    // but a remote inference error is the application's
                    // problem, not the connection's.
                    ServingError::Protocol(_) => self.inner = None,
                    // Overloaded is deliberate backpressure from a healthy
                    // server: keep the connection, don't count it against
                    // the breaker, and let the retry schedule honour the
                    // server's retry_after hint.
                    ServingError::Overloaded { .. } => {}
                    _ => {}
                }
                self.errors.inc();
                self.circuit_state.set(self.breaker.state_code());
                Err(e)
            }
        }
    }

    /// Current breaker state (for reports and tests).
    pub fn circuit_state(&self) -> crayfish_chaos::CircuitState {
        self.breaker.state()
    }
}

impl ScoringClient for ResilientClient {
    fn protocol(&self) -> &'static str {
        match self.kind {
            ExternalKind::TfServing | ExternalKind::TorchServe => "grpc",
            ExternalKind::RayServe => "http",
        }
    }

    fn infer(&mut self, input: &Tensor) -> Result<Tensor> {
        let retries = self.retries.clone();
        let policy = self.config.retry;
        policy.run_hinted(
            ServingError::is_transient,
            ServingError::retry_hint,
            |_| retries.inc(),
            || self.try_once(input),
        )
    }

    fn set_deadline(&mut self, deadline: Option<Duration>) -> Result<()> {
        self.config.deadline = deadline;
        if let Some(c) = self.inner.as_mut() {
            c.set_deadline(deadline)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::restart::RestartableServer;
    use crate::server::{spawn_listener, ServingConfig};
    use crayfish_chaos::CircuitState;
    use crayfish_models::tiny;
    use std::io::Read;

    fn input() -> Tensor {
        Tensor::seeded_uniform([1, 8, 8], 1, 0.0, 1.0)
    }

    #[test]
    fn survives_server_crash_and_restart() {
        let srv = RestartableServer::start(
            ExternalKind::TfServing,
            &tiny::tiny_mlp(1),
            ServingConfig::default(),
        )
        .unwrap();
        let chaos = ChaosHandle::enabled();
        let mut client = ResilientClient::connect(
            ExternalKind::TfServing,
            srv.addr(),
            NetworkModel::zero(),
            ResilienceConfig {
                retry: RetryPolicy::patient(),
                chaos: chaos.clone(),
                ..Default::default()
            },
        )
        .unwrap();
        client.infer(&input()).unwrap();

        srv.crash();
        let srv2 = srv.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(100));
            srv2.restore().unwrap();
        });
        // The call rides through the crash: failed attempts retry with
        // backoff until the server returns.
        client.infer(&input()).unwrap();
        srv.crash();
    }

    #[test]
    fn breaker_fails_fast_while_down_then_heals() {
        let srv = RestartableServer::start(
            ExternalKind::TfServing,
            &tiny::tiny_mlp(1),
            ServingConfig::default(),
        )
        .unwrap();
        let mut client = ResilientClient::connect(
            ExternalKind::TfServing,
            srv.addr(),
            NetworkModel::zero(),
            ResilienceConfig {
                retry: RetryPolicy::none(),
                breaker: BreakerConfig {
                    failure_threshold: 2,
                    cooldown: Duration::from_millis(50),
                    half_open_probes: 1,
                },
                ..Default::default()
            },
        )
        .unwrap();
        client.infer(&input()).unwrap();
        srv.crash();
        // Consecutive failures trip the breaker...
        assert!(client.infer(&input()).is_err());
        assert!(client.infer(&input()).is_err());
        assert_eq!(client.circuit_state(), CircuitState::Open);
        // ...after which calls fail fast without touching the socket.
        let err = client.infer(&input()).unwrap_err();
        assert!(matches!(err, ServingError::CircuitOpen), "{err}");
        // Once the server is back and the cooldown elapses, a half-open
        // probe heals the circuit.
        srv.restore().unwrap();
        std::thread::sleep(Duration::from_millis(60));
        client.infer(&input()).unwrap();
        assert_eq!(client.circuit_state(), CircuitState::Closed);
        srv.crash();
    }

    #[test]
    fn overload_retries_on_the_same_connection_after_the_hint() {
        use crate::protocol::{
            encode_overloaded_binary, encode_tensor_binary, read_frame, write_frame,
        };
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;

        // A server that sheds the first request with a 30 ms hint, then
        // serves. Counts connections so we can prove no reconnect happened.
        let conns = Arc::new(AtomicUsize::new(0));
        let conns_seen = Arc::clone(&conns);
        let server = spawn_listener("shed-once", move |stream| {
            conns_seen.fetch_add(1, Ordering::SeqCst);
            let mut writer = stream.try_clone().unwrap();
            let mut reader = std::io::BufReader::new(stream);
            let mut first = true;
            while let Ok(Some(payload)) = read_frame(&mut reader) {
                let reply = if first {
                    first = false;
                    encode_overloaded_binary(Duration::from_millis(30))
                } else {
                    let t = crate::protocol::decode_tensor_binary(&payload).unwrap();
                    encode_tensor_binary(&t)
                };
                if write_frame(&mut writer, &reply).is_err() {
                    break;
                }
            }
        })
        .unwrap();
        let mut client = ResilientClient::connect(
            ExternalKind::TfServing,
            server.addr(),
            NetworkModel::zero(),
            ResilienceConfig::default(),
        )
        .unwrap();
        let start = std::time::Instant::now();
        client.infer(&input()).unwrap();
        assert!(
            start.elapsed() >= Duration::from_millis(25),
            "retry_after hint ignored: {:?}",
            start.elapsed()
        );
        assert_eq!(
            conns.load(Ordering::SeqCst),
            1,
            "overload must not poison the connection"
        );
        assert_eq!(client.circuit_state(), CircuitState::Closed);
        server.shutdown();
    }

    #[test]
    fn deadline_bounds_a_stalled_call() {
        // A black-hole server: accepts, reads, never replies.
        let server = spawn_listener("black-hole", |mut stream| {
            let mut buf = [0u8; 1024];
            while let Ok(n) = stream.read(&mut buf) {
                if n == 0 {
                    break;
                }
            }
        })
        .unwrap();
        let mut client = ResilientClient::connect(
            ExternalKind::TfServing,
            server.addr(),
            NetworkModel::zero(),
            ResilienceConfig {
                retry: RetryPolicy::none(),
                deadline: Some(Duration::from_millis(150)),
                ..Default::default()
            },
        )
        .unwrap();
        let start = std::time::Instant::now();
        let err = client.infer(&input()).unwrap_err();
        let elapsed = start.elapsed();
        assert!(matches!(err, ServingError::Io(_)), "{err}");
        assert!(elapsed >= Duration::from_millis(100), "{elapsed:?}");
        assert!(elapsed < Duration::from_secs(5), "deadline not applied");
        server.shutdown();
    }

    #[test]
    fn degraded_network_resets_are_absorbed() {
        let srv = RestartableServer::start(
            ExternalKind::TfServing,
            &tiny::tiny_mlp(1),
            ServingConfig::default(),
        )
        .unwrap();
        let chaos = ChaosHandle::enabled();
        let obs = crayfish_obs::ObsHandle::enabled();
        let mut client = ResilientClient::connect(
            ExternalKind::TfServing,
            srv.addr(),
            NetworkModel::zero(),
            ResilienceConfig {
                chaos: chaos.clone(),
                obs: obs.clone(),
                ..Default::default()
            },
        )
        .unwrap();
        chaos.set_net_degrade(Duration::from_micros(200), 3, 0);
        for _ in 0..10 {
            client.infer(&input()).unwrap();
        }
        chaos.clear_net_degrade();
        assert!(
            obs.counter("retries").get() > 0,
            "no reset was ever injected"
        );
        srv.crash();
    }
}
