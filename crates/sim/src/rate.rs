//! Rate pacing for workload generators.
//!
//! The Crayfish input producer emits events at a configured rate (`ir` in
//! Table 1 of the paper), either constant or with periodic bursts. The pacer
//! here implements *open-loop* pacing: each event has an ideal emission time
//! derived from the configured rate, and the producer sleeps until that time.
//! If the producer falls behind (e.g. serialization took too long), it does
//! not try to "catch up" faster than the configured rate would allow, but it
//! also does not accumulate idle debt — matching a constant-rate generator.

use std::time::{Duration, Instant};

use crate::time::precise_sleep;

/// Paces a loop to a target rate of events per second.
///
/// ```
/// use crayfish_sim::RatePacer;
/// let mut pacer = RatePacer::new(10_000.0);
/// for _ in 0..100 {
///     pacer.pace(); // returns when the next event may be emitted
/// }
/// ```
#[derive(Debug)]
pub struct RatePacer {
    interval: Duration,
    next_at: Instant,
}

impl RatePacer {
    /// Create a pacer for `rate` events per second. Rates of zero or below
    /// (and non-finite rates) disable pacing entirely.
    pub fn new(rate: f64) -> Self {
        let interval = interval_for(rate);
        Self {
            interval,
            next_at: Instant::now(),
        }
    }

    /// Change the target rate, keeping the current schedule position.
    ///
    /// Used by the bursty workload generator when switching between the
    /// burst rate and the baseline rate.
    pub fn set_rate(&mut self, rate: f64) {
        self.interval = interval_for(rate);
        // Do not let a long idle period at a slow rate turn into a backlog
        // at the new (possibly much faster) rate.
        let now = Instant::now();
        if self.next_at < now {
            self.next_at = now;
        }
    }

    /// Current inter-event interval (zero means unpaced).
    pub fn interval(&self) -> Duration {
        self.interval
    }

    /// Block until the next event may be emitted.
    pub fn pace(&mut self) {
        if self.interval.is_zero() {
            return;
        }
        let now = Instant::now();
        if self.next_at > now {
            precise_sleep(self.next_at - now);
        }
        // Schedule the next slot relative to the ideal timeline so short
        // hiccups do not permanently lower the achieved rate, but clamp to
        // "now" if we are far behind so we never burst above the target.
        self.next_at += self.interval;
        let now = Instant::now();
        if self.next_at + self.interval < now {
            self.next_at = now;
        }
    }
}

fn interval_for(rate: f64) -> Duration {
    if rate.is_finite() && rate > 0.0 {
        Duration::from_secs_f64(1.0 / rate)
    } else {
        Duration::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Stopwatch;

    #[test]
    fn unpaced_when_rate_nonpositive() {
        for rate in [0.0, -5.0, f64::NAN, f64::INFINITY] {
            let mut pacer = RatePacer::new(rate);
            let sw = Stopwatch::start();
            for _ in 0..1000 {
                pacer.pace();
            }
            assert!(sw.elapsed_millis() < 50.0, "rate {rate} should not pace");
        }
    }

    #[test]
    fn achieves_configured_rate() {
        let mut pacer = RatePacer::new(2000.0);
        let sw = Stopwatch::start();
        for _ in 0..200 {
            pacer.pace();
        }
        let secs = sw.elapsed().as_secs_f64();
        let achieved = 200.0 / secs;
        // Under parallel test load the achieved rate can sag, but the pacer
        // must never emit faster than configured, and should get reasonably
        // close to the target.
        assert!(achieved <= 2000.0 * 1.10, "overshot: {achieved} events/s");
        assert!(achieved >= 2000.0 * 0.50, "undershot: {achieved} events/s");
    }

    #[test]
    fn does_not_burst_after_stall() {
        let mut pacer = RatePacer::new(1000.0);
        pacer.pace();
        std::thread::sleep(Duration::from_millis(20));
        // After a 20 ms stall at 1 kHz we are ~20 events behind; the pacer
        // must not emit them all instantly.
        let sw = Stopwatch::start();
        for _ in 0..10 {
            pacer.pace();
        }
        // At most ~2 catch-up events are allowed before pacing resumes.
        assert!(sw.elapsed_millis() >= 6.0, "burst after stall");
    }

    #[test]
    fn set_rate_switches_interval() {
        let mut pacer = RatePacer::new(10.0);
        assert!((pacer.interval().as_secs_f64() - 0.1).abs() < 1e-9);
        pacer.set_rate(100.0);
        assert!((pacer.interval().as_secs_f64() - 0.01).abs() < 1e-9);
    }
}
