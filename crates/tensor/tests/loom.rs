//! Loom models for the GEMM worker pool. Compiled only under
//! `RUSTFLAGS="--cfg loom"`.
//!
//! The pool is a single-condvar epoch handshake: a submitter posts a job
//! (epoch bump + notify), workers compute their row panels and the last
//! one to finish publishes `done_epoch`, and the submitter merges panels
//! after its wait returns. Three things can go wrong in such a design and
//! the models pin each of them:
//!
//! 1. **Lost submit wakeup** — a worker re-checks "job && epoch != seen"
//!    under the lock, so a notify landing before the wait must still be
//!    observed; otherwise `gemm` blocks forever (loom condvars never time
//!    out, so the model itself would hang and fail).
//! 2. **Incomplete result** — `gemm` must not return before every worker
//!    panel is computed and merged; the models assert the full numeric
//!    result, so any missing panel shows up as a wrong value.
//! 3. **Shutdown race** — dropping the pool flips `shutdown` and notifies;
//!    a worker mid-wait or mid-job must still terminate so `join` returns.
//!
//! Pool sizes stay at 2–3 participants (1–2 spawned workers) to keep
//! loom's state space tractable.
#![cfg(loom)]

use crayfish_sync::model;
use crayfish_tensor::kernels::gemm::gemm_with_pool;
use crayfish_tensor::{GemmScratch, ThreadPool};

/// Deterministic operands sized to give every participant at least one
/// MR-row strip (MR = 6): m = 13 → 3 strips.
fn operands(m: usize, k: usize, n: usize) -> (Vec<f32>, Vec<f32>) {
    let a: Vec<f32> = (0..m * k).map(|i| (i % 7) as f32 - 3.0).collect();
    let b: Vec<f32> = (0..k * n).map(|i| (i % 5) as f32 - 2.0).collect();
    (a, b)
}

fn reference(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut c = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            for p in 0..k {
                c[i * n + j] += a[i * k + p] * b[p * n + j];
            }
        }
    }
    c
}

/// Models 1 + 2: whatever the interleaving of submit, worker wakeup, panel
/// computation, and done-notification, `gemm_with_pool` returns the
/// complete product — every strip computed exactly once and merged.
#[test]
fn pooled_gemm_completes_all_panels() {
    model(|| {
        let (m, k, n) = (13usize, 4usize, 3usize);
        let (a, b) = operands(m, k, n);
        let expect = reference(&a, &b, m, k, n);
        let pool = ThreadPool::new(2);
        let mut scratch = GemmScratch::new();
        let mut c = vec![0.0f32; m * n];
        gemm_with_pool(&a, &b, &mut c, m, k, n, &mut scratch, &pool);
        assert_eq!(c, expect, "panel lost or double-merged");
        drop(pool);
    });
}

/// Model 1 across epochs: the second submit reuses the same workers and
/// the same single condvar; a stale `seen` epoch or a wakeup consumed by
/// the wrong waiter would hang or corrupt the second job.
#[test]
fn back_to_back_jobs_reuse_workers_correctly() {
    model(|| {
        let (m, k, n) = (7usize, 2usize, 2usize);
        let (a, b) = operands(m, k, n);
        let expect = reference(&a, &b, m, k, n);
        let pool = ThreadPool::new(2);
        let mut scratch = GemmScratch::new();
        for round in 0..2 {
            let mut c = vec![0.0f32; m * n];
            gemm_with_pool(&a, &b, &mut c, m, k, n, &mut scratch, &pool);
            assert_eq!(c, expect, "round {round} incorrect");
        }
    });
}

/// Model 3: dropping the pool must join every worker cleanly — including
/// a worker that never received a job and is parked on the condvar.
#[test]
fn drop_joins_idle_workers() {
    model(|| {
        let pool = ThreadPool::new(3);
        drop(pool); // hangs (and fails the model) on a lost shutdown wakeup
    });
}

/// Model 3 after work: shutdown immediately following a completed job must
/// not strand a worker that is still between "done" and its next wait.
#[test]
fn drop_after_job_joins_workers() {
    model(|| {
        let (m, k, n) = (7usize, 2usize, 2usize);
        let (a, b) = operands(m, k, n);
        let pool = ThreadPool::new(2);
        let mut scratch = GemmScratch::new();
        let mut c = vec![0.0f32; m * n];
        gemm_with_pool(&a, &b, &mut c, m, k, n, &mut scratch, &pool);
        drop(pool);
    });
}
