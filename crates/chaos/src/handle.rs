//! The shared chaos state: fault switches queried on hot paths, plus
//! incident bookkeeping for the recovery report.
//!
//! [`ChaosHandle`] follows the `ObsHandle` precedent: a cheap clonable
//! wrapper around `Option<Arc<ChaosCore>>`. A disabled handle (the
//! default everywhere) answers every query with a single `Option` check —
//! no atomics, no clock reads — so the resilience layer is zero-cost when
//! no chaos is configured.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};
use std::collections::HashSet;

use crate::plan::FaultKind;
use crate::report::{IncidentReport, RecoveryReport};

/// Which part of the fabric a successful operation proves healthy.
/// `note_success(domain)` closes ended incidents whose kind maps to the
/// same domain (see [`FaultKind::domain`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Domain {
    /// Broker appends and fetches.
    Broker,
    /// External serving calls.
    Serving,
    /// Engine worker liveness (supervisor restarts).
    Engine,
}

#[derive(Debug)]
struct Incident {
    kind: FaultKind,
    started: Instant,
    ended: Option<Instant>,
    recovered: Option<Instant>,
}

/// Shared chaos state. Constructed via [`ChaosHandle::enabled`].
#[derive(Debug)]
pub struct ChaosCore {
    // --- passive fault switches, flipped by the injector -----------------
    any_outage: AtomicBool,
    outage_topics: RwLock<HashSet<String>>,
    net_extra_delay_us: AtomicU64,
    reset_every: AtomicU32,
    reset_counter: AtomicU32,
    ack_loss_every: AtomicU32,
    ack_loss_counter: AtomicU32,
    stalled: AtomicBool,
    pending_worker_crashes: AtomicU32,
    any_broker_dead: AtomicBool,
    dead_brokers: RwLock<HashSet<u32>>,
    any_broker_isolated: AtomicBool,
    isolated_brokers: RwLock<HashSet<u32>>,
    // --- incident bookkeeping for MTTR -----------------------------------
    /// Number of incidents whose window has ended but which have not yet
    /// seen a success in their domain. Gates the `note_success` fast path.
    closable: AtomicU32,
    incidents: Mutex<Vec<Incident>>,
    duplicates_dropped: AtomicU64,
    t0: Instant,
}

impl ChaosCore {
    fn new() -> Self {
        ChaosCore {
            any_outage: AtomicBool::new(false),
            outage_topics: RwLock::new(HashSet::new()),
            net_extra_delay_us: AtomicU64::new(0),
            reset_every: AtomicU32::new(0),
            reset_counter: AtomicU32::new(0),
            ack_loss_every: AtomicU32::new(0),
            ack_loss_counter: AtomicU32::new(0),
            stalled: AtomicBool::new(false),
            pending_worker_crashes: AtomicU32::new(0),
            any_broker_dead: AtomicBool::new(false),
            dead_brokers: RwLock::new(HashSet::new()),
            any_broker_isolated: AtomicBool::new(false),
            isolated_brokers: RwLock::new(HashSet::new()),
            closable: AtomicU32::new(0),
            incidents: Mutex::new(Vec::new()),
            duplicates_dropped: AtomicU64::new(0),
            t0: Instant::now(),
        }
    }
}

/// Cheap handle to the chaos state; `ChaosHandle::disabled()` is the
/// default everywhere and makes every query a no-op.
#[derive(Debug, Clone, Default)]
pub struct ChaosHandle(Option<Arc<ChaosCore>>);

impl ChaosHandle {
    /// The no-op handle: every query answers "no fault" via one branch.
    pub fn disabled() -> Self {
        ChaosHandle(None)
    }

    /// A live handle backed by fresh chaos state.
    pub fn enabled() -> Self {
        ChaosHandle(Some(Arc::new(ChaosCore::new())))
    }

    /// Whether this handle carries live state.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    // --- hot-path queries -------------------------------------------------

    /// Is this topic currently in a partition-outage window?
    pub fn topic_unavailable(&self, topic: &str) -> bool {
        match &self.0 {
            None => false,
            Some(c) => {
                c.any_outage.load(Ordering::Relaxed) && c.outage_topics.read().contains(topic)
            }
        }
    }

    /// Extra latency the degraded network adds to a serving call, if any.
    pub fn extra_net_delay(&self) -> Option<Duration> {
        let c = self.0.as_ref()?;
        match c.net_extra_delay_us.load(Ordering::Relaxed) {
            0 => None,
            us => Some(Duration::from_micros(us)),
        }
    }

    /// Should this serving call's connection be reset? (Every Nth call
    /// during a network-degrade window.)
    pub fn connection_reset_due(&self) -> bool {
        match &self.0 {
            None => false,
            Some(c) => {
                let every = c.reset_every.load(Ordering::Relaxed);
                every != 0 && c.reset_counter.fetch_add(1, Ordering::Relaxed) % every == every - 1
            }
        }
    }

    /// Should this broker append's ack be lost? The append itself has
    /// succeeded; the producer sees an error and must retry, exercising
    /// sequence-number dedup. (Every Nth append during degradation.)
    pub fn append_ack_lost(&self) -> bool {
        match &self.0 {
            None => false,
            Some(c) => {
                let every = c.ack_loss_every.load(Ordering::Relaxed);
                every != 0
                    && c.ack_loss_counter.fetch_add(1, Ordering::Relaxed) % every == every - 1
            }
        }
    }

    /// Are consumers currently stalled?
    pub fn consumer_stalled(&self) -> bool {
        match &self.0 {
            None => false,
            Some(c) => c.stalled.load(Ordering::Relaxed),
        }
    }

    /// Consume one pending worker-crash token, if any. An engine worker
    /// that takes a token aborts its current incarnation so its supervisor
    /// must restart it.
    pub fn take_worker_crash(&self) -> bool {
        match &self.0 {
            None => false,
            Some(c) => {
                if c.pending_worker_crashes.load(Ordering::Relaxed) == 0 {
                    return false;
                }
                c.pending_worker_crashes
                    .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
                    .is_ok()
            }
        }
    }

    /// Is this broker node currently killed (a `LeaderKill` window)? A dead
    /// node cannot lead, follow, or be elected; its log survives (the analog
    /// of a crashed Kafka broker whose disk persists).
    pub fn broker_dead(&self, broker: u32) -> bool {
        match &self.0 {
            None => false,
            Some(c) => {
                c.any_broker_dead.load(Ordering::Relaxed) && c.dead_brokers.read().contains(&broker)
            }
        }
    }

    /// Is this broker node currently network-isolated from the cluster (a
    /// `PartitionIsolate` window)? An isolated node drops out of every ISR
    /// and cannot be elected; on heal it catches up and rejoins.
    pub fn broker_isolated(&self, broker: u32) -> bool {
        match &self.0 {
            None => false,
            Some(c) => {
                c.any_broker_isolated.load(Ordering::Relaxed)
                    && c.isolated_brokers.read().contains(&broker)
            }
        }
    }

    /// Whether any ended fault window is still waiting for its first
    /// post-fault success. Consumers use this to gate the (lock-taking)
    /// lag-zero recovery probe: when nothing is closable the probe is one
    /// atomic load.
    pub fn recovery_pending(&self) -> bool {
        match &self.0 {
            None => false,
            Some(c) => c.closable.load(Ordering::Relaxed) > 0,
        }
    }

    // --- fault switches (called by the injector and by tests) -------------

    /// Put a topic into (or take it out of) partition outage.
    pub fn set_topic_outage(&self, topic: &str, on: bool) {
        if let Some(c) = &self.0 {
            let mut topics = c.outage_topics.write();
            if on {
                topics.insert(topic.to_string());
            } else {
                topics.remove(topic);
            }
            c.any_outage.store(!topics.is_empty(), Ordering::Relaxed);
        }
    }

    /// Configure network degradation: extra per-call latency, connection
    /// resets every `reset_every` calls, lost acks every `ack_loss_every`
    /// appends. Zeroes switch each effect off.
    pub fn set_net_degrade(&self, extra_delay: Duration, reset_every: u32, ack_loss_every: u32) {
        if let Some(c) = &self.0 {
            c.net_extra_delay_us
                .store(extra_delay.as_micros() as u64, Ordering::Relaxed);
            c.reset_every.store(reset_every, Ordering::Relaxed);
            c.ack_loss_every.store(ack_loss_every, Ordering::Relaxed);
        }
    }

    /// Clear all network degradation.
    pub fn clear_net_degrade(&self) {
        self.set_net_degrade(Duration::ZERO, 0, 0);
    }

    /// Stall (or unstall) all consumers.
    pub fn set_consumer_stall(&self, on: bool) {
        if let Some(c) = &self.0 {
            c.stalled.store(on, Ordering::Relaxed);
        }
    }

    /// Arm `n` worker-crash tokens; each is consumed by one engine worker.
    pub fn inject_worker_crashes(&self, n: u32) {
        if let Some(c) = &self.0 {
            c.pending_worker_crashes.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Kill (or revive) a broker node.
    pub fn set_broker_dead(&self, broker: u32, on: bool) {
        if let Some(c) = &self.0 {
            let mut dead = c.dead_brokers.write();
            if on {
                dead.insert(broker);
            } else {
                dead.remove(&broker);
            }
            c.any_broker_dead.store(!dead.is_empty(), Ordering::Relaxed);
        }
    }

    /// Isolate (or heal) a broker node's network link to the cluster.
    pub fn set_broker_isolated(&self, broker: u32, on: bool) {
        if let Some(c) = &self.0 {
            let mut isolated = c.isolated_brokers.write();
            if on {
                isolated.insert(broker);
            } else {
                isolated.remove(&broker);
            }
            c.any_broker_isolated
                .store(!isolated.is_empty(), Ordering::Relaxed);
        }
    }

    // --- incident bookkeeping ---------------------------------------------

    /// Record the start of a fault window. Returns an incident id for
    /// [`end_fault`](Self::end_fault), or `None` on a disabled handle.
    pub fn open_incident(&self, kind: FaultKind) -> Option<usize> {
        let c = self.0.as_ref()?;
        let mut incidents = c.incidents.lock();
        incidents.push(Incident {
            kind,
            started: Instant::now(),
            ended: None,
            recovered: None,
        });
        Some(incidents.len() - 1)
    }

    /// Record the end of a fault window. From this point the incident is
    /// closable: the next success in its domain marks it recovered.
    pub fn end_fault(&self, id: Option<usize>) {
        let (Some(c), Some(id)) = (&self.0, id) else {
            return;
        };
        let mut incidents = c.incidents.lock();
        if let Some(i) = incidents.get_mut(id) {
            if i.ended.is_none() {
                i.ended = Some(Instant::now());
                if i.recovered.is_none() {
                    c.closable.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Report a successful operation in a domain. Closes every ended,
    /// unrecovered incident of that domain; MTTR is measured from fault
    /// start to this first post-fault success. No-op (one atomic load)
    /// when nothing is closable.
    ///
    /// What counts as "success" is the caller's contract. For the broker
    /// domain it is *consumer lag reaching zero* (the consumer-side probe in
    /// `PartitionConsumer::poll`), not the first successful append or fetch:
    /// a fetch can succeed while a failover backlog is still draining, and
    /// MTTR should cover the drain.
    pub fn note_success(&self, domain: Domain) {
        let Some(c) = &self.0 else { return };
        if c.closable.load(Ordering::Relaxed) == 0 {
            return;
        }
        let now = Instant::now();
        let mut incidents = c.incidents.lock();
        for i in incidents.iter_mut() {
            if i.kind.domain() == domain && i.ended.is_some() && i.recovered.is_none() {
                i.recovered = Some(now);
                c.closable.fetch_sub(1, Ordering::Relaxed);
            }
        }
    }

    /// Record records the broker dropped as duplicate re-sends.
    pub fn note_duplicates(&self, n: u64) {
        if let Some(c) = &self.0 {
            if n > 0 {
                c.duplicates_dropped.fetch_add(n, Ordering::Relaxed);
            }
        }
    }

    /// Total duplicate records dropped by broker dedup so far.
    pub fn duplicates_dropped(&self) -> u64 {
        match &self.0 {
            None => 0,
            Some(c) => c.duplicates_dropped.load(Ordering::Relaxed),
        }
    }

    /// Snapshot the recovery report: per-incident MTTR, fault time, and
    /// availability over the core's lifetime so far.
    pub fn report(&self) -> RecoveryReport {
        let Some(c) = &self.0 else {
            return RecoveryReport::default();
        };
        let now = Instant::now();
        let ms = |i: Instant| i.duration_since(c.t0).as_secs_f64() * 1e3;
        let incidents = c.incidents.lock();
        let reports: Vec<IncidentReport> = incidents
            .iter()
            .map(|i| IncidentReport {
                kind: i.kind.name().to_string(),
                start_ms: ms(i.started),
                end_ms: i.ended.map(ms),
                mttr_ms: i
                    .recovered
                    .map(|r| r.duration_since(i.started).as_secs_f64() * 1e3),
            })
            .collect();
        let fault_time_ms: f64 = incidents
            .iter()
            .map(|i| {
                i.ended
                    .unwrap_or(now)
                    .duration_since(i.started)
                    .as_secs_f64()
                    * 1e3
            })
            .sum();
        RecoveryReport::new(
            reports,
            fault_time_ms,
            now.duration_since(c.t0).as_secs_f64() * 1e3,
            c.duplicates_dropped.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_answers_no_fault() {
        let h = ChaosHandle::disabled();
        assert!(!h.is_enabled());
        assert!(!h.topic_unavailable("in"));
        assert!(h.extra_net_delay().is_none());
        assert!(!h.connection_reset_due());
        assert!(!h.append_ack_lost());
        assert!(!h.consumer_stalled());
        assert!(!h.take_worker_crash());
        h.set_topic_outage("in", true);
        assert!(!h.topic_unavailable("in"));
        assert_eq!(h.report().incidents.len(), 0);
    }

    #[test]
    fn topic_outage_toggles() {
        let h = ChaosHandle::enabled();
        assert!(!h.topic_unavailable("in"));
        h.set_topic_outage("in", true);
        assert!(h.topic_unavailable("in"));
        assert!(!h.topic_unavailable("out"));
        h.set_topic_outage("in", false);
        assert!(!h.topic_unavailable("in"));
    }

    #[test]
    fn reset_and_ack_loss_fire_every_nth() {
        let h = ChaosHandle::enabled();
        h.set_net_degrade(Duration::from_millis(1), 3, 2);
        let resets = (0..9).filter(|_| h.connection_reset_due()).count();
        assert_eq!(resets, 3);
        let lost = (0..10).filter(|_| h.append_ack_lost()).count();
        assert_eq!(lost, 5);
        assert_eq!(h.extra_net_delay(), Some(Duration::from_millis(1)));
        h.clear_net_degrade();
        assert!(h.extra_net_delay().is_none());
        assert!(!h.connection_reset_due());
    }

    #[test]
    fn broker_death_and_isolation_toggle_independently() {
        let h = ChaosHandle::enabled();
        assert!(!h.broker_dead(0));
        assert!(!h.broker_isolated(0));
        h.set_broker_dead(0, true);
        h.set_broker_isolated(2, true);
        assert!(h.broker_dead(0));
        assert!(!h.broker_dead(2));
        assert!(h.broker_isolated(2));
        assert!(!h.broker_isolated(0));
        h.set_broker_dead(0, false);
        h.set_broker_isolated(2, false);
        assert!(!h.broker_dead(0));
        assert!(!h.broker_isolated(2));
        // Disabled handles never report a dead node.
        let d = ChaosHandle::disabled();
        d.set_broker_dead(1, true);
        assert!(!d.broker_dead(1));
    }

    #[test]
    fn recovery_pending_tracks_closable_incidents() {
        let h = ChaosHandle::enabled();
        assert!(!h.recovery_pending());
        let id = h.open_incident(FaultKind::LeaderKill);
        // Still inside the window: nothing closable yet.
        assert!(!h.recovery_pending());
        h.end_fault(id);
        assert!(h.recovery_pending());
        h.note_success(Domain::Broker);
        assert!(!h.recovery_pending());
    }

    #[test]
    fn worker_crash_tokens_are_consumed_once() {
        let h = ChaosHandle::enabled();
        h.inject_worker_crashes(2);
        assert!(h.take_worker_crash());
        assert!(h.take_worker_crash());
        assert!(!h.take_worker_crash());
    }

    #[test]
    fn incident_lifecycle_measures_mttr() {
        let h = ChaosHandle::enabled();
        let id = h.open_incident(FaultKind::PartitionOutage);
        assert!(id.is_some());
        // Success during the window does not close the incident.
        h.note_success(Domain::Broker);
        std::thread::sleep(Duration::from_millis(5));
        h.end_fault(id);
        // Success in the wrong domain does not close it either.
        h.note_success(Domain::Serving);
        let r = h.report();
        assert_eq!(r.unrecovered, 1);
        h.note_success(Domain::Broker);
        let r = h.report();
        assert_eq!(r.unrecovered, 0);
        let mttr = r.incidents[0].mttr_ms.unwrap();
        assert!(mttr >= 5.0, "mttr {mttr}");
        assert!(r.mean_mttr_ms.unwrap() >= 5.0);
        assert!(r.availability() < 1.0);
    }
}
