//! Topics: a fixed set of replicated partition logs plus the long-poll
//! notifier and per-partition replication gauges.
//!
//! The log mechanics (offsets, retention, dedup, replication, elections)
//! live in [`crate::replication`]; this module groups partitions into a
//! named topic and layers the version/condvar handshake long-polling
//! consumers block on.

use bytes::Bytes;
use crayfish_chaos::ChaosHandle;
use crayfish_sync::{Condvar, Mutex};

use crate::cluster::ClusterConfig;
use crate::replication::{ReplError, ReplicatedPartition, ReplicationStatus};

/// Default per-partition retention. Old records are evicted once a
/// partition exceeds this many bytes — the analog of Kafka's size-based log
/// retention, and what keeps hours of offered load from exhausting memory.
pub const DEFAULT_RETENTION_BYTES: usize = 32 * 1024 * 1024;

/// One record as stored in a partition log.
#[derive(Debug, Clone)]
pub(crate) struct StoredRecord {
    pub value: Bytes,
    /// Client-side send time (informational).
    pub produce_time_ms: f64,
    /// Broker-side `LogAppendTime` — the paper's *end* timestamp authority.
    pub append_time_ms: f64,
}

/// One record as returned by a fetch.
#[derive(Debug, Clone)]
pub struct FetchedRecord {
    /// Partition the record came from.
    pub partition: u32,
    /// Offset within the partition.
    pub offset: u64,
    /// Record payload.
    pub value: Bytes,
    /// Client-side send time.
    pub produce_time_ms: f64,
    /// Broker-side `LogAppendTime`.
    pub append_time_ms: f64,
}

/// Per-partition replication gauges, exported when the broker has a live
/// obs handle (all no-op handles otherwise).
#[derive(Debug)]
pub(crate) struct ReplGauges {
    pub isr: crayfish_obs::Gauge,
    pub hw_lag: crayfish_obs::Gauge,
    pub epoch: crayfish_obs::Gauge,
    pub leader: crayfish_obs::Gauge,
}

impl ReplGauges {
    pub fn update(&self, st: &ReplicationStatus) {
        self.isr.set(st.isr as i64);
        self.hw_lag.set(st.max_follower_lag as i64);
        self.epoch.set(st.epoch as i64);
        self.leader.set(st.leader as i64);
    }
}

/// A topic: a fixed set of replicated partitions plus a notifier for
/// long-polls.
#[derive(Debug)]
pub(crate) struct Topic {
    pub partitions: Vec<ReplicatedPartition>,
    /// Bumped on every append; long-polling fetches wait on it.
    pub version: Mutex<u64>,
    pub data_cond: Condvar,
    /// One gauge set per partition when obs is live; empty otherwise.
    pub gauges: Vec<ReplGauges>,
}

impl Topic {
    /// Default-retention single-node constructor (test convenience; the
    /// broker always passes an explicit retention and cluster).
    #[cfg(test)]
    pub fn new(partitions: u32) -> Self {
        Self::with_cluster(
            partitions,
            DEFAULT_RETENTION_BYTES,
            &ClusterConfig::default(),
        )
    }

    pub fn with_cluster(partitions: u32, retention_bytes: usize, cluster: &ClusterConfig) -> Self {
        Topic {
            partitions: (0..partitions)
                .map(|p| {
                    ReplicatedPartition::new(
                        &cluster.replica_set(p),
                        cluster.min_insync_replicas,
                        retention_bytes.max(1),
                    )
                })
                .collect(),
            version: Mutex::new(0),
            data_cond: Condvar::new(),
            gauges: Vec::new(),
        }
    }

    /// Append records to one partition, stamping `LogAppendTime` under the
    /// replication lock and waking long-pollers on success. `fence` and
    /// `dedup` pass through to [`ReplicatedPartition::append`]. Returns
    /// `(first_offset, append_time_ms, duplicates_dropped)`.
    pub fn append(
        &self,
        chaos: &ChaosHandle,
        partition: usize,
        fence: Option<u64>,
        dedup: Option<(u64, u64)>,
        values: Vec<(Bytes, f64)>,
    ) -> Result<(u64, f64, u64), ReplError> {
        let out = self.partitions[partition].append(chaos, fence, dedup, values)?;
        // Wake long-polling fetchers.
        let mut v = self.version.lock();
        *v += 1;
        self.data_cond.notify_all();
        drop(v);
        if let Some(g) = self.gauges.get(partition) {
            g.update(&self.partitions[partition].status());
        }
        Ok(out)
    }

    /// Visible end of a partition: its high watermark. Records past it
    /// (none, under synchronous replication) would be uncommitted.
    pub fn end_offset(&self, partition: usize) -> u64 {
        self.partitions[partition].high_watermark()
    }

    /// Offset of the earliest retained record.
    pub fn start_offset(&self, partition: usize) -> u64 {
        self.partitions[partition].start_offset()
    }

    /// Read up to `max_records`/`max_bytes` committed records from
    /// `partition` starting at `offset`. Returns an empty vector when
    /// nothing is available (including a leaderless partition, which reads
    /// as "no data yet").
    pub fn read(
        &self,
        chaos: &ChaosHandle,
        partition: usize,
        offset: u64,
        max_records: usize,
        max_bytes: usize,
    ) -> Vec<FetchedRecord> {
        self.partitions[partition].read(chaos, partition as u32, offset, max_records, max_bytes)
    }

    /// Block until the topic's version exceeds `seen` or the deadline
    /// passes; returns the current version.
    ///
    /// The predicate is re-checked in a loop: a wakeup only counts once the
    /// version has actually moved past `seen`, so spurious wakeups and
    /// notifications for appends the caller already observed cannot end the
    /// long-poll early. The loom model in `tests/loom.rs` checks the
    /// append/wait handshake for lost wakeups.
    pub fn wait_for_data(&self, seen: u64, timeout: std::time::Duration) -> u64 {
        let deadline = crayfish_sim::now() + timeout;
        let mut v = self.version.lock();
        while *v <= seen {
            let remaining = deadline.saturating_duration_since(crayfish_sim::now());
            if remaining.is_zero() {
                break;
            }
            let (guard, timed_out) = self.data_cond.wait_timeout(v, remaining);
            v = guard;
            if timed_out {
                break;
            }
        }
        *v
    }

    /// Current version counter.
    pub fn current_version(&self) -> u64 {
        *self.version.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Plain append on a healthy single-node topic (the pre-replication
    /// call shape most tests want).
    fn append(t: &Topic, partition: usize, values: Vec<(Bytes, f64)>) -> (u64, f64) {
        let (off, ts, _) = t
            .append(&ChaosHandle::disabled(), partition, None, None, values)
            .unwrap();
        (off, ts)
    }

    fn append_dedup(
        t: &Topic,
        partition: usize,
        producer_id: u64,
        first_seq: u64,
        values: Vec<(Bytes, f64)>,
    ) -> (u64, f64, u64) {
        t.append(
            &ChaosHandle::disabled(),
            partition,
            None,
            Some((producer_id, first_seq)),
            values,
        )
        .unwrap()
    }

    fn read(
        t: &Topic,
        partition: usize,
        offset: u64,
        max_r: usize,
        max_b: usize,
    ) -> Vec<FetchedRecord> {
        t.read(&ChaosHandle::disabled(), partition, offset, max_r, max_b)
    }

    #[test]
    fn append_assigns_contiguous_offsets() {
        let t = Topic::new(2);
        let (o1, _) = append(&t, 0, vec![(Bytes::from_static(b"a"), 1.0)]);
        let (o2, _) = append(
            &t,
            0,
            vec![
                (Bytes::from_static(b"b"), 2.0),
                (Bytes::from_static(b"c"), 3.0),
            ],
        );
        assert_eq!(o1, 0);
        assert_eq!(o2, 1);
        assert_eq!(t.end_offset(0), 3);
        assert_eq!(t.end_offset(1), 0);
    }

    #[test]
    fn append_time_is_monotonic_per_partition() {
        let t = Topic::new(1);
        let (_, t1) = append(&t, 0, vec![(Bytes::from_static(b"a"), 0.0)]);
        let (_, t2) = append(&t, 0, vec![(Bytes::from_static(b"b"), 0.0)]);
        assert!(t2 >= t1);
    }

    #[test]
    fn read_respects_limits_but_always_progresses() {
        let t = Topic::new(1);
        let big = Bytes::from(vec![0u8; 1000]);
        append(
            &t,
            0,
            vec![(big.clone(), 0.0), (big.clone(), 0.0), (big, 0.0)],
        );
        // max_bytes smaller than one record: still returns one.
        let r = read(&t, 0, 0, 10, 10);
        assert_eq!(r.len(), 1);
        // max_bytes fits two.
        let r = read(&t, 0, 0, 10, 2000);
        assert_eq!(r.len(), 2);
        // max_records caps.
        let r = read(&t, 0, 0, 1, usize::MAX);
        assert_eq!(r.len(), 1);
        // Reading past the end yields nothing.
        assert!(read(&t, 0, 3, 10, usize::MAX).is_empty());
    }

    #[test]
    fn offsets_in_fetched_records_are_correct() {
        let t = Topic::new(1);
        append(
            &t,
            0,
            vec![
                (Bytes::from_static(b"a"), 0.0),
                (Bytes::from_static(b"b"), 0.0),
            ],
        );
        let r = read(&t, 0, 1, 10, usize::MAX);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].offset, 1);
        assert_eq!(&r[0].value[..], b"b");
    }

    #[test]
    fn wait_for_data_wakes_on_append() {
        use std::sync::Arc;
        let t = Arc::new(Topic::new(1));
        let seen = t.current_version();
        let t2 = t.clone();
        let h =
            std::thread::spawn(move || t2.wait_for_data(seen, std::time::Duration::from_secs(5)));
        std::thread::sleep(std::time::Duration::from_millis(20));
        append(&t, 0, vec![(Bytes::from_static(b"x"), 0.0)]);
        let v = h.join().unwrap();
        assert!(v > seen);
    }

    #[test]
    fn retention_evicts_old_records_and_offsets_survive() {
        let t = Topic::with_cluster(1, 2500, &ClusterConfig::default());
        let rec = Bytes::from(vec![0u8; 1000]);
        for _ in 0..5 {
            append(&t, 0, vec![(rec.clone(), 0.0)]);
        }
        // Cap is 2500 bytes -> at most 2 retained records.
        assert_eq!(t.end_offset(0), 5);
        assert_eq!(t.start_offset(0), 3);
        // Reading from an evicted offset resumes at the horizon.
        let r = read(&t, 0, 0, 10, usize::MAX);
        assert_eq!(r.first().unwrap().offset, 3);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn retention_never_evicts_the_last_record() {
        let t = Topic::with_cluster(1, 10, &ClusterConfig::default());
        append(&t, 0, vec![(Bytes::from(vec![0u8; 1000]), 0.0)]);
        assert_eq!(t.end_offset(0), 1);
        assert_eq!(t.start_offset(0), 0);
        let r = read(&t, 0, 0, 10, usize::MAX);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn dedup_drops_resent_prefix() {
        let t = Topic::new(1);
        let batch = vec![
            (Bytes::from_static(b"a"), 0.0),
            (Bytes::from_static(b"b"), 0.0),
        ];
        let (o1, _, d1) = append_dedup(&t, 0, 7, 0, batch.clone());
        assert_eq!((o1, d1), (0, 0));
        // Full re-send (lost ack): everything is a duplicate.
        let (_, _, d2) = append_dedup(&t, 0, 7, 0, batch.clone());
        assert_eq!(d2, 2);
        assert_eq!(t.end_offset(0), 2);
        // Partial overlap: one duplicate, one new.
        let (_, _, d3) = append_dedup(
            &t,
            0,
            7,
            1,
            vec![
                (Bytes::from_static(b"b"), 0.0),
                (Bytes::from_static(b"c"), 0.0),
            ],
        );
        assert_eq!(d3, 1);
        assert_eq!(t.end_offset(0), 3);
        let vals: Vec<u8> = read(&t, 0, 0, 10, usize::MAX)
            .iter()
            .map(|r| r.value[0])
            .collect();
        assert_eq!(vals, b"abc".to_vec());
    }

    #[test]
    fn dedup_windows_are_per_producer_and_partition() {
        let t = Topic::new(2);
        let rec = vec![(Bytes::from_static(b"x"), 0.0)];
        append_dedup(&t, 0, 1, 0, rec.clone());
        // Different producer, same sequence range: not a duplicate.
        let (_, _, d) = append_dedup(&t, 0, 2, 0, rec.clone());
        assert_eq!(d, 0);
        // Same producer, different partition: independent window.
        let (_, _, d) = append_dedup(&t, 1, 1, 0, rec.clone());
        assert_eq!(d, 0);
        assert_eq!(t.end_offset(0), 2);
        assert_eq!(t.end_offset(1), 1);
    }

    #[test]
    fn dedup_accepts_gaps_after_dropped_batches() {
        let t = Topic::new(1);
        let rec = vec![(Bytes::from_static(b"x"), 0.0)];
        append_dedup(&t, 0, 1, 0, rec.clone());
        // The producer dropped sequences 1..3 (retry budget exhausted) and
        // moved on; the gap is accepted.
        let (_, _, d) = append_dedup(&t, 0, 1, 3, rec.clone());
        assert_eq!(d, 0);
        assert_eq!(t.end_offset(0), 2);
        // Re-sending the gap region now IS a duplicate (window advanced).
        let (_, _, d) = append_dedup(&t, 0, 1, 2, rec.clone());
        assert_eq!(d, 1);
    }

    #[test]
    fn wait_for_data_times_out() {
        let t = Topic::new(1);
        let v0 = t.current_version();
        let sw = crayfish_sim::Stopwatch::start();
        let v = t.wait_for_data(v0, std::time::Duration::from_millis(30));
        assert_eq!(v, v0);
        assert!(sw.elapsed_millis() >= 25.0);
    }

    #[test]
    fn replicated_topic_places_partitions_round_robin() {
        let t = Topic::with_cluster(4, DEFAULT_RETENTION_BYTES, &ClusterConfig::replicated());
        assert_eq!(t.partitions[0].status().leader, 0);
        assert_eq!(t.partitions[1].status().leader, 1);
        assert_eq!(t.partitions[2].status().leader, 2);
        assert_eq!(t.partitions[3].status().leader, 0);
        assert_eq!(t.partitions[0].status().replicas, 3);
    }
}
