//! Observability quickstart: run an experiment with live metrics enabled,
//! expose them on the Prometheus endpoint, and print the per-stage latency
//! breakdown the subsystem collects.
//!
//! While the run is in flight the endpoint is scrapeable, e.g.:
//!
//! ```sh
//! cargo run --release --example observability
//! # in another terminal:
//! curl http://127.0.0.1:9184/metrics
//! cargo run --release --bin crayfish-top
//! ```

use std::time::Duration;

use crayfish::obs;
use crayfish::prelude::*;

fn main() {
    let handle = ObsHandle::enabled();
    let exporter = obs::export::serve_on(&handle, "127.0.0.1:9184")
        .or_else(|_| obs::export::serve(&handle))
        .expect("bind exporter");
    println!("exporter    : http://{}/metrics", exporter.addr());

    let mut spec = ExperimentSpec::quick(
        ModelSpec::TinyMlp,
        ServingChoice::External {
            kind: ExternalKind::TfServing,
            device: Device::Cpu,
        },
    );
    spec.workload = Workload::Constant { rate: 500.0 };
    spec.duration = Duration::from_secs(5);
    spec.network = NetworkModel::lan_1gbps();
    spec.obs = handle.clone();

    println!("engine      : kstreams (mp = {})", spec.mp);
    println!("serving     : {}", spec.serving.label());
    println!("workload    : 500 events/s for {:?}", spec.duration);
    println!();

    let result = run_experiment(&KStreamsProcessor::new(), &spec).expect("experiment failed");

    println!("scored      : {} batches", result.consumed);
    println!("throughput  : {:.1} events/s", result.throughput_eps);
    println!();
    println!(
        "{:<14} {:>9} {:>10} {:>10} {:>10}",
        "stage", "samples", "p50 µs", "p95 µs", "p99 µs"
    );
    for stage in Stage::ALL {
        let snap = handle.stage_snapshot(stage);
        if snap.count() == 0 {
            continue;
        }
        println!(
            "{:<14} {:>9} {:>10.1} {:>10.1} {:>10.1}",
            stage.name(),
            snap.count(),
            snap.percentile(0.50) / 1e3,
            snap.percentile(0.95) / 1e3,
            snap.percentile(0.99) / 1e3,
        );
    }
    let e2e = handle.e2e_snapshot();
    println!(
        "{:<14} {:>9} {:>10.1} {:>10.1} {:>10.1}",
        "end-to-end",
        e2e.count(),
        e2e.percentile(0.50) / 1e3,
        e2e.percentile(0.95) / 1e3,
        e2e.percentile(0.99) / 1e3,
    );
    println!();
    println!("counters:");
    for (name, value) in handle.counter_values() {
        println!("  {name:<24} {value}");
    }

    exporter.stop();
}
