//! Server lifecycle: the handle every listening server hands back, plus
//! the blocking thread-per-connection accept loop.

use std::collections::HashMap;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::Mutex;

use crate::Result;

/// A running server. Dropping the handle (or calling
/// [`shutdown`](ServerHandle::shutdown)) stops the listener, joins the
/// accept loop, severs every live connection with `Shutdown::Both` — so
/// clients blocked mid-read observe EOF promptly instead of hanging — and
/// then runs any registered teardown hooks (reactor join, worker-pool
/// drain).
pub struct ServerHandle {
    name: &'static str,
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    connections: Arc<Mutex<HashMap<u64, TcpStream>>>,
    /// Run once, in order, at the end of `stop` — after the accept loop
    /// has joined and connections are severed.
    teardown: Vec<Box<dyn FnOnce() + Send>>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("name", &self.name)
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl ServerHandle {
    /// The bound address (always a localhost ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Server kind name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Stop accepting connections and join the accept loop.
    pub fn shutdown(mut self) {
        self.stop();
    }

    /// The shutdown flag, observed by auxiliary server threads (e.g. the
    /// Ray Serve proxy and replicas) so they exit when the handle drops.
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        self.shutdown.clone()
    }

    /// Number of live connections currently tracked.
    pub fn connection_count(&self) -> usize {
        self.connections.lock().len()
    }

    /// Register a hook to run at the end of `stop`, after the accept loop
    /// joins and connections are severed. The reactor path uses this to
    /// join the poll thread; RPC services additionally drain their worker
    /// pools.
    pub fn add_teardown(&mut self, hook: impl FnOnce() + Send + 'static) {
        self.teardown.push(Box::new(hook));
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        // Tear down live connections so handler threads exit and clients
        // blocked on reads get EOF.
        for (_, conn) in self.connections.lock().drain() {
            let _ = conn.shutdown(Shutdown::Both);
        }
        for hook in self.teardown.drain(..) {
            hook();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Spawn a TCP server bound to a specific address (port 0 picks an
/// ephemeral one). `on_connection` is invoked on a fresh thread per
/// accepted connection — the blocking I/O model.
pub fn spawn_listener_on(
    name: &'static str,
    addr: SocketAddr,
    on_connection: impl Fn(TcpStream) + Send + Sync + 'static,
) -> Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let connections: Arc<Mutex<HashMap<u64, TcpStream>>> = Arc::new(Mutex::new(HashMap::new()));
    let flag = shutdown.clone();
    let conns = connections.clone();
    let handler = Arc::new(on_connection);
    let accept_thread = std::thread::Builder::new()
        .name(format!("{name}-accept"))
        .spawn(move || {
            let mut next_conn_id = 0u64;
            for stream in listener.incoming() {
                if flag.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                stream.set_nodelay(true).ok();
                let id = next_conn_id;
                next_conn_id += 1;
                if let Ok(clone) = stream.try_clone() {
                    conns.lock().insert(id, clone);
                }
                let h = handler.clone();
                let registry = conns.clone();
                let spawned = std::thread::Builder::new()
                    .name(format!("{name}-conn"))
                    .spawn(move || {
                        h(stream);
                        // Drop the registry entry once the handler is done
                        // so a long-lived server does not accumulate dead
                        // sockets.
                        registry.lock().remove(&id);
                    });
                if spawned.is_err() {
                    // Out of threads: drop this connection (the client sees
                    // EOF and retries) instead of killing the accept loop.
                    if let Some(conn) = conns.lock().remove(&id) {
                        let _ = conn.shutdown(Shutdown::Both);
                    }
                }
            }
        })?;
    Ok(ServerHandle {
        name,
        addr,
        shutdown,
        accept_thread: Some(accept_thread),
        connections,
        teardown: Vec::new(),
    })
}

/// Assemble a handle from parts — used by the reactor, whose accept loop
/// injects connections into the poll thread instead of spawning handler
/// threads.
pub fn assemble_handle(
    name: &'static str,
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: JoinHandle<()>,
    connections: Arc<Mutex<HashMap<u64, TcpStream>>>,
) -> ServerHandle {
    ServerHandle {
        name,
        addr,
        shutdown,
        accept_thread: Some(accept_thread),
        connections,
        teardown: Vec::new(),
    }
}
