//! Blocking clients used by the scoring operators.
//!
//! All external calls in the paper's evaluation are blocking (§4.3
//! "Network Calls"); each parallel scoring task owns one connection. The
//! modelled LAN hop ([`NetworkModel`]) is paid per request and per response
//! on the client side, on top of the real localhost TCP exchange.

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};

use crayfish_sim::{NetworkModel, OverheadModel};
use crayfish_tensor::Tensor;

use crate::protocol::{
    decode_tensor_binary, encode_request_binary, encode_tensor_binary, http_request_bytes,
    read_frame, read_http_message, write_frame, JsonTensor,
};
use crate::{Result, ServingError};

/// A blocking inference client.
pub trait ScoringClient: Send {
    /// Protocol name ("grpc" / "http").
    fn protocol(&self) -> &'static str;
    /// Score one batched tensor, blocking until the response arrives.
    fn infer(&mut self, input: &Tensor) -> Result<Tensor>;
    /// Bound every subsequent blocking socket operation by `deadline`
    /// (`None` removes the bound). A call that exceeds it fails with a
    /// timeout [`ServingError::Io`] and leaves the connection poisoned —
    /// callers should reconnect. Default: no-op for transports without a
    /// socket.
    fn set_deadline(&mut self, deadline: Option<std::time::Duration>) -> Result<()> {
        let _ = deadline;
        Ok(())
    }
}

/// gRPC-like binary client (TF-Serving, TorchServe).
#[derive(Debug)]
pub struct GrpcClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    network: NetworkModel,
    stack_cost: crayfish_sim::Cost,
}

impl GrpcClient {
    /// Connect to a gRPC-like server.
    pub fn connect(addr: SocketAddr, network: NetworkModel) -> Result<GrpcClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        Ok(GrpcClient {
            writer: stream,
            reader,
            network,
            stack_cost: OverheadModel::calibrated().grpc_stack,
        })
    }
}

impl GrpcClient {
    /// Score against a named model of a multi-model server (§7.2-style
    /// model management; see `crayfish_serving::registry`).
    pub fn infer_named(&mut self, model: &str, input: &Tensor) -> Result<Tensor> {
        let payload = encode_request_binary(Some(model), input);
        self.call(payload)
    }

    fn call(&mut self, payload: Vec<u8>) -> Result<Tensor> {
        // Combined client+server gRPC stack traversal for the call.
        self.stack_cost.spend(payload.len());
        // LAN hop: request out.
        self.network.transfer(payload.len());
        write_frame(&mut self.writer, &payload)?;
        let reply = read_frame(&mut self.reader)?.ok_or(ServingError::Closed)?;
        // LAN hop: response back.
        self.network.transfer(reply.len());
        decode_tensor_binary(&reply)
    }
}

impl ScoringClient for GrpcClient {
    fn protocol(&self) -> &'static str {
        "grpc"
    }

    fn infer(&mut self, input: &Tensor) -> Result<Tensor> {
        let payload = encode_tensor_binary(input);
        self.call(payload)
    }

    fn set_deadline(&mut self, deadline: Option<std::time::Duration>) -> Result<()> {
        // Timeouts are a property of the underlying socket, shared by the
        // reader clone.
        self.writer.set_read_timeout(deadline)?;
        self.writer.set_write_timeout(deadline)?;
        Ok(())
    }
}

/// HTTP/1.1 + JSON client (Ray Serve).
#[derive(Debug)]
pub struct HttpClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    network: NetworkModel,
}

impl HttpClient {
    /// Connect to an HTTP-like server.
    pub fn connect(addr: SocketAddr, network: NetworkModel) -> Result<HttpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        Ok(HttpClient {
            writer: stream,
            reader,
            network,
        })
    }
}

impl ScoringClient for HttpClient {
    fn protocol(&self) -> &'static str {
        "http"
    }

    fn infer(&mut self, input: &Tensor) -> Result<Tensor> {
        // Real JSON encode on the client (the HTTP protocol's tax).
        let request = http_request_bytes(input)?;
        self.network.transfer(request.len());
        self.writer.write_all(&request)?;
        self.writer.flush()?;
        let msg = read_http_message(&mut self.reader)?.ok_or(ServingError::Closed)?;
        self.network.transfer(msg.body.len() + 64);
        if msg.is_overloaded() {
            // 503 + Retry-After: typed backpressure, not a remote fault.
            return Err(ServingError::Overloaded {
                retry_after: msg.retry_after.unwrap_or_default(),
            });
        }
        if !msg.is_ok_response() {
            return Err(ServingError::Remote(
                String::from_utf8_lossy(&msg.body).into_owned(),
            ));
        }
        let jt: JsonTensor = serde_json::from_slice(&msg.body)
            .map_err(|e| ServingError::Protocol(format!("response decode: {e}")))?;
        jt.into_tensor()
    }

    fn set_deadline(&mut self, deadline: Option<std::time::Duration>) -> Result<()> {
        self.writer.set_read_timeout(deadline)?;
        self.writer.set_write_timeout(deadline)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServingConfig;
    use crayfish_models::tiny;
    use crayfish_sim::Stopwatch;

    #[test]
    fn grpc_client_pays_the_modelled_lan() {
        let server =
            crate::tf_serving::start(&tiny::tiny_mlp(1), ServingConfig::default()).unwrap();
        let slow_lan = NetworkModel {
            base_latency_s: 0.005,
            bandwidth_bytes_per_s: f64::INFINITY,
        };
        let mut fast = GrpcClient::connect(server.addr(), NetworkModel::zero()).unwrap();
        let mut slow = GrpcClient::connect(server.addr(), slow_lan).unwrap();
        let input = Tensor::seeded_uniform([1, 8, 8], 1, 0.0, 1.0);
        fast.infer(&input).unwrap();
        slow.infer(&input).unwrap();
        let sw = Stopwatch::start();
        slow.infer(&input).unwrap();
        let slow_ms = sw.elapsed_millis();
        assert!(slow_ms >= 10.0, "two 5 ms hops not paid: {slow_ms} ms");
        server.shutdown();
    }

    #[test]
    fn protocols_report_names() {
        let server =
            crate::tf_serving::start(&tiny::tiny_mlp(1), ServingConfig::default()).unwrap();
        let grpc = GrpcClient::connect(server.addr(), NetworkModel::zero()).unwrap();
        assert_eq!(grpc.protocol(), "grpc");
        server.shutdown();
        let server = crate::ray_serve::start(&tiny::tiny_mlp(1), ServingConfig::default()).unwrap();
        let http = HttpClient::connect(server.addr(), NetworkModel::zero()).unwrap();
        assert_eq!(http.protocol(), "http");
        server.shutdown();
    }

    #[test]
    fn disconnected_server_yields_error() {
        let server =
            crate::tf_serving::start(&tiny::tiny_mlp(1), ServingConfig::default()).unwrap();
        let addr = server.addr();
        let mut client = GrpcClient::connect(addr, NetworkModel::zero()).unwrap();
        let input = Tensor::seeded_uniform([1, 8, 8], 1, 0.0, 1.0);
        client.infer(&input).unwrap();
        server.shutdown();
        // After shutdown the connection eventually fails (closed or reset).
        let mut saw_err = false;
        for _ in 0..3 {
            if client.infer(&input).is_err() {
                saw_err = true;
                break;
            }
        }
        assert!(saw_err, "expected an error after server shutdown");
    }
}
