//! Shared server machinery: configuration, lifecycle handle (re-exported
//! from `crayfish-net`), accept loop, and the worker-instance pool.

use std::net::SocketAddr;

use crossbeam::channel::{bounded, Receiver, Sender};

use crayfish_admission::AdmissionConfig;
use crayfish_runtime::{Device, LoadedModel};
use crayfish_sim::OverheadModel;

pub use crayfish_net::ServerHandle;

use crate::{Result, ServingError};

/// How a server turns sockets into requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IoModel {
    /// Readiness-driven reactor: one poll thread multiplexes every
    /// connection and feeds decoded requests into the admission queue,
    /// where scoring replicas drain them as cross-connection batches.
    /// The default, and what every production inference server does.
    #[default]
    Reactor,
    /// One blocking thread per connection, scoring requests one at a time
    /// against the shared model pool. The paper's original serving-tier
    /// shape, kept as the saturation bench's baseline rung.
    ThreadPerConnection,
}

/// Configuration of an external serving deployment.
#[derive(Debug, Clone)]
pub struct ServingConfig {
    /// Scoring replica count: how many model instances score concurrently.
    /// Under [`IoModel::Reactor`] these are the admission dispatcher's
    /// scoring workers; under [`IoModel::ThreadPerConnection`] they bound
    /// the shared model pool. One knob, one meaning, for every engine
    /// personality — concurrent processing threads (TF-Serving), worker
    /// processes (TorchServe), or replicas (Ray Serve). The paper's `mp`
    /// knob for external servers.
    pub replicas: usize,
    /// Inference device for every replica.
    pub device: Device,
    /// Calibrated overhead model (Python handlers, actor dispatch, …).
    pub overheads: OverheadModel,
    /// Observability recorder the server's worker pools report into
    /// (server-side `inference` spans, queue-depth and in-flight gauges,
    /// admission metrics). Disabled by default.
    pub obs: crayfish_obs::ObsHandle,
    /// Connection I/O model.
    pub io: IoModel,
    /// Continuous-batching and backpressure knobs, used by the
    /// [`IoModel::Reactor`] path.
    pub admission: AdmissionConfig,
}

impl Default for ServingConfig {
    fn default() -> Self {
        ServingConfig {
            replicas: 1,
            device: Device::Cpu,
            overheads: OverheadModel::calibrated(),
            obs: crayfish_obs::ObsHandle::disabled(),
            io: IoModel::default(),
            admission: AdmissionConfig::default(),
        }
    }
}

/// A pool of per-worker model instances. Taking an instance when all are in
/// use blocks — this is what bounds server concurrency to `workers`, the
/// mechanism behind every server's `mp` knob.
#[derive(Clone)]
pub(crate) struct ModelPool {
    tx: Sender<Box<dyn LoadedModel>>,
    rx: Receiver<Box<dyn LoadedModel>>,
    obs: crayfish_obs::ObsHandle,
    /// Requests blocked waiting for a free instance.
    queue_depth: crayfish_obs::Gauge,
    /// Requests currently executing on an instance.
    in_flight: crayfish_obs::Gauge,
}

impl ModelPool {
    /// Load `workers` independent instances of `graph` via `load`,
    /// reporting pool pressure and per-request execution spans into `obs`.
    pub fn new(
        workers: usize,
        obs: &crayfish_obs::ObsHandle,
        mut load: impl FnMut() -> crayfish_runtime::Result<Box<dyn LoadedModel>>,
    ) -> Result<ModelPool> {
        let workers = workers.max(1);
        let (tx, rx) = bounded(workers);
        for _ in 0..workers {
            tx.send(load()?).map_err(|_| ServingError::Closed)?;
        }
        Ok(ModelPool {
            tx,
            rx,
            obs: obs.clone(),
            queue_depth: obs.gauge("serving_queue_depth"),
            in_flight: obs.gauge("serving_in_flight"),
        })
    }

    /// Borrow an instance (blocking) and run `f` with it. The wait for a
    /// free instance counts into the queue-depth gauge; the execution
    /// itself is an `inference` span (server-side model time, as opposed to
    /// the client-observed `serving_rpc` stage). Errors with
    /// [`ServingError::Closed`] if the pool's channel was torn down — a
    /// handler thread outliving its server must surface that as a serving
    /// failure, not a panic.
    pub fn with_model<T>(&self, f: impl FnOnce(&mut dyn LoadedModel) -> T) -> Result<T> {
        self.queue_depth.inc();
        let model = self.rx.recv();
        self.queue_depth.dec();
        let mut model = model.map_err(|_| ServingError::Closed)?;
        self.in_flight.inc();
        let span = self.obs.timer(crayfish_obs::Stage::Inference);
        let out = f(model.as_mut());
        span.stop();
        self.in_flight.dec();
        self.tx.send(model).map_err(|_| ServingError::Closed)?;
        Ok(out)
    }
}

/// Spawn a localhost TCP server on an ephemeral port. `on_connection` is
/// invoked on a fresh thread per accepted connection. Only tests need the
/// ephemeral-port variant; production servers restart on a fixed address.
#[cfg(test)]
pub(crate) fn spawn_listener(
    name: &'static str,
    on_connection: impl Fn(std::net::TcpStream) + Send + Sync + 'static,
) -> Result<ServerHandle> {
    spawn_listener_on(name, SocketAddr::from(([127, 0, 0, 1], 0)), on_connection)
}

/// Spawn a TCP server bound to a specific address — used to restart a
/// crashed server on the endpoint its clients already hold (see
/// `crate::restart`). A thin wrapper over the shared `crayfish-net`
/// listener that surfaces failures in serving's error taxonomy.
pub(crate) fn spawn_listener_on(
    name: &'static str,
    addr: SocketAddr,
    on_connection: impl Fn(std::net::TcpStream) + Send + Sync + 'static,
) -> Result<ServerHandle> {
    Ok(crayfish_net::spawn_listener_on(name, addr, on_connection)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crayfish_models::tiny;
    use crayfish_runtime::{EmbeddedRuntime, OnnxRuntime};
    use std::io::{Read, Write};
    use std::net::TcpStream;
    use std::sync::atomic::Ordering;
    use std::sync::Arc;

    #[test]
    fn pool_bounds_concurrency() {
        let g = tiny::tiny_mlp(1);
        let pool = ModelPool::new(2, &crayfish_obs::ObsHandle::disabled(), || {
            OnnxRuntime::new().load_graph(&g, Device::Cpu)
        })
        .unwrap();
        let active = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let peak = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let pool = pool.clone();
            let active = active.clone();
            let peak = peak.clone();
            handles.push(std::thread::spawn(move || {
                pool.with_model(|_m| {
                    let now = active.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    active.fetch_sub(1, Ordering::SeqCst);
                })
                .unwrap();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= 2, "pool leaked concurrency");
    }

    #[test]
    fn shutdown_unblocks_blocked_clients() {
        // The server never writes: a client blocked on a read must see EOF
        // when the handle shuts down, not hang.
        let handle = spawn_listener("mute", |mut stream| {
            let mut buf = [0u8; 1];
            while let Ok(n) = stream.read(&mut buf) {
                if n == 0 {
                    break;
                }
            }
        })
        .unwrap();
        let mut c = TcpStream::connect(handle.addr()).unwrap();
        let t = std::thread::spawn(move || {
            let mut buf = [0u8; 1];
            let _ = c.read(&mut buf);
        });
        std::thread::sleep(std::time::Duration::from_millis(30));
        handle.shutdown();
        let start = std::time::Instant::now();
        t.join().unwrap();
        assert!(
            start.elapsed() < std::time::Duration::from_secs(5),
            "client stayed blocked after shutdown"
        );
    }

    #[test]
    fn finished_connections_are_pruned() {
        let handle = spawn_listener("hello", |mut stream| {
            let _ = stream.write_all(b"hi");
        })
        .unwrap();
        for _ in 0..5 {
            let mut c = TcpStream::connect(handle.addr()).unwrap();
            let mut buf = [0u8; 2];
            c.read_exact(&mut buf).unwrap();
        }
        // Entries drain as handlers finish.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        while handle.connection_count() > 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "dead connections never pruned ({} left)",
                handle.connection_count()
            );
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        handle.shutdown();
    }

    #[test]
    fn listener_rebinds_a_fixed_addr_after_shutdown() {
        let first = spawn_listener("fixed", |_s| {}).unwrap();
        let addr = first.addr();
        first.shutdown();
        let second = spawn_listener_on("fixed", addr, |_s| {}).unwrap();
        assert_eq!(second.addr(), addr);
        assert!(TcpStream::connect(addr).is_ok());
        second.shutdown();
    }

    #[test]
    fn listener_echo_and_shutdown() {
        let handle = spawn_listener("echo", |mut stream| {
            let mut buf = [0u8; 4];
            if stream.read_exact(&mut buf).is_ok() {
                stream.write_all(&buf).ok();
            }
        })
        .unwrap();
        let mut c = TcpStream::connect(handle.addr()).unwrap();
        c.write_all(b"ping").unwrap();
        let mut buf = [0u8; 4];
        c.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        handle.shutdown();
    }
}
