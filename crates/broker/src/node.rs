//! Multi-process broker nodes: the replication protocol over a real wire.
//!
//! [`crate::replication`] models a replicated partition *inside* one
//! process. This module puts each replica in its own process: a
//! [`BrokerNode`] owns a plain local [`Broker`] (its log) and talks to its
//! peers over [`Transport`]s, so leader-epoch fencing, `acks=all`
//! replication, and producer dedup windows travel as wire frames instead
//! of method calls.
//!
//! The protocol keeps the single invariant the in-process model proves:
//! **the committed log is a prefix of every in-sync follower's log.** The
//! leader replicates a batch to its followers *before* appending locally,
//! and only acknowledges once `min_insync_replicas` copies (itself
//! included) exist. A leader that cannot reach quorum fails the append
//! with [`BrokerError::NotEnoughReplicas`] *without* appending locally —
//! any follower that did take the batch holds a superset, and the
//! producer's dedup window (replicated with the batch) makes the retry
//! idempotent everywhere.
//!
//! Failover is client-driven and deterministic: [`ClusterTransport`]
//! status-polls every node, picks the reachable replica with the longest
//! log (ties to the lowest node id), and promotes it with a fresh epoch.
//! Replication requests carry the leader's epoch; a node that has seen a
//! higher one answers [`NodeReply::Fenced`], which demotes the stale
//! leader — the split-brain story is the same as the in-process
//! [`crate::replication::ReplicatedPartition`], just over TCP.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use serde::{Deserialize, Serialize};

use crayfish_net::{spawn_rpc_server, NetError, RpcHandler, ServerHandle, TcpTransport, Transport};
use crayfish_sim::NetworkModel;
use crayfish_sync::Mutex;

use crate::broker::Broker;
use crate::error::BrokerError;
use crate::rpc::{self, BrokerReply, BrokerRequest, RemoteBroker, WireValue};
use crate::Result;

/// Upper bound on catch-up rounds per follower per append: each round
/// moves the follower's log end forward, so this only trips on a
/// pathologically diverged replica (which is then dropped from the ack
/// count, not retried forever).
const MAX_CATCH_UP_ROUNDS: u32 = 64;

/// One node's view of itself, as answered to a `Status` probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeStatus {
    /// Node id.
    pub id: u32,
    /// Highest leader epoch this node has observed.
    pub epoch: u64,
    /// Whether this node currently believes it is the leader.
    pub is_leader: bool,
    /// Sum of log-end offsets across all topic partitions — the
    /// "caught-up-ness" metric failover elects on.
    pub log_end_total: u64,
}

/// Inter-node (and client-to-node) wire messages.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum NodeRequest {
    /// A client operation: an encoded [`BrokerRequest`], answered with an
    /// encoded [`BrokerReply`]. Only the leader serves these.
    Client {
        /// Encoded [`BrokerRequest`].
        payload: Vec<u8>,
    },
    /// Leader → follower: append `records` at `base`. Carries the
    /// producer's dedup-window identity so retries stay idempotent on
    /// every replica.
    Replicate {
        /// Leader epoch of the sender.
        epoch: u64,
        /// Topic name.
        topic: String,
        /// Topic partition count (lets a follower that missed the
        /// `CreateTopic` materialise the topic before appending).
        partitions: u32,
        /// Partition.
        partition: u32,
        /// Leader's log end before this batch — the offset the first
        /// record must land at.
        base: u64,
        /// Producer dedup-window id; `None` for non-idempotent appends
        /// and catch-up traffic.
        producer_id: Option<u64>,
        /// Sequence of the first record in the producer's stream.
        first_seq: u64,
        /// The batch.
        records: Vec<WireValue>,
    },
    /// Leader → follower: replicated topic creation.
    CreateTopic {
        /// Leader epoch of the sender.
        epoch: u64,
        /// Topic name.
        name: String,
        /// Partition count.
        partitions: u32,
        /// Retention override.
        retention_bytes: Option<u64>,
    },
    /// Leader → follower: replicated topic deletion.
    DeleteTopic {
        /// Leader epoch of the sender.
        epoch: u64,
        /// Topic name.
        name: String,
    },
    /// Leader → follower: replicated consumer-group commit positions
    /// (best-effort — a missed commit re-reads, never loses).
    CommitOffsets {
        /// Leader epoch of the sender.
        epoch: u64,
        /// Consumer group.
        group: String,
        /// Topic name.
        topic: String,
        /// `(partition, next_offset)` pairs.
        offsets: Vec<(u32, u64)>,
    },
    /// Failover: become leader at `epoch` (must exceed every epoch the
    /// node has seen).
    Promote {
        /// The new epoch.
        epoch: u64,
    },
    /// Liveness + election probe.
    Status,
}

/// Replies to [`NodeRequest`]s.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum NodeReply {
    /// Answer to a `Client` request: an encoded [`BrokerReply`].
    Client {
        /// Encoded [`BrokerReply`].
        payload: Vec<u8>,
    },
    /// Replication (or replicated admin/commit) applied; the follower's
    /// new log end for the partition.
    Ack {
        /// Follower log end after applying.
        end: u64,
    },
    /// The follower's log does not line up with `base`; its actual end.
    /// The leader responds with catch-up traffic.
    Mismatch {
        /// Follower's current log end.
        end: u64,
    },
    /// The sender's epoch is stale; the receiver has seen `current`.
    Fenced {
        /// Highest epoch the receiver has observed.
        current: u64,
    },
    /// The node accepted leadership at `epoch`.
    Promoted {
        /// The adopted epoch.
        epoch: u64,
    },
    /// Status-probe answer.
    Status(NodeStatus),
    /// A node-level failure (malformed frame, local log error).
    Error(BrokerError),
}

#[derive(Debug)]
struct LeaderState {
    epoch: u64,
    is_leader: bool,
}

/// One broker process in a replicated cluster: a local log plus the
/// replication protocol against its peers.
pub struct BrokerNode {
    id: u32,
    min_isr: u32,
    local: Arc<Broker>,
    peers: Vec<(u32, Box<dyn Transport>)>,
    state: Mutex<LeaderState>,
    /// Serialises replicate-then-append so concurrent producers cannot
    /// interleave between quorum and local apply.
    append_gate: Mutex<()>,
    obs: crayfish_obs::ObsHandle,
    replications: crayfish_obs::Counter,
    fencings: crayfish_obs::Counter,
}

impl std::fmt::Debug for BrokerNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BrokerNode")
            .field("id", &self.id)
            .field("min_isr", &self.min_isr)
            .finish_non_exhaustive()
    }
}

impl BrokerNode {
    /// A node with an empty local log and no peers. Node 0 conventionally
    /// starts as leader at epoch 0 (see [`BrokerNode::make_leader`]).
    pub fn new(
        id: u32,
        min_isr: u32,
        obs: crayfish_obs::ObsHandle,
        chaos: crayfish_chaos::ChaosHandle,
    ) -> BrokerNode {
        let local = Broker::with_parts(NetworkModel::zero(), obs.clone(), chaos);
        BrokerNode {
            id,
            min_isr: min_isr.max(1),
            local,
            peers: Vec::new(),
            state: Mutex::new(LeaderState {
                epoch: 0,
                is_leader: false,
            }),
            append_gate: Mutex::new(()),
            replications: obs.counter("node_replications"),
            fencings: obs.counter("node_fencings"),
            obs,
        }
    }

    /// Register a peer replica this node replicates to when leading.
    pub fn add_peer(&mut self, id: u32, transport: Box<dyn Transport>) {
        self.peers.push((id, transport));
    }

    /// Convenience: a TCP peer, tagged for chaos dead/isolated windows.
    pub fn add_tcp_peer(&mut self, id: u32, addr: SocketAddr, chaos: crayfish_chaos::ChaosHandle) {
        let transport = TcpTransport::with_instruments(addr, &self.obs, chaos)
            .with_peer(id)
            .with_read_timeout(Duration::from_secs(2));
        self.add_peer(id, Box::new(transport));
    }

    /// Assume leadership at `epoch` without an election (bootstrap).
    pub fn make_leader(&self, epoch: u64) {
        let mut st = self.state.lock();
        st.epoch = st.epoch.max(epoch);
        st.is_leader = true;
    }

    /// This node's id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The node's local broker (its replica log). Tests and the node
    /// binary use it for direct inspection; clients go through the wire.
    pub fn local(&self) -> &Arc<Broker> {
        &self.local
    }

    /// Current status snapshot.
    pub fn status(&self) -> NodeStatus {
        let (epoch, is_leader) = {
            let st = self.state.lock();
            (st.epoch, st.is_leader)
        };
        let mut total = 0u64;
        for topic in self.local.topic_names() {
            if let Ok(parts) = self.local.partitions(&topic) {
                for p in 0..parts {
                    total += self.local.end_offset(&topic, p).unwrap_or(0);
                }
            }
        }
        NodeStatus {
            id: self.id,
            epoch,
            is_leader,
            log_end_total: total,
        }
    }

    /// Serve this node's protocol endpoint. Long-polls and replication
    /// fan-out both park worker threads, so `workers` should comfortably
    /// exceed the expected concurrent client count.
    pub fn serve(self: Arc<Self>, addr: SocketAddr, workers: usize) -> Result<ServerHandle> {
        let node = self.clone();
        let handler: RpcHandler = Arc::new(move |frame: &[u8]| node.handle(frame));
        spawn_rpc_server("broker-node", addr, workers, handler)
            .map_err(|e| BrokerError::Transport(format!("node serve: {e}")))
    }

    /// Decode one request frame, run it, encode the reply.
    pub fn handle(&self, frame: &[u8]) -> Vec<u8> {
        let reply = match serde_json::from_slice::<NodeRequest>(frame) {
            Ok(req) => self.dispatch(req),
            Err(e) => NodeReply::Error(BrokerError::Transport(format!("bad node request: {e}"))),
        };
        serde_json::to_vec(&reply).unwrap_or_default()
    }

    fn dispatch(&self, req: NodeRequest) -> NodeReply {
        match req {
            NodeRequest::Client { payload } => {
                let reply = self.client(&payload);
                NodeReply::Client {
                    payload: serde_json::to_vec(&reply).unwrap_or_default(),
                }
            }
            NodeRequest::Replicate {
                epoch,
                topic,
                partitions,
                partition,
                base,
                producer_id,
                first_seq,
                records,
            } => self.apply_replicate(
                epoch,
                &topic,
                partitions,
                partition,
                base,
                producer_id,
                first_seq,
                records,
            ),
            NodeRequest::CreateTopic {
                epoch,
                name,
                partitions,
                retention_bytes,
            } => self.fenced(epoch, |node| {
                let created = match retention_bytes {
                    Some(bytes) => {
                        node.local
                            .create_topic_with_retention(&name, partitions, bytes as usize)
                    }
                    None => node.local.create_topic(&name, partitions),
                };
                match created {
                    Ok(()) | Err(BrokerError::TopicExists(_)) => NodeReply::Ack { end: 0 },
                    Err(e) => NodeReply::Error(e),
                }
            }),
            NodeRequest::DeleteTopic { epoch, name } => {
                self.fenced(epoch, |node| match node.local.delete_topic(&name) {
                    Ok(()) | Err(BrokerError::UnknownTopic(_)) => NodeReply::Ack { end: 0 },
                    Err(e) => NodeReply::Error(e),
                })
            }
            NodeRequest::CommitOffsets {
                epoch,
                group,
                topic,
                offsets,
            } => self.fenced(epoch, |node| {
                // Best-effort by design: a missed group commit means a
                // re-read after failover, never a lost record.
                for (partition, next) in offsets {
                    node.local.commit_offset(&group, &topic, partition, next);
                }
                NodeReply::Ack { end: 0 }
            }),
            NodeRequest::Promote { epoch } => self.promote(epoch),
            NodeRequest::Status => NodeReply::Status(self.status()),
        }
    }

    /// Epoch-gate a replicated mutation: adopt newer epochs (demoting
    /// ourselves if we led), fence older ones.
    fn fenced(&self, epoch: u64, apply: impl FnOnce(&BrokerNode) -> NodeReply) -> NodeReply {
        {
            let mut st = self.state.lock();
            if epoch < st.epoch {
                self.fencings.inc();
                return NodeReply::Fenced { current: st.epoch };
            }
            if epoch > st.epoch {
                st.epoch = epoch;
                st.is_leader = false;
            } else if st.is_leader {
                // Same epoch from another claimed leader: split brain.
                // Refuse — one of us will be promoted past the other.
                self.fencings.inc();
                return NodeReply::Fenced { current: st.epoch };
            }
        }
        apply(self)
    }

    #[allow(clippy::too_many_arguments)]
    fn apply_replicate(
        &self,
        epoch: u64,
        topic: &str,
        partitions: u32,
        partition: u32,
        base: u64,
        producer_id: Option<u64>,
        first_seq: u64,
        records: Vec<WireValue>,
    ) -> NodeReply {
        self.fenced(epoch, |node| {
            // A follower that missed the CreateTopic materialises it now;
            // its log starts empty and the Mismatch path backfills.
            if node.local.partitions(topic).is_err() {
                let _ = node.local.create_topic(topic, partitions);
            }
            let end = match node.local.end_offset(topic, partition) {
                Ok(end) => end,
                Err(e) => return NodeReply::Error(e),
            };
            let values = rpc::unwire_values(records);
            let appended = match producer_id {
                Some(pid) => {
                    if base > end {
                        return NodeReply::Mismatch { end };
                    }
                    // base <= end: the dedup window decides. A batch this
                    // replica already holds (it acked one the leader then
                    // failed) dedups to its original offsets; a genuinely
                    // new batch lands at `end`, which equals `base` once
                    // the in-order producer has replayed the gap.
                    node.local
                        .append_dedup(topic, partition, pid, first_seq, values)
                }
                None => {
                    if base != end {
                        return NodeReply::Mismatch { end };
                    }
                    node.local.append(topic, partition, values)
                }
            };
            match appended {
                Ok(_) => match node.local.end_offset(topic, partition) {
                    Ok(end) => NodeReply::Ack { end },
                    Err(e) => NodeReply::Error(e),
                },
                Err(e) => NodeReply::Error(e),
            }
        })
    }

    fn promote(&self, epoch: u64) -> NodeReply {
        let mut st = self.state.lock();
        if epoch <= st.epoch {
            self.fencings.inc();
            return NodeReply::Fenced { current: st.epoch };
        }
        st.epoch = epoch;
        st.is_leader = true;
        NodeReply::Promoted { epoch }
    }

    /// Serve one client operation. Leader-only: every other node answers
    /// [`BrokerError::NotLeader`] so clients fail over.
    fn client(&self, payload: &[u8]) -> BrokerReply {
        let epoch = {
            let st = self.state.lock();
            if !st.is_leader {
                return BrokerReply::Err(BrokerError::NotLeader { epoch: st.epoch });
            }
            st.epoch
        };
        let req = match serde_json::from_slice::<BrokerRequest>(payload) {
            Ok(req) => req,
            Err(e) => return BrokerReply::Err(BrokerError::Transport(format!("bad request: {e}"))),
        };
        match req {
            BrokerRequest::Append {
                topic,
                partition,
                values,
            } => self
                .leader_append(epoch, &topic, partition, None, 0, values)
                .into(),
            BrokerRequest::AppendDedup {
                topic,
                partition,
                producer_id,
                first_seq,
                values,
            } => self
                .leader_append(
                    epoch,
                    &topic,
                    partition,
                    Some(producer_id),
                    first_seq,
                    values,
                )
                .into(),
            BrokerRequest::CreateTopic {
                name,
                partitions,
                retention_bytes,
            } => {
                let reply = rpc::dispatch(
                    self.local.as_ref(),
                    BrokerRequest::CreateTopic {
                        name: name.clone(),
                        partitions,
                        retention_bytes,
                    },
                );
                if matches!(reply, BrokerReply::Ok(_)) {
                    self.broadcast(&NodeRequest::CreateTopic {
                        epoch,
                        name,
                        partitions,
                        retention_bytes,
                    });
                }
                reply
            }
            BrokerRequest::DeleteTopic { name } => {
                let reply = rpc::dispatch(
                    self.local.as_ref(),
                    BrokerRequest::DeleteTopic { name: name.clone() },
                );
                if matches!(reply, BrokerReply::Ok(_)) {
                    self.broadcast(&NodeRequest::DeleteTopic { epoch, name });
                }
                reply
            }
            BrokerRequest::CommitOffset {
                group,
                topic,
                partition,
                next,
            } => {
                let reply = rpc::dispatch(
                    self.local.as_ref(),
                    BrokerRequest::CommitOffset {
                        group: group.clone(),
                        topic: topic.clone(),
                        partition,
                        next,
                    },
                );
                if matches!(reply, BrokerReply::Ok(_)) {
                    self.broadcast(&NodeRequest::CommitOffsets {
                        epoch,
                        group,
                        topic,
                        offsets: vec![(partition, next)],
                    });
                }
                reply
            }
            BrokerRequest::CommitOffsetsFenced {
                group,
                topic,
                member,
                generation,
                offsets,
            } => {
                let reply = rpc::dispatch(
                    self.local.as_ref(),
                    BrokerRequest::CommitOffsetsFenced {
                        group: group.clone(),
                        topic: topic.clone(),
                        member,
                        generation,
                        offsets: offsets.clone(),
                    },
                );
                if matches!(reply, BrokerReply::Ok(_)) {
                    self.broadcast(&NodeRequest::CommitOffsets {
                        epoch,
                        group,
                        topic,
                        offsets,
                    });
                }
                reply
            }
            other => rpc::dispatch(self.local.as_ref(), other),
        }
    }

    /// Best-effort fan-out of a replicated admin/commit mutation.
    fn broadcast(&self, msg: &NodeRequest) {
        for (_, transport) in &self.peers {
            let _ = self.send_peer(transport.as_ref(), msg);
        }
    }

    fn send_peer(&self, transport: &dyn Transport, msg: &NodeRequest) -> Result<NodeReply> {
        let bytes = serde_json::to_vec(msg)
            .map_err(|e| BrokerError::Transport(format!("encode node request: {e}")))?;
        let raw = transport
            .call(&bytes)
            .map_err(|e| BrokerError::Transport(e.to_string()))?;
        serde_json::from_slice::<NodeReply>(&raw)
            .map_err(|e| BrokerError::Transport(format!("decode node reply: {e}")))
    }

    /// The quorum append: replicate to every reachable follower first,
    /// then apply locally, then acknowledge. Failing quorum leaves the
    /// local log untouched.
    fn leader_append(
        &self,
        epoch: u64,
        topic: &str,
        partition: u32,
        producer_id: Option<u64>,
        first_seq: u64,
        records: Vec<WireValue>,
    ) -> Result<crate::rpc::BrokerResponse> {
        let _gate = self.append_gate.lock();
        let partitions = self.local.partitions(topic)?;
        if partition >= partitions {
            return Err(BrokerError::UnknownPartition {
                topic: topic.to_string(),
                partition,
            });
        }
        let base = self.local.end_offset(topic, partition)?;
        let mut acks = 1u32; // self
        for (_, transport) in &self.peers {
            match self.replicate_one(
                transport.as_ref(),
                epoch,
                topic,
                partitions,
                partition,
                base,
                producer_id,
                first_seq,
                &records,
            ) {
                Ok(true) => acks += 1,
                Ok(false) => {} // unreachable or diverged: out of the ack set
                Err(e) => return Err(e), // fenced: we are not the leader
            }
        }
        if acks < self.min_isr {
            return Err(BrokerError::NotEnoughReplicas {
                topic: topic.to_string(),
                partition,
                isr: acks,
                min_isr: self.min_isr,
            });
        }
        let values = rpc::unwire_values(records);
        let (offset, append_time_ms) = match producer_id {
            Some(pid) => self
                .local
                .append_dedup(topic, partition, pid, first_seq, values)?,
            None => self.local.append(topic, partition, values)?,
        };
        Ok(crate::rpc::BrokerResponse::Appended {
            offset,
            append_time_ms,
        })
    }

    /// Replicate one batch to one follower, backfilling any gap between
    /// its log and ours. `Ok(true)` = acked, `Ok(false)` = unreachable or
    /// unrecoverable (excluded from quorum), `Err` = we were fenced.
    #[allow(clippy::too_many_arguments)]
    fn replicate_one(
        &self,
        transport: &dyn Transport,
        epoch: u64,
        topic: &str,
        partitions: u32,
        partition: u32,
        base: u64,
        producer_id: Option<u64>,
        first_seq: u64,
        records: &[WireValue],
    ) -> Result<bool> {
        let mut rounds = 0u32;
        loop {
            self.replications.inc();
            let msg = NodeRequest::Replicate {
                epoch,
                topic: topic.to_string(),
                partitions,
                partition,
                base,
                producer_id,
                first_seq,
                records: records.to_vec(),
            };
            let reply = match self.send_peer(transport, &msg) {
                Ok(reply) => reply,
                Err(_) => return Ok(false),
            };
            match reply {
                NodeReply::Ack { .. } => return Ok(true),
                NodeReply::Fenced { current } => return Err(self.fence(topic, partition, current)),
                NodeReply::Mismatch { end } if end < base && rounds < MAX_CATCH_UP_ROUNDS => {
                    rounds += 1;
                    // Backfill [end, base) from our own log (all of it is
                    // below `base`, hence already durable locally), then
                    // retry the original batch.
                    let missing = self.local.read(
                        topic,
                        partition,
                        end,
                        (base - end) as usize,
                        usize::MAX,
                    )?;
                    if missing.is_empty() {
                        // Retention already dropped the gap; the follower
                        // cannot be made contiguous. Exclude it.
                        return Ok(false);
                    }
                    let backfill_base = missing[0].offset;
                    if backfill_base != end {
                        return Ok(false);
                    }
                    let catch_up = NodeRequest::Replicate {
                        epoch,
                        topic: topic.to_string(),
                        partitions,
                        partition,
                        base: backfill_base,
                        producer_id: None,
                        first_seq: 0,
                        records: missing
                            .into_iter()
                            .map(|r| WireValue {
                                value: r.value.to_vec(),
                                produce_time_ms: r.produce_time_ms,
                            })
                            .collect(),
                    };
                    match self.send_peer(transport, &catch_up) {
                        Ok(NodeReply::Ack { .. }) => continue,
                        Ok(NodeReply::Fenced { current }) => {
                            return Err(self.fence(topic, partition, current))
                        }
                        _ => return Ok(false),
                    }
                }
                _ => return Ok(false),
            }
        }
    }

    /// A follower told us our epoch is stale: demote and surface the
    /// fencing error (transient — the producer retries against the new
    /// leader via client failover).
    fn fence(&self, topic: &str, partition: u32, current: u64) -> BrokerError {
        self.fencings.inc();
        let mut st = self.state.lock();
        st.epoch = st.epoch.max(current);
        st.is_leader = false;
        BrokerError::FencedLeaderEpoch {
            topic: topic.to_string(),
            partition,
            current,
        }
    }
}

/// A [`Transport`] that fronts a whole node cluster: routes to the
/// current leader, and on transport failure or a
/// `NotLeader`/`FencedLeaderEpoch` answer performs the election — poll
/// every node's status, pick the most caught-up reachable replica (ties
/// to the lowest id), promote it with a fresh epoch, retry.
///
/// Wrapping it in a [`RemoteBroker`] (see [`connect_cluster`]) gives
/// producers and consumers transparent leader failover.
pub struct ClusterTransport {
    nodes: Vec<(u32, Box<dyn Transport>)>,
    leader: Mutex<usize>,
    failovers: crayfish_obs::Counter,
}

impl std::fmt::Debug for ClusterTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterTransport")
            .field("nodes", &self.nodes.len())
            .finish_non_exhaustive()
    }
}

impl ClusterTransport {
    /// Front a set of `(node_id, transport)` endpoints. The first entry is
    /// tried as leader until the cluster says otherwise.
    pub fn new(
        nodes: Vec<(u32, Box<dyn Transport>)>,
        obs: &crayfish_obs::ObsHandle,
    ) -> ClusterTransport {
        ClusterTransport {
            nodes,
            leader: Mutex::new(0),
            failovers: obs.counter("net_failovers"),
        }
    }

    fn encode(msg: &NodeRequest) -> crayfish_net::Result<Vec<u8>> {
        serde_json::to_vec(msg).map_err(|e| NetError::Frame(format!("encode: {e}")))
    }

    /// Synthesise an encoded `BrokerReply::Err` so the wrapping
    /// [`RemoteBroker`] surfaces a typed broker error.
    fn error_reply(e: BrokerError) -> crayfish_net::Result<Vec<u8>> {
        serde_json::to_vec(&BrokerReply::Err(e))
            .map_err(|e| NetError::Frame(format!("encode: {e}")))
    }

    /// Elect: status-poll everyone, adopt an existing max-epoch leader if
    /// one answers, otherwise promote the longest log. Returns false if no
    /// node was reachable.
    fn failover(&self) -> bool {
        self.failovers.inc();
        let probe = match Self::encode(&NodeRequest::Status) {
            Ok(bytes) => bytes,
            Err(_) => return false,
        };
        let mut statuses: Vec<(usize, NodeStatus)> = Vec::new();
        for (idx, (_, transport)) in self.nodes.iter().enumerate() {
            if let Ok(raw) = transport.call(&probe) {
                if let Ok(NodeReply::Status(status)) = serde_json::from_slice::<NodeReply>(&raw) {
                    statuses.push((idx, status));
                }
            }
        }
        let Some(max_epoch) = statuses.iter().map(|(_, s)| s.epoch).max() else {
            return false;
        };
        // An incumbent at the max epoch wins without an election (our
        // failure may have been a blip, or another client already
        // promoted).
        if let Some(&(idx, _)) = statuses
            .iter()
            .filter(|(_, s)| s.is_leader && s.epoch == max_epoch)
            .min_by_key(|(_, s)| s.id)
        {
            *self.leader.lock() = idx;
            return true;
        }
        // Otherwise promote the most caught-up replica, ties to the
        // lowest id — deterministic across racing clients.
        let Some(&(idx, _)) = statuses
            .iter()
            .max_by_key(|(_, s)| (s.log_end_total, std::cmp::Reverse(s.id)))
        else {
            return false;
        };
        let promote = match Self::encode(&NodeRequest::Promote {
            epoch: max_epoch + 1,
        }) {
            Ok(bytes) => bytes,
            Err(_) => return false,
        };
        if let Ok(raw) = self.nodes[idx].1.call(&promote) {
            // Any other reply is a fence: someone promoted past us
            // mid-election; the next attempt's status poll adopts them.
            if let Ok(NodeReply::Promoted { .. }) = serde_json::from_slice::<NodeReply>(&raw) {
                *self.leader.lock() = idx;
                return true;
            }
        }
        false
    }
}

impl Transport for ClusterTransport {
    fn call(&self, request: &[u8]) -> crayfish_net::Result<Vec<u8>> {
        let wrapped = Self::encode(&NodeRequest::Client {
            payload: request.to_vec(),
        })?;
        let attempts = self.nodes.len().max(1) * 2;
        for attempt in 0..attempts {
            let idx = *self.leader.lock();
            let raw = match self.nodes[idx].1.call(&wrapped) {
                Ok(raw) => raw,
                Err(e) if e.is_transient() => {
                    if !self.failover() && attempt + 1 == attempts {
                        return Err(e);
                    }
                    std::thread::sleep(Duration::from_millis(20));
                    continue;
                }
                Err(e) => return Err(e),
            };
            match serde_json::from_slice::<NodeReply>(&raw) {
                Ok(NodeReply::Client { payload }) => {
                    // Leadership errors trigger the election; everything
                    // else flows through to the caller typed.
                    if let Ok(BrokerReply::Err(e)) = serde_json::from_slice::<BrokerReply>(&payload)
                    {
                        if matches!(
                            e,
                            BrokerError::NotLeader { .. } | BrokerError::FencedLeaderEpoch { .. }
                        ) {
                            self.failover();
                            std::thread::sleep(Duration::from_millis(20));
                            continue;
                        }
                    }
                    return Ok(payload);
                }
                Ok(NodeReply::Error(e)) => return Self::error_reply(e),
                Ok(other) => {
                    return Self::error_reply(BrokerError::Transport(format!(
                        "unexpected node reply: {other:?}"
                    )))
                }
                Err(e) => return Err(NetError::Frame(format!("decode node reply: {e}"))),
            }
        }
        Self::error_reply(BrokerError::Transport(
            "no leader reachable after failover attempts".to_string(),
        ))
    }
}

/// One-shot liveness/status probe of a node endpoint. `None` until the
/// node's listener is up and answering the protocol — deployment code
/// polls this before letting an experiment proceed.
pub fn probe_node(addr: SocketAddr) -> Option<NodeStatus> {
    let transport = TcpTransport::new(addr).with_read_timeout(Duration::from_secs(1));
    let frame = serde_json::to_vec(&NodeRequest::Status).ok()?;
    let raw = transport.call(&frame).ok()?;
    match serde_json::from_slice::<NodeReply>(&raw) {
        Ok(NodeReply::Status(status)) => Some(status),
        _ => None,
    }
}

/// A failover-aware [`BrokerApi`] client over TCP to a node cluster.
pub fn connect_cluster(
    addrs: &[(u32, SocketAddr)],
    obs: crayfish_obs::ObsHandle,
    chaos: crayfish_chaos::ChaosHandle,
) -> Arc<RemoteBroker> {
    let nodes: Vec<(u32, Box<dyn Transport>)> = addrs
        .iter()
        .map(|&(id, addr)| {
            let t = TcpTransport::with_instruments(addr, &obs, chaos.clone())
                .with_peer(id)
                .with_read_timeout(Duration::from_secs(3));
            (id, Box::new(t) as Box<dyn Transport>)
        })
        .collect();
    let transport = ClusterTransport::new(nodes, &obs);
    RemoteBroker::with_parts(Box::new(transport), obs, chaos)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::BrokerApi;
    use bytes::Bytes;

    /// Shared node registry: transports resolve their peer at call time,
    /// so a slot set to `None` behaves exactly like a SIGKILLed process
    /// (connection refused) without any sockets.
    type Registry = Arc<Mutex<Vec<Option<Arc<BrokerNode>>>>>;

    struct RegistryTransport {
        registry: Registry,
        peer: u32,
    }

    impl Transport for RegistryTransport {
        fn call(&self, request: &[u8]) -> crayfish_net::Result<Vec<u8>> {
            let node = self.registry.lock()[self.peer as usize].clone();
            match node {
                Some(node) => Ok(node.handle(request)),
                None => Err(NetError::Closed),
            }
        }
    }

    /// A 3-node cluster (min_isr = 2) with node 0 leading, plus a
    /// failover-aware client — the full protocol, no sockets.
    fn cluster() -> (Registry, Arc<RemoteBroker>) {
        let obs = crayfish_obs::ObsHandle::disabled();
        let chaos = crayfish_chaos::ChaosHandle::disabled();
        let registry: Registry = Arc::new(Mutex::new(vec![None, None, None]));
        for id in 0..3u32 {
            let mut node = BrokerNode::new(id, 2, obs.clone(), chaos.clone());
            for peer in 0..3u32 {
                if peer != id {
                    node.add_peer(
                        peer,
                        Box::new(RegistryTransport {
                            registry: registry.clone(),
                            peer,
                        }),
                    );
                }
            }
            registry.lock()[id as usize] = Some(Arc::new(node));
        }
        node_at(&registry, 0).make_leader(0);
        let fronts: Vec<(u32, Box<dyn Transport>)> = (0..3u32)
            .map(|id| {
                (
                    id,
                    Box::new(RegistryTransport {
                        registry: registry.clone(),
                        peer: id,
                    }) as Box<dyn Transport>,
                )
            })
            .collect();
        let client =
            RemoteBroker::with_parts(Box::new(ClusterTransport::new(fronts, &obs)), obs, chaos);
        (registry, client)
    }

    fn node_at(registry: &Registry, id: u32) -> Arc<BrokerNode> {
        registry.lock()[id as usize].clone().expect("node offline")
    }

    fn value(i: u8) -> Vec<(Bytes, f64)> {
        vec![(Bytes::from(vec![i]), f64::from(i))]
    }

    #[test]
    fn leader_replicates_before_acking() {
        let (registry, client) = cluster();
        client.create_topic("t", 1).expect("create");
        client.append("t", 0, value(1)).expect("append");
        // All three replicas hold the record — replication happened
        // before the ack, not after.
        for id in 0..3u32 {
            let node = node_at(&registry, id);
            assert_eq!(
                node.local().end_offset("t", 0).expect("end"),
                1,
                "node {id} missing the committed record"
            );
        }
    }

    #[test]
    fn quorum_failure_leaves_leader_log_untouched() {
        let (registry, client) = cluster();
        client.create_topic("t", 1).expect("create");
        // Kill both followers: quorum (2) is unreachable.
        registry.lock()[1] = None;
        registry.lock()[2] = None;
        match client.append("t", 0, value(1)) {
            Err(BrokerError::NotEnoughReplicas { isr, min_isr, .. }) => {
                assert_eq!((isr, min_isr), (1, 2));
            }
            other => panic!("expected NotEnoughReplicas, got {other:?}"),
        }
        // Nothing landed locally: a failed acks=all append is all-or-
        // nothing on the leader.
        assert_eq!(
            node_at(&registry, 0)
                .local()
                .end_offset("t", 0)
                .expect("end"),
            0
        );
    }

    #[test]
    fn failover_promotes_a_caught_up_replica_with_zero_loss() {
        let (registry, client) = cluster();
        client.create_topic("t", 1).expect("create");
        for i in 0..5u8 {
            client
                .append_dedup("t", 0, 7, u64::from(i), value(i))
                .expect("append before failover");
        }
        // SIGKILL the leader.
        registry.lock()[0] = None;
        // The next append elects a new leader and lands there.
        for i in 5..10u8 {
            client
                .append_dedup("t", 0, 7, u64::from(i), value(i))
                .expect("append after failover");
        }
        let records =
            BrokerApi::read(client.as_ref(), "t", 0, 0, 100, usize::MAX).expect("read back");
        let ids: Vec<u8> = records.iter().map(|r| r.value[0]).collect();
        assert_eq!(
            ids,
            (0..10u8).collect::<Vec<_>>(),
            "loss or duplication across failover"
        );
        // Exactly one survivor claims leadership, at a bumped epoch.
        let statuses: Vec<NodeStatus> = (1..3).map(|id| node_at(&registry, id).status()).collect();
        assert_eq!(statuses.iter().filter(|s| s.is_leader).count(), 1);
        assert!(statuses.iter().all(|s| s.epoch >= 1));
    }

    #[test]
    fn retried_batch_dedups_across_failover() {
        let (registry, client) = cluster();
        client.create_topic("t", 1).expect("create");
        client.append_dedup("t", 0, 9, 0, value(1)).expect("first");
        // Leader dies; the producer (never having seen the ack, say)
        // retries the same (producer_id, seq) batch against the new
        // leader — which already holds it via replication.
        registry.lock()[0] = None;
        client.append_dedup("t", 0, 9, 0, value(1)).expect("retry");
        let records =
            BrokerApi::read(client.as_ref(), "t", 0, 0, 100, usize::MAX).expect("read back");
        assert_eq!(records.len(), 1, "dedup window lost across failover");
    }

    #[test]
    fn stale_leader_is_fenced_and_demotes() {
        let (registry, client) = cluster();
        client.create_topic("t", 1).expect("create");
        client.append("t", 0, value(1)).expect("seed");
        let old_leader = node_at(&registry, 0);
        // Fail over while the old leader is merely unreachable, not dead.
        registry.lock()[0] = None;
        client
            .append("t", 0, value(2))
            .expect("append via new leader");
        // The old leader comes back, still believing it leads at epoch 0.
        registry.lock()[0] = Some(old_leader.clone());
        assert!(old_leader.status().is_leader);
        let req = serde_json::to_vec(&BrokerRequest::Append {
            topic: "t".into(),
            partition: 0,
            values: vec![WireValue {
                value: vec![9],
                produce_time_ms: 0.0,
            }],
        })
        .expect("encode");
        let reply = old_leader.client(&req);
        match reply {
            BrokerReply::Err(BrokerError::FencedLeaderEpoch { current, .. }) => {
                assert!(current >= 1);
            }
            other => panic!("expected fencing, got {other:?}"),
        }
        // Fencing demoted it; its zombie write never landed anywhere.
        assert!(!old_leader.status().is_leader);
        let records =
            BrokerApi::read(client.as_ref(), "t", 0, 0, 100, usize::MAX).expect("read back");
        assert_eq!(records.len(), 2);
    }

    #[test]
    fn rejoining_follower_is_backfilled_on_next_append() {
        let (registry, client) = cluster();
        client.create_topic("t", 1).expect("create");
        client.append("t", 0, value(0)).expect("seed");
        // Follower 2 misses a batch...
        let away = node_at(&registry, 2);
        registry.lock()[2] = None;
        client.append("t", 0, value(1)).expect("append while away");
        assert_eq!(away.local().end_offset("t", 0).expect("end"), 1);
        // ...rejoins, and the next replicated append backfills the gap.
        registry.lock()[2] = Some(away.clone());
        client
            .append("t", 0, value(2))
            .expect("append after rejoin");
        assert_eq!(away.local().end_offset("t", 0).expect("end"), 3);
        let caught_up = away
            .local()
            .read("t", 0, 0, 100, usize::MAX)
            .expect("follower read");
        let ids: Vec<u8> = caught_up.iter().map(|r| r.value[0]).collect();
        assert_eq!(ids, vec![0, 1, 2], "backfill out of order");
    }

    #[test]
    fn status_reports_caught_up_ness() {
        let (registry, client) = cluster();
        client.create_topic("t", 2).expect("create");
        client.append("t", 0, value(1)).expect("a");
        client.append("t", 1, value(2)).expect("b");
        let status = node_at(&registry, 0).status();
        assert_eq!(status.log_end_total, 2);
        assert!(status.is_leader);
        assert_eq!(status.id, 0);
    }
}
