//! Operand packing for the blocked GEMM.
//!
//! Packing rewrites a row-major operand into the strip layout the
//! microkernel consumes (see [`crate::kernels::microkernel`]): `A` becomes
//! `MR`-row strips stored K-major, `B` becomes `NR`-column strips stored
//! K-major, both zero-padded to full strip width at the edges. The payoff
//! is that every inner-loop access is unit-stride and every edge case is
//! absorbed at pack time, once — not per FLOP.
//!
//! These functions write into caller-provided buffers and never allocate:
//! scratch comes from [`crate::packed::GemmScratch`] (reused across calls)
//! or from weights packed once at executor plan-compile time
//! ([`crate::packed::PackedA`] / [`crate::packed::PackedB`]).

use crate::kernels::microkernel::{MR, NR};

/// Number of `MR`-row strips covering `m` rows.
#[inline]
pub fn a_strips(m: usize) -> usize {
    m.div_ceil(MR)
}

/// Number of `NR`-column strips covering `n` columns.
#[inline]
pub fn b_strips(n: usize) -> usize {
    n.div_ceil(NR)
}

/// Length of the packed form of an `m×k` row-major `A`.
#[inline]
pub fn packed_a_len(m: usize, k: usize) -> usize {
    a_strips(m) * k * MR
}

/// Length of the packed form of a `k×n` row-major `B`.
#[inline]
pub fn packed_b_len(k: usize, n: usize) -> usize {
    b_strips(n) * k * NR
}

/// Pack row-major `a` (`m×k`) into `out` as `MR`-row strips, K-major:
/// strip `s` occupies `out[s * k * MR ..][.. k * MR]` and element
/// `(s * MR + r, p)` of `A` lands at offset `p * MR + r` inside it. Rows
/// past `m` are zero.
pub fn pack_a_into(a: &[f32], m: usize, k: usize, out: &mut [f32]) {
    assert_eq!(a.len(), m * k, "pack_a: A length");
    assert_eq!(out.len(), packed_a_len(m, k), "pack_a: out length");
    for s in 0..a_strips(m) {
        let strip = &mut out[s * k * MR..(s + 1) * k * MR];
        let rows = MR.min(m - s * MR);
        for r in 0..MR {
            if r < rows {
                let row = &a[(s * MR + r) * k..(s * MR + r + 1) * k];
                for (p, &v) in row.iter().enumerate() {
                    strip[p * MR + r] = v;
                }
            } else {
                for p in 0..k {
                    strip[p * MR + r] = 0.0;
                }
            }
        }
    }
}

/// Pack row-major `b` (`k×n`) into `out` as `NR`-column strips, K-major:
/// strip `s` occupies `out[s * k * NR ..][.. k * NR]` and element
/// `(p, s * NR + c)` of `B` lands at offset `p * NR + c` inside it.
/// Columns past `n` are zero.
pub fn pack_b_into(b: &[f32], k: usize, n: usize, out: &mut [f32]) {
    assert_eq!(b.len(), k * n, "pack_b: B length");
    assert_eq!(out.len(), packed_b_len(k, n), "pack_b: out length");
    // Row-outer order streams `B` through the cache exactly once; the
    // writes fan out to `b_strips(n)` destinations at stride `k * NR`,
    // which the store buffers absorb. Strip-outer order would re-read all
    // of `B` once per strip.
    let strips = b_strips(n);
    for p in 0..k {
        let row = &b[p * n..(p + 1) * n];
        for s in 0..strips {
            let cols = NR.min(n - s * NR);
            let dst = &mut out[s * k * NR + p * NR..s * k * NR + (p + 1) * NR];
            dst[..cols].copy_from_slice(&row[s * NR..s * NR + cols]);
            dst[cols..].fill(0.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_a_interleaves_rows_and_pads() {
        // m = MR + 1 (two strips, second nearly empty), k = 3.
        let m = MR + 1;
        let k = 3;
        let a: Vec<f32> = (0..m * k).map(|v| v as f32).collect();
        let mut out = vec![f32::NAN; packed_a_len(m, k)];
        pack_a_into(&a, m, k, &mut out);
        // Strip 0, p = 1 holds column 1 of rows 0..MR.
        for r in 0..MR {
            assert_eq!(out[MR + r], a[r * k + 1]);
        }
        // Strip 1 holds row MR in lane 0 and zeros elsewhere.
        let strip1 = &out[k * MR..];
        for p in 0..k {
            assert_eq!(strip1[p * MR], a[MR * k + p]);
            for r in 1..MR {
                assert_eq!(strip1[p * MR + r], 0.0);
            }
        }
    }

    #[test]
    fn pack_b_copies_column_strips_and_pads() {
        // n = NR + 2, k = 2.
        let n = NR + 2;
        let k = 2;
        let b: Vec<f32> = (0..k * n).map(|v| v as f32).collect();
        let mut out = vec![f32::NAN; packed_b_len(k, n)];
        pack_b_into(&b, k, n, &mut out);
        // Strip 0, row p is b[p*n .. p*n+NR].
        for p in 0..k {
            assert_eq!(&out[p * NR..(p + 1) * NR], &b[p * n..p * n + NR]);
        }
        // Strip 1, row p starts with the 2 leftover columns then zeros.
        let strip1 = &out[k * NR..];
        for p in 0..k {
            assert_eq!(strip1[p * NR], b[p * n + NR]);
            assert_eq!(strip1[p * NR + 1], b[p * n + NR + 1]);
            for c in 2..NR {
                assert_eq!(strip1[p * NR + c], 0.0);
            }
        }
    }
}
