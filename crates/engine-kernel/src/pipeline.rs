//! The full-chain pipeline worker: the whole record lifecycle in one
//! supervised, commit-owning loop.
//!
//! This is what the paper's §3.2 data processor looks like when the input,
//! scoring, and output operators share one thread: poll a fetch from the
//! assigned partitions, charge the engine's per-record framework cost,
//! funnel every record through decode → score → encode, emit the results,
//! then commit the offsets — with the obs spans, chaos checkpoints, and
//! restart semantics built in once. Kafka Streams' stream threads and
//! Flink's chained subtasks are both exactly this loop; their remaining
//! differences fit in [`PipelineSettings`].

use std::time::Duration;

use crayfish_broker::{Broker, PartitionConsumer, Producer, ProducerConfig};
use crayfish_core::chaos::WorkerExit;
use crayfish_core::obs::Counter;
use crayfish_core::{ObsHandle, ProcessorContext, Result};
use crayfish_sim::Cost;

use crate::score::{charge_ingest, ProducerSink, ScoreStage};
use crate::worker::{Ctl, Rebuild, WorkerSet};

/// What still differs between full-chain engines.
#[derive(Debug, Clone, Copy)]
pub struct PipelineSettings {
    /// Cap on records per fetch (`max.poll.records`); `None` keeps the
    /// consumer default.
    pub max_poll_records: Option<usize>,
    /// Poll timeout per cycle.
    pub poll_timeout: Duration,
    /// Calibrated per-record framework cost, charged inside the `ingest`
    /// span.
    pub ingest_cost: Cost,
    /// Flush the producer before committing (Kafka Streams finishes the
    /// whole cycle — sink flush included — before requesting new input;
    /// Flink's chained subtask commits without a sink flush).
    pub flush_before_commit: bool,
}

impl Default for PipelineSettings {
    fn default() -> Self {
        PipelineSettings {
            max_poll_records: None,
            poll_timeout: Duration::from_millis(50),
            ingest_cost: Cost::ZERO,
            flush_before_commit: false,
        }
    }
}

/// One worker's resources: rebuilt per incarnation, so restarts resume
/// from the committed offsets with a fresh producer and scorer.
pub struct PipelineWorker {
    consumer: PartitionConsumer,
    score: ScoreStage,
    sink: ProducerSink,
}

impl PipelineWorker {
    /// Run the consume → score → commit cycle until stop, crash, or a
    /// terminal fabric error.
    pub fn run(
        &mut self,
        ctl: &Ctl,
        settings: &PipelineSettings,
        obs: &ObsHandle,
        commits: &Counter,
    ) -> WorkerExit {
        loop {
            if let Some(exit) = ctl.checkpoint() {
                return exit;
            }
            let records = match self.consumer.poll(settings.poll_timeout) {
                Ok(r) => r,
                Err(e) if e.is_transient() => return WorkerExit::Failed(format!("poll: {e}")),
                Err(_) => return WorkerExit::Stopped,
            };
            if records.is_empty() {
                continue;
            }
            for rec in records {
                charge_ingest(obs, settings.ingest_cost, rec.value.len());
                match self.score.score(&rec.value) {
                    Ok(Some(out)) => {
                        if self.sink.emit(out).is_err() {
                            return WorkerExit::Stopped;
                        }
                    }
                    // Terminal score failure: counted and skipped.
                    Ok(None) => {}
                    // Transient score failure: exit *before* the commit so
                    // the restarted incarnation refetches this batch.
                    Err(exit) => return exit,
                }
            }
            if settings.flush_before_commit {
                self.sink.flush();
            }
            self.consumer.commit();
            commits.inc();
        }
    }
}

/// Register `ctx.mp` supervised pipeline workers, one per slice of the
/// input topic's partitions.
pub fn pipeline_workers(
    set: &mut WorkerSet,
    ctx: &ProcessorContext,
    name_prefix: &str,
    settings: PipelineSettings,
) -> Result<()> {
    let partitions = ctx.broker.partitions(&ctx.input_topic)?;
    let assignment = Broker::range_assignment(partitions, ctx.mp);
    for (i, assigned) in assignment.into_iter().enumerate() {
        let broker = ctx.broker.clone();
        let input = ctx.input_topic.clone();
        let output = ctx.output_topic.clone();
        let group = ctx.group.clone();
        let spec = ctx.scorer.clone();
        let obs = ctx.obs().clone();
        let resources = Rebuild::eager(move || {
            let mut consumer =
                PartitionConsumer::new(broker.clone(), &input, &group, assigned.clone())?;
            if let Some(n) = settings.max_poll_records {
                consumer.max_poll_records = n;
            }
            let producer = Producer::new(broker.clone(), &output, ProducerConfig::default())?;
            let scorer = spec.build()?;
            Ok(PipelineWorker {
                consumer,
                score: ScoreStage::replay(scorer, &obs),
                sink: ProducerSink::new(producer, &obs),
            })
        })?;
        let obs = ctx.obs().clone();
        let commits = obs.counter("engine_commits");
        set.supervised(
            ctx,
            format!("{name_prefix}-{i}"),
            resources,
            move |worker, ctl| worker.run(ctl, &settings, &obs, &commits),
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    use bytes::Bytes;
    use crayfish_core::batch::testkit::onnx_ctx;
    use crayfish_core::batch::ScoredBatch;
    use crayfish_core::chaos::testkit::poll_until;
    use crayfish_core::scoring::ScorerSpec;
    use crayfish_sim::NetworkModel;

    fn make_ctx(mp: usize) -> ProcessorContext {
        onnx_ctx(Broker::new(NetworkModel::zero()), 4, mp)
    }

    fn feed(broker: &dyn crayfish_broker::BrokerApi, n: u64) {
        crayfish_core::batch::testkit::feed(broker, "in", 4, n);
    }

    #[test]
    fn pipeline_scores_everything_and_drains_lag() {
        let ctx = make_ctx(2);
        let broker = ctx.broker.clone();
        let mut set = WorkerSet::new();
        pipeline_workers(&mut set, &ctx, "pipe", PipelineSettings::default()).unwrap();
        let job = set.into_job();
        feed(broker.as_ref(), 30);
        assert!(poll_until(Duration::from_secs(10), || {
            broker.total_records("out").unwrap() >= 30
        }));
        let mut ids = Vec::new();
        for p in 0..4u32 {
            for r in broker.read("out", p, 0, 10_000, usize::MAX).unwrap() {
                ids.push(ScoredBatch::decode(&r.value).unwrap().id);
            }
        }
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 30);
        assert!(poll_until(Duration::from_secs(5), || {
            broker.group_lag("sut", "in").unwrap() == 0
        }));
        job.stop();
    }

    #[test]
    fn malformed_records_are_skipped_and_counted() {
        let broker = Broker::with_parts(
            NetworkModel::zero(),
            ObsHandle::enabled(),
            crayfish_core::chaos::ChaosHandle::disabled(),
        );
        broker.create_topic("in", 4).unwrap();
        broker.create_topic("out", 4).unwrap();
        let ctx = ProcessorContext {
            broker: broker.clone(),
            ..make_ctx(1)
        };
        let obs = ctx.obs().clone();
        let mut set = WorkerSet::new();
        pipeline_workers(&mut set, &ctx, "pipe", PipelineSettings::default()).unwrap();
        let job = set.into_job();
        broker
            .append("in", 0, vec![(Bytes::from_static(b"not json"), 0.0)])
            .unwrap();
        feed(broker.as_ref(), 3);
        assert!(poll_until(Duration::from_secs(10), || {
            broker.total_records("out").unwrap() >= 3
        }));
        job.stop();
        assert_eq!(obs.counter("score_errors").get(), 1);
        assert_eq!(obs.counter("batches_scored").get(), 3);
    }

    #[test]
    fn startup_errors_surface_eagerly() {
        let mut ctx = make_ctx(1);
        ctx.scorer = ScorerSpec::External {
            kind: crayfish_serving::ExternalKind::TfServing,
            addr: "127.0.0.1:1".parse().unwrap(),
            network: NetworkModel::zero(),
        };
        let mut set = WorkerSet::new();
        let r = pipeline_workers(&mut set, &ctx, "pipe", PipelineSettings::default());
        assert!(r.is_err(), "bad scorer address must fail deploy");
        set.into_job().stop();
    }
}
