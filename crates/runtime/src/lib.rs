//! # crayfish-runtime
//!
//! The *embedded serving* layer of the Crayfish reproduction: the
//! interoperability libraries a JVM stream processor would use to score a
//! pre-trained model inside an operator (§3.4.2 of the paper), plus the
//! execution machinery they share.
//!
//! Three runtimes are provided, analogs of the paper's three libraries.
//! They differ by *mechanism*, exactly as the real libraries do:
//!
//! | Runtime | Analog of | Execution strategy |
//! |---|---|---|
//! | [`runtimes::OnnxRuntime`] | ONNX Runtime | graph-optimised: Conv+BN folding, ReLU fusion, arena buffer reuse |
//! | [`runtimes::SavedModelRuntime`] | TF SavedModel | direct graph walk, per-node buffers reused across calls, no fusion |
//! | [`runtimes::Dl4jRuntime`] | DeepLearning4j | direct graph walk behind a simulated JNI boundary: real `f32→f64→f32` marshalling copies per op plus a calibrated per-call cost |
//!
//! Every runtime implements the paper's two-method serving interface —
//! [`EmbeddedRuntime::load_graph`] and [`LoadedModel::apply`] — and can target
//! either the CPU or the simulated GPU ([`device::Device`]).

#![forbid(unsafe_code)]

pub mod device;
pub mod error;
pub mod exec;
pub mod precision;
pub mod runtimes;

pub use device::{Device, GpuSpec};
pub use error::RuntimeError;
pub use precision::{LayerReport, Precision, PrecisionReport, QuantConfig};
pub use runtimes::{
    embedded_by_name, Dl4jRuntime, EmbeddedLib, EmbeddedRuntime, LoadedModel, OnnxRuntime,
    SavedModelRuntime, TorchRuntime,
};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, RuntimeError>;
