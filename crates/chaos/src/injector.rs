//! The fault injector: a scheduler thread that walks a [`FaultPlan`] in
//! real time, flipping the [`ChaosHandle`] fault switches at each window
//! boundary and firing registered actions for active faults (crashing and
//! restoring an external serving server).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use crate::handle::ChaosHandle;
use crate::plan::{FaultKind, FaultPlan};

/// Callbacks for faults that need to act on objects the chaos crate cannot
/// know about (an external serving server lives in `crayfish-serving`,
/// which depends on this crate, not the other way around).
#[derive(Default)]
pub struct ChaosActions {
    /// Called at the start of every `ServingCrash` window.
    pub on_serving_crash: Option<Box<dyn FnMut() + Send>>,
    /// Called at the end of every `ServingCrash` window.
    pub on_serving_restore: Option<Box<dyn FnMut() + Send>>,
}

/// Tunables for how each fault kind manifests.
#[derive(Debug, Clone)]
pub struct InjectorConfig {
    /// Topic put into outage during `PartitionOutage` windows.
    pub target_topic: String,
    /// Extra serving-call latency during `NetworkDegrade` windows.
    pub degrade_delay: Duration,
    /// Reset every Nth serving connection during degradation (0 = never).
    pub reset_every: u32,
    /// Lose every Nth append ack during degradation (0 = never).
    pub ack_loss_every: u32,
    /// Worker-crash tokens armed at each `WorkerCrash` window start.
    pub crashes_per_window: u32,
    /// Broker node killed during `LeaderKill` windows. Node 0 leads the
    /// first partition of every topic under the default replica layout, so
    /// killing it always forces at least one election on a replicated
    /// cluster (and a full outage on a single-node one).
    pub kill_broker: u32,
    /// Broker node isolated during `PartitionIsolate` windows. Defaults to
    /// node 2, a follower for most partitions of a replication-factor-3
    /// layout (a no-op on clusters too small to have it).
    pub isolate_broker: u32,
}

impl Default for InjectorConfig {
    fn default() -> Self {
        InjectorConfig {
            target_topic: "in".to_string(),
            degrade_delay: Duration::from_millis(2),
            reset_every: 4,
            ack_loss_every: 3,
            crashes_per_window: 1,
            kill_broker: 0,
            isolate_broker: 2,
        }
    }
}

enum EventAction {
    Start(usize),
    End(usize),
}

/// Drives a [`FaultPlan`] against a [`ChaosHandle`] in real time.
///
/// Dropping (or [`stop`](Self::stop)-ping) the injector clears every fault
/// switch and closes the fault windows of any still-active incidents, so a
/// run can always shut down cleanly mid-plan.
pub struct FaultInjector {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
    handle: ChaosHandle,
}

impl FaultInjector {
    /// Start executing `plan` now. Fault offsets are relative to this call.
    pub fn start(
        plan: &FaultPlan,
        handle: ChaosHandle,
        config: InjectorConfig,
        mut actions: ChaosActions,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let h = handle.clone();
        let windows = plan.windows.clone();

        let thread = thread::Builder::new()
            .name("chaos-injector".to_string())
            .spawn(move || {
                // Interleave start/end events in time order. WorkerCrash is
                // a point event: its end coincides with its start.
                let mut events: Vec<(Duration, EventAction)> = Vec::new();
                for (i, w) in windows.iter().enumerate() {
                    events.push((w.start, EventAction::Start(i)));
                    let end = if w.kind == FaultKind::WorkerCrash {
                        w.start
                    } else {
                        w.end()
                    };
                    events.push((end, EventAction::End(i)));
                }
                events.sort_by_key(|(t, e)| (*t, matches!(e, EventAction::End(_))));

                let mut incident_ids: Vec<Option<usize>> = vec![None; windows.len()];
                let t0 = crayfish_sim::now();
                for (at, action) in events {
                    // Sleep in short slices so stop() stays responsive.
                    loop {
                        if stop2.load(Ordering::Relaxed) {
                            break;
                        }
                        let elapsed = t0.elapsed();
                        if elapsed >= at {
                            break;
                        }
                        thread::sleep((at - elapsed).min(Duration::from_millis(10)));
                    }
                    if stop2.load(Ordering::Relaxed) {
                        break;
                    }
                    match action {
                        EventAction::Start(i) => {
                            let w = &windows[i];
                            incident_ids[i] = h.open_incident(w.kind);
                            match w.kind {
                                FaultKind::PartitionOutage => {
                                    h.set_topic_outage(&config.target_topic, true)
                                }
                                FaultKind::ServingCrash => {
                                    if let Some(f) = actions.on_serving_crash.as_mut() {
                                        f();
                                    }
                                }
                                FaultKind::NetworkDegrade => h.set_net_degrade(
                                    config.degrade_delay,
                                    config.reset_every,
                                    config.ack_loss_every,
                                ),
                                FaultKind::ConsumerStall => h.set_consumer_stall(true),
                                FaultKind::WorkerCrash => {
                                    h.inject_worker_crashes(config.crashes_per_window)
                                }
                                FaultKind::LeaderKill => {
                                    h.set_broker_dead(config.kill_broker, true)
                                }
                                FaultKind::PartitionIsolate => {
                                    h.set_broker_isolated(config.isolate_broker, true)
                                }
                            }
                        }
                        EventAction::End(i) => {
                            let w = &windows[i];
                            match w.kind {
                                FaultKind::PartitionOutage => {
                                    h.set_topic_outage(&config.target_topic, false)
                                }
                                FaultKind::ServingCrash => {
                                    if let Some(f) = actions.on_serving_restore.as_mut() {
                                        f();
                                    }
                                }
                                FaultKind::NetworkDegrade => h.clear_net_degrade(),
                                FaultKind::ConsumerStall => h.set_consumer_stall(false),
                                FaultKind::WorkerCrash => {}
                                FaultKind::LeaderKill => {
                                    h.set_broker_dead(config.kill_broker, false)
                                }
                                FaultKind::PartitionIsolate => {
                                    h.set_broker_isolated(config.isolate_broker, false)
                                }
                            }
                            h.end_fault(incident_ids[i]);
                        }
                    }
                }
                // Shutdown (or plan exhausted): clear every switch and close
                // any windows cut short so the report has complete incidents.
                h.set_topic_outage(&config.target_topic, false);
                h.clear_net_degrade();
                h.set_consumer_stall(false);
                h.set_broker_dead(config.kill_broker, false);
                h.set_broker_isolated(config.isolate_broker, false);
                if stop2.load(Ordering::Relaxed) {
                    if let Some(f) = actions.on_serving_restore.as_mut() {
                        f();
                    }
                }
                for id in incident_ids {
                    h.end_fault(id);
                }
            })
            .expect("spawn chaos injector");

        FaultInjector {
            stop,
            thread: Some(thread),
            handle,
        }
    }

    /// The handle this injector drives.
    pub fn handle(&self) -> &ChaosHandle {
        &self.handle
    }

    /// Stop the schedule, clear all fault switches, and wait for the
    /// scheduler thread. Idempotent; also runs on drop.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for FaultInjector {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::poll_until;

    #[test]
    fn executes_windows_on_schedule() {
        let h = ChaosHandle::enabled();
        let plan = FaultPlan::single(
            FaultKind::PartitionOutage,
            Duration::from_millis(20),
            Duration::from_millis(60),
        );
        let mut inj = FaultInjector::start(
            &plan,
            h.clone(),
            InjectorConfig {
                target_topic: "in".into(),
                ..Default::default()
            },
            ChaosActions::default(),
        );
        assert!(!h.topic_unavailable("in"));
        assert!(poll_until(Duration::from_secs(2), || h.topic_unavailable("in")));
        assert!(poll_until(Duration::from_secs(2), || !h.topic_unavailable("in")));
        inj.stop();
        let report = h.report();
        assert_eq!(report.incidents.len(), 1);
        assert!(report.incidents[0].end_ms.is_some());
    }

    #[test]
    fn serving_actions_fire() {
        use std::sync::atomic::AtomicU32;
        let h = ChaosHandle::enabled();
        let crashes = Arc::new(AtomicU32::new(0));
        let restores = Arc::new(AtomicU32::new(0));
        let (c2, r2) = (crashes.clone(), restores.clone());
        let plan = FaultPlan::single(
            FaultKind::ServingCrash,
            Duration::from_millis(10),
            Duration::from_millis(30),
        );
        let mut inj = FaultInjector::start(
            &plan,
            h.clone(),
            InjectorConfig::default(),
            ChaosActions {
                on_serving_crash: Some(Box::new(move || {
                    c2.fetch_add(1, Ordering::Relaxed);
                })),
                on_serving_restore: Some(Box::new(move || {
                    r2.fetch_add(1, Ordering::Relaxed);
                })),
            },
        );
        assert!(poll_until(Duration::from_secs(2), || {
            restores.load(Ordering::Relaxed) >= 1
        }));
        inj.stop();
        assert_eq!(crashes.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn stop_mid_window_clears_switches() {
        let h = ChaosHandle::enabled();
        let plan = FaultPlan::single(
            FaultKind::ConsumerStall,
            Duration::from_millis(5),
            Duration::from_secs(30),
        );
        let mut inj = FaultInjector::start(
            &plan,
            h.clone(),
            InjectorConfig::default(),
            ChaosActions::default(),
        );
        assert!(poll_until(Duration::from_secs(2), || h.consumer_stalled()));
        inj.stop();
        assert!(!h.consumer_stalled());
        // The cut-short incident still has a closed window.
        assert!(h.report().incidents[0].end_ms.is_some());
    }
}
