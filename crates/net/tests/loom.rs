//! Loom models for the reactor's injector/wakeup handoff.
//!
//! The reactor sleeps on a [`Waker`] between poll passes; producers (the
//! accept thread injecting fresh connections, handler workers queueing
//! completions, the teardown path raising the stop flag) make state
//! visible and then notify. The bug class these models target is the lost
//! wakeup: a notify landing in the window between the consumer checking
//! for work and going to sleep. Under loom the waker's timeout never
//! fires (`crayfish-sync` condvars have no time), so any interleaving in
//! which a wakeup is lost shows up as a model deadlock instead of being
//! papered over by the 100µs poll interval.
//!
//! Run with: `RUSTFLAGS="--cfg loom" cargo test -p crayfish-net --test loom --release`

#![cfg(loom)]

use std::time::Duration;

use crayfish_net::Waker;
use crayfish_sync::atomic::{AtomicBool, Ordering};
use crayfish_sync::{model, thread, Arc, Mutex};

/// A pending wait (loom never times out, so the duration is inert; the
/// non-loom build would cap the sleep here).
const PARK: Duration = Duration::from_secs(1);

#[test]
fn injector_push_is_never_lost_to_a_sleeping_reactor() {
    model(|| {
        let waker = Arc::new(Waker::new());
        let injector: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));

        let w = Arc::clone(&waker);
        let inj = Arc::clone(&injector);
        let producer = thread::spawn(move || {
            inj.lock().push(7);
            w.notify();
        });

        // The reactor's idle loop: drain, and only sleep when a pass found
        // nothing. A waker that lets the notify slip between the empty
        // check and the sleep deadlocks here.
        loop {
            let drained: Vec<u32> = std::mem::take(&mut *injector.lock());
            if !drained.is_empty() {
                assert_eq!(drained, vec![7]);
                break;
            }
            waker.wait_timeout(PARK);
        }
        producer.join().expect("producer panicked");
    });
}

#[test]
fn shutdown_notify_always_unblocks_the_reactor() {
    model(|| {
        let waker = Arc::new(Waker::new());
        let stop = Arc::new(AtomicBool::new(false));

        let w = Arc::clone(&waker);
        let s = Arc::clone(&stop);
        let teardown = thread::spawn(move || {
            s.store(true, Ordering::SeqCst);
            w.notify();
        });

        while !stop.load(Ordering::SeqCst) {
            waker.wait_timeout(PARK);
        }
        teardown.join().expect("teardown panicked");
    });
}

#[test]
fn concurrent_register_and_shutdown_neither_hangs_nor_drops_work() {
    model(|| {
        let waker = Arc::new(Waker::new());
        let injector: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
        let stop = Arc::new(AtomicBool::new(false));

        let w = Arc::clone(&waker);
        let inj = Arc::clone(&injector);
        let register = thread::spawn(move || {
            inj.lock().push(42);
            w.notify();
        });

        let w = Arc::clone(&waker);
        let s = Arc::clone(&stop);
        let shutdown = thread::spawn(move || {
            s.store(true, Ordering::SeqCst);
            w.notify();
        });

        let mut got = Vec::new();
        loop {
            got.append(&mut *injector.lock());
            if stop.load(Ordering::SeqCst) {
                break;
            }
            waker.wait_timeout(PARK);
        }
        register.join().expect("register panicked");
        shutdown.join().expect("shutdown panicked");
        // Whatever was registered before or during shutdown is still in
        // the injector (or already drained) — never silently gone.
        got.append(&mut *injector.lock());
        assert_eq!(got, vec![42]);
    });
}
