//! Robustness of the wire protocols: arbitrary bytes never panic the
//! decoders, and live servers survive malformed traffic.

use std::io::{BufReader, Write};
use std::net::TcpStream;

use proptest::prelude::*;

use crayfish_models::tiny;
use crayfish_serving::protocol::{
    decode_tensor_binary, encode_tensor_binary, read_frame, read_http_message, write_frame,
};
use crayfish_serving::{GrpcClient, ScoringClient, ServingConfig};
use crayfish_sim::NetworkModel;
use crayfish_tensor::Tensor;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn binary_decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Any outcome is fine; panicking is not.
        let _ = decode_tensor_binary(&bytes);
    }

    #[test]
    fn frame_reader_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let mut cursor = std::io::Cursor::new(bytes);
        while let Ok(Some(_)) = read_frame(&mut cursor) {}
    }

    #[test]
    fn http_reader_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut reader = BufReader::new(std::io::Cursor::new(bytes));
        let _ = read_http_message(&mut reader);
    }

    #[test]
    fn tensor_encoding_is_injective_on_shape(
        dims_a in proptest::collection::vec(1usize..4, 1..3),
        dims_b in proptest::collection::vec(1usize..4, 1..3),
    ) {
        let a = Tensor::zeros(dims_a.clone());
        let b = Tensor::zeros(dims_b.clone());
        let same = dims_a == dims_b;
        prop_assert_eq!(encode_tensor_binary(&a) == encode_tensor_binary(&b), same);
    }
}

#[test]
fn server_survives_garbage_frames() {
    let server =
        crayfish_serving::tf_serving::start(&tiny::tiny_mlp(1), ServingConfig::default()).unwrap();
    // A raw connection sends a framed garbage payload...
    {
        let mut raw = TcpStream::connect(server.addr()).unwrap();
        write_frame(&mut raw, b"this is not a tensor").unwrap();
        let mut reader = BufReader::new(raw.try_clone().unwrap());
        // ...and gets an error payload back rather than a hang or close.
        let reply = read_frame(&mut reader).unwrap().expect("reply frame");
        assert!(decode_tensor_binary(&reply).is_err());
    }
    // The server still serves well-formed clients afterwards.
    let mut client = GrpcClient::connect(server.addr(), NetworkModel::zero()).unwrap();
    let out = client
        .infer(&Tensor::seeded_uniform([1, 8, 8], 1, 0.0, 1.0))
        .unwrap();
    assert_eq!(out.shape().dims(), &[1, 4]);
    server.shutdown();
}

#[test]
fn server_survives_abrupt_disconnects() {
    let server =
        crayfish_serving::tf_serving::start(&tiny::tiny_mlp(1), ServingConfig::default()).unwrap();
    for _ in 0..5 {
        // Connect, write half a frame, slam the connection shut.
        let mut raw = TcpStream::connect(server.addr()).unwrap();
        raw.write_all(&[200, 0, 0, 0]).unwrap(); // length prefix, no payload
        drop(raw);
    }
    let mut client = GrpcClient::connect(server.addr(), NetworkModel::zero()).unwrap();
    assert!(client
        .infer(&Tensor::seeded_uniform([2, 8, 8], 1, 0.0, 1.0))
        .is_ok());
    server.shutdown();
}

#[test]
fn http_server_survives_bad_requests() {
    let server =
        crayfish_serving::ray_serve::start(&tiny::tiny_mlp(1), ServingConfig::default()).unwrap();
    {
        let mut raw = TcpStream::connect(server.addr()).unwrap();
        raw.write_all(b"GET / HTTP/1.1\r\nContent-Length: 7\r\n\r\nnotjson")
            .unwrap();
        let mut reader = BufReader::new(raw.try_clone().unwrap());
        let reply = read_http_message(&mut reader).unwrap().expect("reply");
        assert!(!reply.is_ok_response());
    }
    let mut client =
        crayfish_serving::HttpClient::connect(server.addr(), NetworkModel::zero()).unwrap();
    assert!(client
        .infer(&Tensor::seeded_uniform([1, 8, 8], 1, 0.0, 1.0))
        .is_ok());
    server.shutdown();
}
