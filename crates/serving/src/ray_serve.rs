//! Ray Serve analog.
//!
//! HTTP/1.1 ingress with JSON bodies, fronted by a **single proxy task per
//! node** — the design the paper identifies as Ray Serve's vertical-scaling
//! ceiling (§5.3.3): "a single HTTP Proxy can be deployed per physical node
//! … it can potentially hinder the prospects of vertical scalability."
//!
//! Under the default [`IoModel::Reactor`] the reactor's poll thread *is*
//! the single proxy: it does all socket I/O **and** pays the HTTP-stack
//! cost and the JSON request parse for every request before admission —
//! one serialized task per node, exactly the ceiling the paper describes.
//! Replica workers drain the admission queue, each request paying the
//! per-call actor-dispatch cost of a Python deployment (no cross-request
//! stacking: actor method dispatch is per-request, so batching here bounds
//! queueing, not kernel launches). One approximation: response JSON
//! encoding happens on the replica rather than back on the proxy, keeping
//! the `Responder` completion path one-way; the modelled egress HTTP-stack
//! cost is still paid per response.
//!
//! Under [`IoModel::ThreadPerConnection`], connection threads only do
//! socket I/O; every request *and every response* passes through one
//! dedicated proxy thread, which parses/encodes the JSON bodies (real
//! work) and pays the calibrated HTTP-stack cost. Replicas execute in
//! parallel, each paying the per-call actor-dispatch cost.

use std::io::BufReader;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};

use crayfish_admission::{AdmissionError, AdmissionMetrics, BatchQueue, Dispatcher, Pending};
use crayfish_runtime::{EmbeddedRuntime, OnnxRuntime};
use crayfish_sim::Cost;
use crayfish_tensor::{NnGraph, Tensor};

use crayfish_net::{spawn_reactor_on, Responder, Wire};

use crate::protocol::{http_overloaded_bytes, read_http_message, write_http_response, JsonTensor};
use crate::server::{spawn_listener_on, IoModel, ModelPool, ServerHandle, ServingConfig};
use crate::Result;

enum ProxyMsg {
    /// A raw request body from a connection, to parse and dispatch.
    Request {
        body: Vec<u8>,
        reply: Sender<Vec<u8>>,
    },
    /// A replica's result, to encode and hand back to the connection.
    Response {
        result: std::result::Result<Tensor, String>,
        reply: Sender<Vec<u8>>,
    },
}

struct ReplicaJob {
    input: Tensor,
    reply: Sender<Vec<u8>>,
}

/// One admitted request on the reactor path: the parsed input plus its
/// completion token.
struct RayJob {
    input: Tensor,
    responder: Responder,
}

/// Start a Ray Serve analog for `graph` with `config.replicas` replicas.
pub fn start(graph: &NnGraph, config: ServingConfig) -> Result<ServerHandle> {
    start_at(graph, config, SocketAddr::from(([127, 0, 0, 1], 0)))
}

/// Start a Ray Serve analog on a fixed address (port 0 picks an ephemeral
/// one); used to restore a crashed server on the same endpoint.
pub fn start_at(graph: &NnGraph, config: ServingConfig, addr: SocketAddr) -> Result<ServerHandle> {
    let loader = OnnxRuntime::new();
    let graph = graph.clone();
    // Replicas share a model pool sized to the replica count.
    let pool = ModelPool::new(config.replicas, &config.obs, || {
        loader.load_graph(&graph, config.device)
    })?;
    match config.io {
        IoModel::Reactor => start_reactor(pool, config, addr),
        IoModel::ThreadPerConnection => start_thread_per_connection(pool, config, addr),
    }
}

/// The reactor path: the poll thread plays the single HTTP proxy (stack
/// cost + JSON parse serialized there), the admission queue bounds the
/// backlog, and replica workers score one request at a time.
fn start_reactor(pool: ModelPool, config: ServingConfig, addr: SocketAddr) -> Result<ServerHandle> {
    let http_cost = config.overheads.http_stack;
    let actor_cost = config.overheads.actor_dispatch;
    let queue: BatchQueue<RayJob> = BatchQueue::new(
        config.admission,
        config.replicas,
        AdmissionMetrics::new(&config.obs),
    );
    let dispatcher = Dispatcher::spawn("ray-serve", queue.clone(), config.replicas, |_i| {
        let pool = pool.clone();
        move |batch: &mut Vec<Pending<RayJob>>| {
            // A batch here only bounds queueing; each request is still its
            // own actor method dispatch.
            for p in batch.drain(..) {
                let job = p.payload;
                let result = score_one(&pool, &job.input, actor_cost);
                let bytes = match &result {
                    Ok(t) => response_bytes(Ok(t)),
                    Err(e) => response_bytes(Err(e)),
                };
                http_cost.spend(bytes.len());
                job.responder.send(bytes);
            }
        }
    })?;
    let mut handle = spawn_reactor_on("ray-serve", addr, Wire::Http, move |body, responder| {
        // Single-proxy serialization: ingress HTTP-stack traversal and the
        // JSON parse both happen on this one thread.
        http_cost.spend(body.len());
        match serde_json::from_slice::<JsonTensor>(body)
            .map_err(|e| e.to_string())
            .and_then(|jt| jt.into_tensor().map_err(|e| e.to_string()))
        {
            Ok(input) => {
                if let Err(rejected) = queue.push(RayJob { input, responder }) {
                    let responder = rejected.payload.responder;
                    let bytes = match rejected.error {
                        AdmissionError::Overloaded { retry_after } => {
                            http_overloaded_bytes(retry_after)
                        }
                        AdmissionError::Shutdown => response_bytes(Err("server shutting down")),
                    };
                    responder.send(bytes);
                }
            }
            Err(e) => responder.send(response_bytes(Err(&e))),
        }
    })?;
    handle.add_teardown(move || drop(dispatcher));
    Ok(handle)
}

/// Actor method dispatch: object-store copy (real) plus the calibrated
/// Python dispatch cost, then the model apply.
fn score_one(
    pool: &ModelPool,
    input: &Tensor,
    actor_cost: Cost,
) -> std::result::Result<Tensor, String> {
    match Tensor::from_vec(input.shape().clone(), input.data().to_vec()) {
        Ok(staged) => {
            actor_cost.spend(staged.numel() * 4);
            match pool.with_model(|m| m.apply(&staged)) {
                Ok(applied) => applied.map_err(|e| e.to_string()),
                Err(e) => Err(e.to_string()),
            }
        }
        Err(e) => Err(format!("object-store copy: {e}")),
    }
}

/// The paper-original blocking shape: connection threads, one proxy
/// thread, replica threads on channels.
fn start_thread_per_connection(
    pool: ModelPool,
    config: ServingConfig,
    addr: SocketAddr,
) -> Result<ServerHandle> {
    let (proxy_tx, proxy_rx) = unbounded::<ProxyMsg>();
    let (replica_tx, replica_rx) = unbounded::<ReplicaJob>();

    let conn_proxy_tx = proxy_tx.clone();
    let handle = spawn_listener_on("ray-serve", addr, move |stream| {
        handle_connection(stream, &conn_proxy_tx);
    })?;
    let stop = handle.shutdown_flag();

    spawn_proxy(
        proxy_rx,
        replica_tx,
        stop.clone(),
        config.overheads.http_stack,
    )?;
    for i in 0..config.replicas.max(1) {
        spawn_replica(
            i,
            replica_rx.clone(),
            proxy_tx.clone(),
            pool.clone(),
            stop.clone(),
            config.overheads.actor_dispatch,
        )?;
    }
    Ok(handle)
}

fn handle_connection(stream: TcpStream, proxy_tx: &Sender<ProxyMsg>) {
    use std::io::Write;
    let mut writer = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let msg = match read_http_message(&mut reader) {
            Ok(Some(m)) => m,
            _ => return,
        };
        let (reply_tx, reply_rx) = bounded(1);
        if proxy_tx
            .send(ProxyMsg::Request {
                body: msg.body,
                reply: reply_tx,
            })
            .is_err()
        {
            return;
        }
        let Ok(response) = reply_rx.recv() else {
            return;
        };
        if writer
            .write_all(&response)
            .and_then(|_| writer.flush())
            .is_err()
        {
            return;
        }
    }
}

fn spawn_proxy(
    rx: Receiver<ProxyMsg>,
    replica_tx: Sender<ReplicaJob>,
    stop: Arc<AtomicBool>,
    http_cost: Cost,
) -> Result<()> {
    std::thread::Builder::new()
        .name("ray-serve-proxy".into())
        .spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                let msg = match rx.recv_timeout(Duration::from_millis(100)) {
                    Ok(m) => m,
                    Err(crossbeam::channel::RecvTimeoutError::Timeout) => continue,
                    Err(_) => return,
                };
                match msg {
                    ProxyMsg::Request { body, reply } => {
                        // Real JSON parse + modelled HTTP stack traversal,
                        // serialized in this single task.
                        http_cost.spend(body.len());
                        match serde_json::from_slice::<JsonTensor>(&body)
                            .map_err(|e| e.to_string())
                            .and_then(|jt| jt.into_tensor().map_err(|e| e.to_string()))
                        {
                            Ok(input) => {
                                if replica_tx.send(ReplicaJob { input, reply }).is_err() {
                                    return;
                                }
                            }
                            Err(e) => {
                                let _ = reply.send(response_bytes(Err(&e)));
                            }
                        }
                    }
                    ProxyMsg::Response { result, reply } => {
                        // Responses flow back through the proxy too.
                        let bytes = match &result {
                            Ok(t) => response_bytes(Ok(t)),
                            Err(e) => response_bytes(Err(e)),
                        };
                        http_cost.spend(bytes.len());
                        let _ = reply.send(bytes);
                    }
                }
            }
        })?;
    Ok(())
}

fn spawn_replica(
    index: usize,
    rx: Receiver<ReplicaJob>,
    proxy_tx: Sender<ProxyMsg>,
    pool: ModelPool,
    stop: Arc<AtomicBool>,
    actor_cost: Cost,
) -> Result<()> {
    std::thread::Builder::new()
        .name(format!("ray-serve-replica-{index}"))
        .spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                let job = match rx.recv_timeout(Duration::from_millis(100)) {
                    Ok(j) => j,
                    Err(crossbeam::channel::RecvTimeoutError::Timeout) => continue,
                    Err(_) => return,
                };

                let result = score_one(&pool, &job.input, actor_cost);
                if proxy_tx
                    .send(ProxyMsg::Response {
                        result,
                        reply: job.reply,
                    })
                    .is_err()
                {
                    return;
                }
            }
        })?;
    Ok(())
}

fn response_bytes(result: std::result::Result<&Tensor, &str>) -> Vec<u8> {
    let mut buf = Vec::new();
    // The Vec writer is infallible; an Err here is unreachable.
    let _ = write_http_response(&mut buf, result);
    buf
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{HttpClient, ScoringClient};
    use crayfish_models::tiny;
    use crayfish_sim::NetworkModel;

    #[test]
    fn serves_inference_over_http() {
        let server = start(&tiny::tiny_mlp(1), ServingConfig::default()).unwrap();
        let mut client = HttpClient::connect(server.addr(), NetworkModel::zero()).unwrap();
        let out = client
            .infer(&Tensor::seeded_uniform([2, 8, 8], 1, 0.0, 1.0))
            .unwrap();
        assert_eq!(out.shape().dims(), &[2, 4]);
        server.shutdown();
    }

    #[test]
    fn errors_come_back_as_500() {
        let server = start(&tiny::tiny_mlp(1), ServingConfig::default()).unwrap();
        let mut client = HttpClient::connect(server.addr(), NetworkModel::zero()).unwrap();
        let err = client.infer(&Tensor::zeros([1, 9, 9])).unwrap_err();
        assert!(matches!(err, crate::ServingError::Remote(_)), "{err}");
        // Connection still usable.
        assert!(client
            .infer(&Tensor::seeded_uniform([1, 8, 8], 1, 0.0, 1.0))
            .is_ok());
        server.shutdown();
    }

    #[test]
    fn replicas_serve_concurrent_clients() {
        let server = start(
            &tiny::tiny_mlp(1),
            ServingConfig {
                replicas: 3,
                ..Default::default()
            },
        )
        .unwrap();
        let addr = server.addr();
        let mut handles = Vec::new();
        for t in 0..3 {
            handles.push(std::thread::spawn(move || {
                let mut c = HttpClient::connect(addr, NetworkModel::zero()).unwrap();
                for i in 0..5u64 {
                    let input = Tensor::seeded_uniform([1, 8, 8], t * 31 + i, 0.0, 1.0);
                    c.infer(&input).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        server.shutdown();
    }
}
