//! TensorFlow Serving analog.
//!
//! The paper's "highly optimised external server": fused kernels (the
//! off-the-shelf CPU optimisations §5.1.1 credits for TF-Serving beating
//! TorchServe 3×), a gRPC-like binary protocol, and a thread pool whose size
//! is the scaling knob ("setting the maximum number of threads that can be
//! used to process events concurrently", §3.4.3).

use std::io::BufReader;
use std::net::{SocketAddr, TcpStream};

use crayfish_tensor::NnGraph;

use crate::protocol::{
    decode_request_binary, encode_error_binary, encode_tensor_binary, read_frame, write_frame,
};
use crate::registry::ModelRegistry;
use crate::server::{spawn_listener_on, ServerHandle, ServingConfig};
use crate::Result;

/// Start a TF-Serving analog hosting a single model.
///
/// TF-Serving consumes SavedModel files but runs a fused, CPU-optimised
/// executor internally; the fused plan (shared with the ONNX analog) is
/// that executor.
pub fn start(graph: &NnGraph, config: ServingConfig) -> Result<ServerHandle> {
    start_at(graph, config, SocketAddr::from(([127, 0, 0, 1], 0)))
}

/// Start a TF-Serving analog on a fixed address (port 0 picks an ephemeral
/// one) — the fixed form lets a crashed server be restored on the endpoint
/// its clients already hold (see [`crate::restart`]).
pub fn start_at(graph: &NnGraph, config: ServingConfig, addr: SocketAddr) -> Result<ServerHandle> {
    let registry = ModelRegistry::new(config);
    registry.deploy("default", graph)?;
    start_with_registry_at(registry, addr)
}

/// Start a TF-Serving analog backed by a [`ModelRegistry`]: the paper's
/// §7.2 external-serving story — host many named models, hot-deploy new
/// versions, and select the model per request, all without touching the
/// stream processor.
pub fn start_with_registry(registry: ModelRegistry) -> Result<ServerHandle> {
    start_with_registry_at(registry, SocketAddr::from(([127, 0, 0, 1], 0)))
}

/// [`start_with_registry`] bound to a fixed address.
pub fn start_with_registry_at(registry: ModelRegistry, addr: SocketAddr) -> Result<ServerHandle> {
    spawn_listener_on("tf-serving", addr, move |stream| {
        handle_connection(stream, &registry);
    })
}

fn handle_connection(stream: TcpStream, registry: &ModelRegistry) {
    let mut writer = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    while let Ok(Some(payload)) = read_frame(&mut reader) {
        let reply = match decode_request_binary(&payload) {
            Ok((model, input)) => match registry
                .resolve(model.as_deref())
                .and_then(|pool| pool.with_model(|m| m.apply(&input)))
                .and_then(|applied| applied.map_err(Into::into))
            {
                Ok(output) => encode_tensor_binary(&output),
                Err(e) => encode_error_binary(&e.to_string()),
            },
            Err(e) => encode_error_binary(&e.to_string()),
        };
        if write_frame(&mut writer, &reply).is_err() {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{GrpcClient, ScoringClient};
    use crayfish_models::tiny;
    use crayfish_sim::NetworkModel;
    use crayfish_tensor::Tensor;

    #[test]
    fn multi_model_serving_by_name() {
        let registry = ModelRegistry::new(ServingConfig::default());
        registry.deploy("mlp", &tiny::tiny_mlp(1)).unwrap();
        registry.deploy("cnn", &tiny::tiny_cnn(1)).unwrap();
        let server = start_with_registry(registry.clone()).unwrap();
        let mut client = GrpcClient::connect(server.addr(), NetworkModel::zero()).unwrap();
        let mlp_in = Tensor::seeded_uniform([1, 8, 8], 1, 0.0, 1.0);
        let cnn_in = Tensor::seeded_uniform([1, 3, 8, 8], 1, 0.0, 1.0);
        assert_eq!(
            client.infer_named("mlp", &mlp_in).unwrap().shape().dims(),
            &[1, 4]
        );
        assert_eq!(
            client.infer_named("cnn", &cnn_in).unwrap().shape().dims(),
            &[1, 4]
        );
        // Ambiguous unnamed request against two models errors.
        assert!(client.infer(&mlp_in).is_err());
        // Unknown model errors but keeps the connection alive.
        assert!(client.infer_named("nope", &mlp_in).is_err());
        assert!(client.infer_named("mlp", &mlp_in).is_ok());
        server.shutdown();
    }

    #[test]
    fn hot_deploy_swaps_versions_mid_stream() {
        let registry = ModelRegistry::new(ServingConfig::default());
        registry.deploy("m", &tiny::tiny_mlp(1)).unwrap();
        let server = start_with_registry(registry.clone()).unwrap();
        let mut client = GrpcClient::connect(server.addr(), NetworkModel::zero()).unwrap();
        let input = Tensor::seeded_uniform([1, 8, 8], 7, 0.0, 1.0);
        let v1_out = client.infer_named("m", &input).unwrap();
        // Hot-swap to differently seeded weights; same connection must see
        // the new version immediately.
        assert_eq!(registry.deploy("m", &tiny::tiny_mlp(999)).unwrap(), 2);
        let v2_out = client.infer_named("m", &input).unwrap();
        assert_eq!(v2_out.shape(), v1_out.shape());
        assert!(
            v1_out.max_abs_diff(&v2_out).unwrap() > 1e-6,
            "new version did not take effect"
        );
        server.shutdown();
    }

    #[test]
    fn serves_inference_over_tcp() {
        let server = start(&tiny::tiny_mlp(1), ServingConfig::default()).unwrap();
        let mut client = GrpcClient::connect(server.addr(), NetworkModel::zero()).unwrap();
        let input = Tensor::seeded_uniform([2, 8, 8], 1, 0.0, 1.0);
        let out = client.infer(&input).unwrap();
        assert_eq!(out.shape().dims(), &[2, 4]);
        server.shutdown();
    }

    #[test]
    fn bad_input_shape_returns_remote_error() {
        let server = start(&tiny::tiny_mlp(1), ServingConfig::default()).unwrap();
        let mut client = GrpcClient::connect(server.addr(), NetworkModel::zero()).unwrap();
        let err = client.infer(&Tensor::zeros([2, 9, 9])).unwrap_err();
        assert!(matches!(err, crate::ServingError::Remote(_)), "{err}");
        // The connection survives the error.
        let out = client
            .infer(&Tensor::seeded_uniform([1, 8, 8], 1, 0.0, 1.0))
            .unwrap();
        assert_eq!(out.shape().dims(), &[1, 4]);
        server.shutdown();
    }

    #[test]
    fn concurrent_clients_are_served() {
        let server = start(
            &tiny::tiny_mlp(1),
            ServingConfig {
                workers: 4,
                ..Default::default()
            },
        )
        .unwrap();
        let addr = server.addr();
        let mut handles = Vec::new();
        for t in 0..4 {
            handles.push(std::thread::spawn(move || {
                let mut c = GrpcClient::connect(addr, NetworkModel::zero()).unwrap();
                for i in 0..10u64 {
                    let input = Tensor::seeded_uniform([1, 8, 8], t * 100 + i, 0.0, 1.0);
                    let out = c.infer(&input).unwrap();
                    assert_eq!(out.shape().dims(), &[1, 4]);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        server.shutdown();
    }
}
