//! The broker cluster: topic registry, direct append/read, committed
//! offsets, and the consumer-group coordinator.
//!
//! One `Broker` models a whole cluster: its [`ClusterConfig`] says how many
//! nodes it has and how topics replicate across them (see
//! [`crate::replication`] for the per-partition protocol). The default
//! config is a single node with replication factor 1, which behaves exactly
//! like the original unreplicated broker.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use crayfish_sync::RwLock;

use crayfish_sim::NetworkModel;

use crate::cluster::ClusterConfig;
use crate::error::BrokerError;
use crate::replication::{ReplError, ReplicationStatus};
use crate::topic::{FetchedRecord, ReplGauges, Topic};
use crate::Result;

/// Consumer-group coordinator state: a generation counter bumped on every
/// membership change, plus the sorted member list assignments derive from.
#[derive(Debug, Default)]
struct GroupState {
    generation: u64,
    members: Vec<String>,
}

/// The in-process broker cluster. Shared between all clients via [`Arc`].
///
/// Methods on `Broker` itself are *broker-side* and carry no network cost;
/// the client abstractions ([`crate::Producer`],
/// [`crate::PartitionConsumer`]) apply the [`NetworkModel`] per request, as
/// a remote client would experience it.
#[derive(Debug)]
pub struct Broker {
    topics: RwLock<HashMap<String, Arc<Topic>>>,
    /// Consumer-group membership and generations.
    groups: RwLock<HashMap<String, GroupState>>,
    /// Committed offsets: (group, topic, partition) → next offset to read.
    offsets: RwLock<HashMap<(String, String, u32), u64>>,
    network: NetworkModel,
    obs: crayfish_obs::ObsHandle,
    chaos: crayfish_chaos::ChaosHandle,
    cluster: ClusterConfig,
}

impl Broker {
    /// Create a broker whose clients experience `network` per request.
    pub fn new(network: NetworkModel) -> Arc<Broker> {
        Broker::with_obs(network, crayfish_obs::ObsHandle::disabled())
    }

    /// Like [`Broker::new`], with a live observability recorder. Client
    /// abstractions (producer/consumer) pick the handle up from here, so
    /// enabling obs on the broker instruments every client built on it.
    pub fn with_obs(network: NetworkModel, obs: crayfish_obs::ObsHandle) -> Arc<Broker> {
        Broker::with_parts(network, obs, crayfish_chaos::ChaosHandle::disabled())
    }

    /// Observability plus a chaos handle, on the default single-node
    /// cluster. A broker built with a live chaos handle honours
    /// partition-outage, lost-ack, and node-liveness fault windows; with
    /// the default disabled handle every chaos check is a single branch.
    pub fn with_parts(
        network: NetworkModel,
        obs: crayfish_obs::ObsHandle,
        chaos: crayfish_chaos::ChaosHandle,
    ) -> Arc<Broker> {
        // The default layout is always valid; unwrap-free by construction.
        match Broker::with_cluster(network, obs, chaos, ClusterConfig::default()) {
            Ok(b) => b,
            Err(_) => unreachable!("default cluster config is valid"),
        }
    }

    /// Full constructor: a replicated cluster. Topics created on this
    /// broker are laid out per `cluster` (replica placement, ISR minimum);
    /// chaos `LeaderKill`/`PartitionIsolate` windows then exercise
    /// failover. Fails on an impossible layout (e.g. replication factor
    /// above the node count).
    pub fn with_cluster(
        network: NetworkModel,
        obs: crayfish_obs::ObsHandle,
        chaos: crayfish_chaos::ChaosHandle,
        cluster: ClusterConfig,
    ) -> Result<Arc<Broker>> {
        let cluster = cluster.validated()?;
        Ok(Arc::new(Broker {
            topics: RwLock::new(HashMap::new()),
            groups: RwLock::new(HashMap::new()),
            offsets: RwLock::new(HashMap::new()),
            network,
            obs,
            chaos,
            cluster,
        }))
    }

    /// The observability handle clients of this broker record into.
    pub fn obs(&self) -> &crayfish_obs::ObsHandle {
        &self.obs
    }

    /// The chaos handle clients of this broker consult for fault windows.
    pub fn chaos(&self) -> &crayfish_chaos::ChaosHandle {
        &self.chaos
    }

    /// The network model clients of this broker should apply.
    pub fn network(&self) -> NetworkModel {
        self.network
    }

    /// The cluster layout topics are created with.
    pub fn cluster(&self) -> &ClusterConfig {
        &self.cluster
    }

    /// Create a topic with `partitions` partitions and default retention.
    pub fn create_topic(&self, name: &str, partitions: u32) -> Result<()> {
        self.create_topic_with_retention(name, partitions, crate::topic::DEFAULT_RETENTION_BYTES)
    }

    /// Offset of the earliest retained record of a partition (moves forward
    /// as size-based retention evicts old records).
    pub fn earliest_offset(&self, topic: &str, partition: u32) -> Result<u64> {
        let t = self.topic(topic)?;
        let p = partition as usize;
        if p >= t.partitions.len() {
            return Err(BrokerError::UnknownPartition {
                topic: topic.to_string(),
                partition,
            });
        }
        Ok(t.start_offset(p))
    }

    /// Create a topic with an explicit per-partition size-retention cap.
    pub fn create_topic_with_retention(
        &self,
        name: &str,
        partitions: u32,
        retention_bytes: usize,
    ) -> Result<()> {
        if partitions == 0 {
            return Err(BrokerError::UnknownPartition {
                topic: name.to_string(),
                partition: 0,
            });
        }
        let mut topic = Topic::with_cluster(partitions, retention_bytes, &self.cluster);
        if self.obs.is_enabled() {
            topic.gauges = (0..partitions)
                .map(|p| {
                    let key = format!("{name}/{p}");
                    ReplGauges {
                        isr: self
                            .obs
                            .gauge_with("replication_isr_size", "partition", &key),
                        hw_lag: self.obs.gauge_with("replication_hw_lag", "partition", &key),
                        epoch: self
                            .obs
                            .gauge_with("replication_leader_epoch", "partition", &key),
                        leader: self.obs.gauge_with("replication_leader", "partition", &key),
                    }
                })
                .collect();
            for (p, g) in topic.gauges.iter().enumerate() {
                g.update(&topic.partitions[p].status());
            }
        }
        let mut topics = self.topics.write();
        if topics.contains_key(name) {
            return Err(BrokerError::TopicExists(name.to_string()));
        }
        topics.insert(name.to_string(), Arc::new(topic));
        Ok(())
    }

    /// Delete a topic (used by failure-injection tests; consumers see
    /// `UnknownTopic` afterwards).
    pub fn delete_topic(&self, name: &str) -> Result<()> {
        self.topics
            .write()
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| BrokerError::UnknownTopic(name.to_string()))
    }

    pub(crate) fn topic(&self, name: &str) -> Result<Arc<Topic>> {
        self.topics
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| BrokerError::UnknownTopic(name.to_string()))
    }

    /// Names of every topic on this broker, sorted (a node-status snapshot
    /// for multi-process failover decisions).
    pub fn topic_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.topics.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of partitions of a topic.
    pub fn partitions(&self, name: &str) -> Result<u32> {
        Ok(self.topic(name)?.partitions.len() as u32)
    }

    fn map_repl(topic: &str, partition: u32, e: ReplError) -> BrokerError {
        match e {
            ReplError::NoLeader => BrokerError::Unavailable {
                topic: topic.to_string(),
                partition,
            },
            ReplError::Fenced { current } => BrokerError::FencedLeaderEpoch {
                topic: topic.to_string(),
                partition,
                current,
            },
            ReplError::NotEnoughReplicas { isr, min_isr } => BrokerError::NotEnoughReplicas {
                topic: topic.to_string(),
                partition,
                isr,
                min_isr,
            },
        }
    }

    /// Broker-side append (no client network cost). Returns the first
    /// assigned offset and the `LogAppendTime` stamp.
    pub fn append(
        &self,
        topic: &str,
        partition: u32,
        values: Vec<(Bytes, f64)>,
    ) -> Result<(u64, f64)> {
        if self.chaos.topic_unavailable(topic) {
            return Err(BrokerError::Unavailable {
                topic: topic.to_string(),
                partition,
            });
        }
        let t = self.topic(topic)?;
        let p = partition as usize;
        if p >= t.partitions.len() {
            return Err(BrokerError::UnknownPartition {
                topic: topic.to_string(),
                partition,
            });
        }
        let (offset, stamp, _) = t
            .append(&self.chaos, p, None, None, values)
            .map_err(|e| Self::map_repl(topic, partition, e))?;
        Ok((offset, stamp))
    }

    /// Idempotent append: like [`append`](Self::append) with a producer id
    /// and the per-partition sequence number of the first record, so a
    /// retried batch whose first attempt actually landed (lost ack) is
    /// deduplicated instead of appended twice. During a network-degrade
    /// fault window the broker may deliberately "lose" the ack of a
    /// successful append and return `Unavailable` — the retry then lands in
    /// the dedup window, which is replicated and therefore holds across
    /// leader failover too.
    ///
    /// The append is leader-epoch fenced: metadata (leader, epoch) is
    /// fetched first and the append rejected with `FencedLeaderEpoch` if an
    /// election slips in between — a demoted leader can never take a late
    /// write. Producers treat the rejection as transient and retry against
    /// the new leader.
    pub fn append_dedup(
        &self,
        topic: &str,
        partition: u32,
        producer_id: u64,
        first_seq: u64,
        values: Vec<(Bytes, f64)>,
    ) -> Result<(u64, f64)> {
        if self.chaos.topic_unavailable(topic) {
            return Err(BrokerError::Unavailable {
                topic: topic.to_string(),
                partition,
            });
        }
        let t = self.topic(topic)?;
        let p = partition as usize;
        if p >= t.partitions.len() {
            return Err(BrokerError::UnknownPartition {
                topic: topic.to_string(),
                partition,
            });
        }
        let (_leader, epoch) = t.partitions[p]
            .leader(&self.chaos)
            .map_err(|e| Self::map_repl(topic, partition, e))?;
        let (offset, stamp, duplicates) = t
            .append(
                &self.chaos,
                p,
                Some(epoch),
                Some((producer_id, first_seq)),
                values,
            )
            .map_err(|e| Self::map_repl(topic, partition, e))?;
        if duplicates > 0 {
            self.chaos.note_duplicates(duplicates);
            self.obs.counter("duplicates_dropped").add(duplicates);
        }
        if self.chaos.append_ack_lost() {
            // The records are in the log, but the producer never learns:
            // its retry exercises the dedup path above.
            return Err(BrokerError::Unavailable {
                topic: topic.to_string(),
                partition,
            });
        }
        Ok((offset, stamp))
    }

    /// Broker-side read (no client network cost). Only committed records —
    /// those below the partition's high watermark — are returned.
    pub fn read(
        &self,
        topic: &str,
        partition: u32,
        offset: u64,
        max_records: usize,
        max_bytes: usize,
    ) -> Result<Vec<FetchedRecord>> {
        if self.chaos.topic_unavailable(topic) {
            return Err(BrokerError::Unavailable {
                topic: topic.to_string(),
                partition,
            });
        }
        let t = self.topic(topic)?;
        let p = partition as usize;
        if p >= t.partitions.len() {
            return Err(BrokerError::UnknownPartition {
                topic: topic.to_string(),
                partition,
            });
        }
        Ok(t.read(&self.chaos, p, offset, max_records, max_bytes))
    }

    /// Visible (committed) end offset of one partition: its high watermark.
    pub fn end_offset(&self, topic: &str, partition: u32) -> Result<u64> {
        let t = self.topic(topic)?;
        let p = partition as usize;
        if p >= t.partitions.len() {
            return Err(BrokerError::UnknownPartition {
                topic: topic.to_string(),
                partition,
            });
        }
        Ok(t.end_offset(p))
    }

    /// Sum of committed end offsets across all partitions — total records
    /// in the topic.
    pub fn total_records(&self, topic: &str) -> Result<u64> {
        let t = self.topic(topic)?;
        Ok((0..t.partitions.len()).map(|p| t.end_offset(p)).sum())
    }

    /// Replication status of every partition of a topic, in partition
    /// order (an observer snapshot; never triggers elections).
    pub fn replication_status(&self, topic: &str) -> Result<Vec<ReplicationStatus>> {
        let t = self.topic(topic)?;
        Ok(t.partitions.iter().map(|p| p.status()).collect())
    }

    /// Commit a consumer group's next-offset for a partition. Commits are
    /// monotonic: an attempt to move a committed offset backwards (a replay
    /// racing a failover, or a rebalanced consumer that started behind) is
    /// ignored, so committed progress never regresses.
    pub fn commit_offset(&self, group: &str, topic: &str, partition: u32, next: u64) {
        let mut offsets = self.offsets.write();
        let slot = offsets
            .entry((group.to_string(), topic.to_string(), partition))
            .or_insert(0);
        *slot = (*slot).max(next);
    }

    /// The committed next-offset for a group/partition (0 if none).
    pub fn committed_offset(&self, group: &str, topic: &str, partition: u32) -> u64 {
        self.offsets
            .read()
            .get(&(group.to_string(), topic.to_string(), partition))
            .copied()
            .unwrap_or(0)
    }

    /// Total consumer lag of a group over a topic: committed log end minus
    /// committed consumer offset, summed over partitions.
    pub fn group_lag(&self, group: &str, topic: &str) -> Result<u64> {
        let partitions = self.partitions(topic)?;
        let mut lag = 0u64;
        for p in 0..partitions {
            let end = self.end_offset(topic, p)?;
            let committed = self.committed_offset(group, topic, p);
            lag += end.saturating_sub(committed);
        }
        Ok(lag)
    }

    // --- consumer-group coordinator --------------------------------------

    /// Join (or re-confirm membership in) a consumer group. A new member
    /// bumps the group generation, invalidating every other member's
    /// assignment; returns the generation the member joined at.
    pub fn join_group(&self, group: &str, member: &str) -> u64 {
        let mut groups = self.groups.write();
        let st = groups.entry(group.to_string()).or_default();
        if !st.members.iter().any(|m| m == member) {
            st.members.push(member.to_string());
            st.members.sort();
            st.generation += 1;
            self.obs.counter("group_rebalances").inc();
        }
        st.generation
    }

    /// Leave a consumer group, bumping the generation so the remaining
    /// members rebalance over the freed partitions.
    pub fn leave_group(&self, group: &str, member: &str) {
        let mut groups = self.groups.write();
        if let Some(st) = groups.get_mut(group) {
            if let Some(i) = st.members.iter().position(|m| m == member) {
                st.members.remove(i);
                st.generation += 1;
                self.obs.counter("group_rebalances").inc();
            }
        }
    }

    /// Current generation of a group (0 if it has never had a member).
    pub fn group_generation(&self, group: &str) -> u64 {
        self.groups
            .read()
            .get(group)
            .map(|st| st.generation)
            .unwrap_or(0)
    }

    /// The partitions of `topic` assigned to `member` under the group's
    /// current generation: a range assignment over the sorted member list,
    /// recomputed deterministically by every member on every generation.
    pub fn group_assignment(&self, group: &str, topic: &str, member: &str) -> Result<Vec<u32>> {
        let partitions = self.partitions(topic)?;
        let groups = self.groups.read();
        let st = groups
            .get(group)
            .ok_or_else(|| BrokerError::NotGroupMember {
                group: group.to_string(),
                member: member.to_string(),
            })?;
        let idx = st.members.iter().position(|m| m == member).ok_or_else(|| {
            BrokerError::NotGroupMember {
                group: group.to_string(),
                member: member.to_string(),
            }
        })?;
        let mut assignment = Self::range_assignment(partitions, st.members.len());
        Ok(assignment.swap_remove(idx))
    }

    /// Commit a member's offsets, fenced by the generation it holds: a
    /// commit from a stale generation is rejected with
    /// `RebalanceInProgress`, so a consumer that lost partitions in a
    /// rebalance cannot clobber the new owner's progress. (Combined with
    /// monotonic [`commit_offset`](Self::commit_offset), committed offsets
    /// never regress.)
    pub fn commit_offsets_fenced(
        &self,
        group: &str,
        topic: &str,
        member: &str,
        generation: u64,
        offsets: &HashMap<u32, u64>,
    ) -> Result<()> {
        {
            let groups = self.groups.read();
            let st = groups
                .get(group)
                .ok_or_else(|| BrokerError::NotGroupMember {
                    group: group.to_string(),
                    member: member.to_string(),
                })?;
            if !st.members.iter().any(|m| m == member) {
                return Err(BrokerError::NotGroupMember {
                    group: group.to_string(),
                    member: member.to_string(),
                });
            }
            if st.generation != generation {
                return Err(BrokerError::RebalanceInProgress {
                    group: group.to_string(),
                });
            }
        }
        for (&p, &next) in offsets {
            self.commit_offset(group, topic, p, next);
        }
        Ok(())
    }

    /// Static range assignment of `partitions` to `members` (the paper's
    /// engines assign partitions to parallel tasks this way; the group
    /// coordinator reuses it per generation).
    pub fn range_assignment(partitions: u32, members: usize) -> Vec<Vec<u32>> {
        let mut out = vec![Vec::new(); members.max(1)];
        for p in 0..partitions {
            out[(p as usize) % members.max(1)].push(p);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn broker() -> Arc<Broker> {
        Broker::new(NetworkModel::zero())
    }

    fn replicated_broker(chaos: crayfish_chaos::ChaosHandle) -> Arc<Broker> {
        Broker::with_cluster(
            NetworkModel::zero(),
            crayfish_obs::ObsHandle::disabled(),
            chaos,
            ClusterConfig::replicated(),
        )
        .unwrap()
    }

    #[test]
    fn create_append_read() {
        let b = broker();
        b.create_topic("in", 4).unwrap();
        assert_eq!(b.partitions("in").unwrap(), 4);
        let (off, ts) = b
            .append("in", 2, vec![(Bytes::from_static(b"hello"), 1.0)])
            .unwrap();
        assert_eq!(off, 0);
        assert!(ts > 0.0);
        let recs = b.read("in", 2, 0, 10, usize::MAX).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(&recs[0].value[..], b"hello");
    }

    #[test]
    fn unknown_topic_and_partition_errors() {
        let b = broker();
        assert!(matches!(
            b.append("nope", 0, vec![]),
            Err(BrokerError::UnknownTopic(_))
        ));
        b.create_topic("t", 2).unwrap();
        assert!(matches!(
            b.append("t", 5, vec![]),
            Err(BrokerError::UnknownPartition { .. })
        ));
        assert!(matches!(
            b.create_topic("t", 2),
            Err(BrokerError::TopicExists(_))
        ));
    }

    #[test]
    fn invalid_cluster_is_rejected() {
        assert!(matches!(
            Broker::with_cluster(
                NetworkModel::zero(),
                crayfish_obs::ObsHandle::disabled(),
                crayfish_chaos::ChaosHandle::disabled(),
                ClusterConfig {
                    brokers: 2,
                    replication_factor: 3,
                    min_insync_replicas: 1
                }
            ),
            Err(BrokerError::InvalidCluster(_))
        ));
    }

    #[test]
    fn delete_topic_breaks_clients() {
        let b = broker();
        b.create_topic("t", 1).unwrap();
        b.delete_topic("t").unwrap();
        assert!(b.read("t", 0, 0, 1, 1).is_err());
        assert!(b.delete_topic("t").is_err());
    }

    #[test]
    fn committed_offsets_and_lag() {
        let b = broker();
        b.create_topic("t", 2).unwrap();
        b.append(
            "t",
            0,
            vec![
                (Bytes::from_static(b"a"), 0.0),
                (Bytes::from_static(b"b"), 0.0),
            ],
        )
        .unwrap();
        b.append("t", 1, vec![(Bytes::from_static(b"c"), 0.0)])
            .unwrap();
        assert_eq!(b.group_lag("g", "t").unwrap(), 3);
        b.commit_offset("g", "t", 0, 2);
        assert_eq!(b.group_lag("g", "t").unwrap(), 1);
        assert_eq!(b.committed_offset("g", "t", 0), 2);
        assert_eq!(b.committed_offset("g", "t", 1), 0);
    }

    #[test]
    fn commits_are_monotonic() {
        let b = broker();
        b.create_topic("t", 1).unwrap();
        b.commit_offset("g", "t", 0, 5);
        // A late commit from a demoted consumer cannot rewind progress.
        b.commit_offset("g", "t", 0, 3);
        assert_eq!(b.committed_offset("g", "t", 0), 5);
        b.commit_offset("g", "t", 0, 8);
        assert_eq!(b.committed_offset("g", "t", 0), 8);
    }

    #[test]
    fn range_assignment_covers_all_partitions() {
        let assign = Broker::range_assignment(32, 3);
        assert_eq!(assign.len(), 3);
        let mut all: Vec<u32> = assign.concat();
        all.sort_unstable();
        assert_eq!(all, (0..32).collect::<Vec<_>>());
        // Balanced within one.
        let sizes: Vec<usize> = assign.iter().map(|a| a.len()).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn outage_window_makes_topic_unavailable_then_recovers() {
        let chaos = crayfish_chaos::ChaosHandle::enabled();
        let b = Broker::with_parts(
            NetworkModel::zero(),
            crayfish_obs::ObsHandle::disabled(),
            chaos.clone(),
        );
        b.create_topic("in", 1).unwrap();
        b.create_topic("out", 1).unwrap();
        b.append("in", 0, vec![(Bytes::from_static(b"a"), 0.0)])
            .unwrap();
        chaos.set_topic_outage("in", true);
        assert!(matches!(
            b.append("in", 0, vec![(Bytes::from_static(b"b"), 0.0)]),
            Err(BrokerError::Unavailable { .. })
        ));
        assert!(matches!(
            b.read("in", 0, 0, 10, usize::MAX),
            Err(BrokerError::Unavailable { .. })
        ));
        // Other topics are unaffected.
        b.append("out", 0, vec![(Bytes::from_static(b"x"), 0.0)])
            .unwrap();
        chaos.set_topic_outage("in", false);
        b.append("in", 0, vec![(Bytes::from_static(b"b"), 0.0)])
            .unwrap();
        assert_eq!(b.end_offset("in", 0).unwrap(), 2);
    }

    #[test]
    fn lost_ack_append_lands_and_retry_dedups() {
        let chaos = crayfish_chaos::ChaosHandle::enabled();
        let obs = crayfish_obs::ObsHandle::enabled();
        let b = Broker::with_parts(NetworkModel::zero(), obs.clone(), chaos.clone());
        b.create_topic("t", 1).unwrap();
        // Lose every ack.
        chaos.set_net_degrade(std::time::Duration::ZERO, 0, 1);
        let batch = vec![(Bytes::from_static(b"a"), 0.0)];
        assert!(matches!(
            b.append_dedup("t", 0, 9, 0, batch.clone()),
            Err(BrokerError::Unavailable { .. })
        ));
        // The record actually landed.
        assert_eq!(b.end_offset("t", 0).unwrap(), 1);
        chaos.clear_net_degrade();
        // The producer's retry is recognised as a duplicate.
        b.append_dedup("t", 0, 9, 0, batch).unwrap();
        assert_eq!(b.end_offset("t", 0).unwrap(), 1);
        assert_eq!(chaos.duplicates_dropped(), 1);
        assert_eq!(obs.counter("duplicates_dropped").get(), 1);
    }

    #[test]
    fn total_records_sums_partitions() {
        let b = broker();
        b.create_topic("t", 3).unwrap();
        for p in 0..3 {
            b.append("t", p, vec![(Bytes::from_static(b"x"), 0.0)])
                .unwrap();
        }
        assert_eq!(b.total_records("t").unwrap(), 3);
    }

    #[test]
    fn replicated_topic_survives_leader_kill() {
        let chaos = crayfish_chaos::ChaosHandle::enabled();
        let b = replicated_broker(chaos.clone());
        b.create_topic("t", 3).unwrap();
        for p in 0..3 {
            b.append_dedup("t", p, 1, 0, vec![(Bytes::from_static(b"a"), 0.0)])
                .unwrap();
        }
        // Node 0 leads partition 0 (and follows the others).
        chaos.set_broker_dead(0, true);
        for p in 0..3 {
            b.append_dedup("t", p, 1, 1, vec![(Bytes::from_static(b"b"), 0.0)])
                .unwrap();
            assert_eq!(b.read("t", p, 0, 10, usize::MAX).unwrap().len(), 2);
        }
        let status = b.replication_status("t").unwrap();
        assert_eq!(status[0].leader, 1, "partition 0 failed over to node 1");
        assert_eq!(status[0].epoch, 1);
        assert_eq!(status[1].leader, 1, "partition 1 kept its leader");
        assert_eq!(status[1].epoch, 0);
        assert!(status.iter().all(|s| s.isr == 2));
        chaos.set_broker_dead(0, false);
        for p in 0..3 {
            b.append_dedup("t", p, 1, 2, vec![(Bytes::from_static(b"c"), 0.0)])
                .unwrap();
        }
        let status = b.replication_status("t").unwrap();
        assert!(status.iter().all(|s| s.isr == 3), "node 0 rejoined ISRs");
        assert_eq!(b.total_records("t").unwrap(), 9);
    }

    #[test]
    fn replication_gauges_export_isr_and_epoch() {
        let chaos = crayfish_chaos::ChaosHandle::enabled();
        let obs = crayfish_obs::ObsHandle::enabled();
        let b = Broker::with_cluster(
            NetworkModel::zero(),
            obs.clone(),
            chaos.clone(),
            ClusterConfig::replicated(),
        )
        .unwrap();
        b.create_topic("t", 1).unwrap();
        assert_eq!(
            obs.gauge_with("replication_isr_size", "partition", "t/0")
                .get(),
            3
        );
        chaos.set_broker_dead(0, true);
        b.append("t", 0, vec![(Bytes::from_static(b"a"), 0.0)])
            .unwrap();
        assert_eq!(
            obs.gauge_with("replication_isr_size", "partition", "t/0")
                .get(),
            2
        );
        assert_eq!(
            obs.gauge_with("replication_leader_epoch", "partition", "t/0")
                .get(),
            1
        );
        assert_eq!(
            obs.gauge_with("replication_leader", "partition", "t/0")
                .get(),
            1
        );
        assert_eq!(
            obs.gauge_with("replication_hw_lag", "partition", "t/0")
                .get(),
            1
        );
    }

    #[test]
    fn group_membership_drives_generation_and_assignment() {
        let b = broker();
        b.create_topic("t", 4).unwrap();
        let g1 = b.join_group("g", "a");
        assert_eq!(g1, 1);
        assert_eq!(b.group_assignment("g", "t", "a").unwrap(), vec![0, 1, 2, 3]);
        let g2 = b.join_group("g", "b");
        assert_eq!(g2, 2);
        assert_eq!(b.group_generation("g"), 2);
        let a = b.group_assignment("g", "t", "a").unwrap();
        let bb = b.group_assignment("g", "t", "b").unwrap();
        let mut all: Vec<u32> = a.iter().chain(bb.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3], "disjoint cover of all partitions");
        // Rejoining is idempotent: no spurious rebalance.
        assert_eq!(b.join_group("g", "a"), 2);
        b.leave_group("g", "a");
        assert_eq!(b.group_generation("g"), 3);
        assert_eq!(b.group_assignment("g", "t", "b").unwrap(), vec![0, 1, 2, 3]);
        assert!(matches!(
            b.group_assignment("g", "t", "a"),
            Err(BrokerError::NotGroupMember { .. })
        ));
    }

    #[test]
    fn stale_generation_commits_are_fenced() {
        let b = broker();
        b.create_topic("t", 2).unwrap();
        let gen_a = b.join_group("g", "a");
        let offsets: HashMap<u32, u64> = [(0u32, 4u64)].into_iter().collect();
        b.commit_offsets_fenced("g", "t", "a", gen_a, &offsets)
            .unwrap();
        assert_eq!(b.committed_offset("g", "t", 0), 4);
        // A new member bumps the generation; the old one's commit bounces.
        b.join_group("g", "b");
        let late: HashMap<u32, u64> = [(0u32, 9u64)].into_iter().collect();
        assert!(matches!(
            b.commit_offsets_fenced("g", "t", "a", gen_a, &late),
            Err(BrokerError::RebalanceInProgress { .. })
        ));
        assert_eq!(b.committed_offset("g", "t", 0), 4);
        // Non-members cannot commit at all.
        assert!(matches!(
            b.commit_offsets_fenced("g", "t", "zz", 99, &late),
            Err(BrokerError::NotGroupMember { .. })
        ));
    }
}
