//! `--self-test`: seeded violations each rule must flag, plus clean
//! snippets it must not. A lint that cannot catch a planted bug is worse
//! than no lint — CI runs this before trusting the real pass.

use crate::rules;
use crate::source::SourceFile;

struct Case {
    rule: &'static str,
    rel: &'static str,
    code: &'static str,
    /// Expected number of findings.
    expect: usize,
}

const CASES: &[Case] = &[
    Case {
        rule: rules::CLOCK_AUTHORITY,
        rel: "crates/core/src/seeded.rs",
        code: "fn f() { let t = std::time::Instant::now(); }",
        expect: 1,
    },
    Case {
        rule: rules::CLOCK_AUTHORITY,
        rel: "crates/core/src/seeded.rs",
        // Test code and comments are exempt.
        code: "// Instant::now()\n#[cfg(test)]\nmod tests { fn f() { Instant::now(); } }\n",
        expect: 0,
    },
    Case {
        rule: rules::CLOCK_AUTHORITY,
        rel: "crates/sim/src/time.rs",
        // The clock authority itself is exempt.
        code: "pub fn now() -> Instant { Instant::now() }",
        expect: 0,
    },
    Case {
        rule: rules::UNWRAP_IN_PIPELINE,
        rel: "crates/broker/src/seeded.rs",
        code: "fn f() { g().unwrap(); h().expect(\"x\"); }",
        expect: 2,
    },
    Case {
        rule: rules::UNWRAP_IN_PIPELINE,
        rel: "crates/broker/src/seeded.rs",
        code: "#[cfg(test)]\nmod tests { fn f() { g().unwrap(); } }\nfn ok() -> R { g()? }",
        expect: 0,
    },
    Case {
        rule: rules::UNWRAP_IN_PIPELINE,
        rel: "crates/obs/src/seeded.rs",
        // Non-pipeline crates may unwrap.
        code: "fn f() { g().unwrap(); }",
        expect: 0,
    },
    Case {
        rule: rules::LOCK_RANK,
        rel: "crates/broker/src/seeded.rs",
        // Version (rank 40) held, then registry (rank 10): inverted.
        code: "fn f(&self) { let v = self.version.lock(); let t = self.topics.read(); }",
        expect: 1,
    },
    Case {
        rule: rules::LOCK_RANK,
        rel: "crates/broker/src/seeded.rs",
        // Rank-ascending, and re-acquisition after drop: both fine.
        code: "fn f(&self) { let t = self.topics.read(); let v = self.version.lock(); \
               drop(v); drop(t); let o = self.offsets.write(); }",
        expect: 0,
    },
    Case {
        rule: rules::LOCK_RANK,
        rel: "crates/broker/src/seeded.rs",
        // Dropping the inner guard re-legalises the outer acquisition.
        code: "fn f(&self) { let v = self.version.lock(); drop(v); let t = self.topics.read(); }",
        expect: 0,
    },
    Case {
        rule: rules::SPAN_COVERAGE,
        rel: "crates/engine-kernel/src/seeded.rs",
        code: "fn run(&mut self) { loop { let r = self.consumer.poll(t); emit(r); } }",
        expect: 1,
    },
    Case {
        rule: rules::SPAN_COVERAGE,
        rel: "crates/engine-kernel/src/seeded.rs",
        code:
            "fn run(&mut self, ctl: &Ctl) { loop { if let Some(e) = ctl.checkpoint() { return e; } \
               let r = self.consumer.poll(t); charge_ingest(obs, c, r.len()); } }",
        expect: 0,
    },
    Case {
        rule: rules::HOT_PATH_ALLOC,
        rel: "crates/tensor/src/kernels/seeded.rs",
        // Four distinct allocation spellings in one kernel body.
        code: "fn k(x: &[f32]) -> Vec<f32> { let s = Vec::new(); let t = vec![0.0; 4]; \
               let u = x.to_vec(); let v: Vec<f32> = x.iter().map(|a| a + 1.0).collect(); v }",
        expect: 4,
    },
    Case {
        rule: rules::HOT_PATH_ALLOC,
        rel: "crates/tensor/src/kernels/seeded.rs",
        // `_into` style with caller-owned output, and test code, are fine.
        code: "fn k_into(x: &[f32], out: &mut [f32]) { out.copy_from_slice(x); }\n\
               #[cfg(test)]\nmod tests { fn t() { let v = vec![0.0; 4]; } }\n",
        expect: 0,
    },
    Case {
        rule: rules::HOT_PATH_ALLOC,
        rel: "crates/tensor/src/tensor.rs",
        // Outside the kernels tree, allocation is unrestricted.
        code: "fn f() -> Vec<f32> { vec![0.0; 4] }",
        expect: 0,
    },
    Case {
        rule: rules::HOT_PATH_ALLOC,
        rel: "crates/net/src/reactor.rs",
        // Reactor poll helpers must reuse connection buffers.
        code: "fn poll_read(c: &mut Conn) -> bool { let tmp = c.buf.to_vec(); tmp.len() > 0 }",
        expect: 1,
    },
    Case {
        rule: rules::HOT_PATH_ALLOC,
        rel: "crates/net/src/reactor.rs",
        // Non-poll functions in the reactor (dispatch, setup) may allocate.
        code: "fn spawn_reactor() { let v = Vec::new(); } \
               fn poll_write(c: &mut Conn) { c.out.clear(); }",
        expect: 0,
    },
    Case {
        rule: rules::UNWRAP_IN_PIPELINE,
        rel: "crates/admission/src/seeded.rs",
        // The admission crate is on the record path.
        code: "fn f() { g().unwrap(); }",
        expect: 1,
    },
    Case {
        rule: rules::FORBID_UNSAFE,
        rel: "crates/broker/src/lib.rs",
        code: "//! Docs.\npub mod topic;\n",
        expect: 1,
    },
    Case {
        rule: rules::FORBID_UNSAFE,
        rel: "crates/broker/src/lib.rs",
        code: "//! Docs.\n#![forbid(unsafe_code)]\npub mod topic;\n",
        expect: 0,
    },
];

/// Run every case; returns failure descriptions (empty = pass).
pub fn run() -> Vec<String> {
    let mut failures = Vec::new();
    for (i, case) in CASES.iter().enumerate() {
        let file = SourceFile::synthetic(case.rel, case.code);
        let found = rules::all_rules(&file)
            .into_iter()
            .filter(|v| v.rule == case.rule)
            .count();
        if found != case.expect {
            failures.push(format!(
                "self-test case {i} ({}): expected {} finding(s), got {found} in {:?}",
                case.rule, case.expect, case.code
            ));
        }
    }
    failures
}
