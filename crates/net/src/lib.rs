//! # crayfish-net
//!
//! The shared transport layer of the Crayfish reproduction: everything that
//! moves request/response bytes between processes lives here, extracted
//! from `crayfish-serving` so the broker's RPC service and the serving
//! tier run on one reactor and one framing codec.
//!
//! * [`codec`] — incremental length-prefixed (gRPC-like) and
//!   `Content-Length` (HTTP-like) frame parsing, plus the blocking
//!   `write_frame`/`read_frame` helpers clients use. One codec, used by the
//!   serving servers, the broker RPC service, and every client of either.
//! * [`reactor`] — the readiness-driven connection reactor: one poll thread
//!   multiplexes every connection of a server, carves complete messages out
//!   of per-connection buffers, and writes responses strictly in
//!   per-connection request order.
//! * [`server`] — listener lifecycle: [`ServerHandle`], the blocking
//!   thread-per-connection accept loop, and the handle assembly the
//!   reactor uses.
//! * [`transport`] — the pluggable request/response seam: a [`Transport`]
//!   trait with an in-process implementation (direct dispatch, preserving
//!   single-process semantics and test determinism exactly) and a TCP
//!   implementation (real sockets, reconnect-on-failure, chaos fault
//!   windows applied at the seam).
//! * [`waker`] — the loom-modelable event-count the reactor parks on
//!   instead of raw `thread::park`, so the injector/wakeup handshake can
//!   be checked for lost wakeups under loom.

#![forbid(unsafe_code)]

pub mod codec;
pub mod reactor;
pub mod server;
pub mod transport;
pub mod waker;

pub use codec::{frame_bytes, read_frame, write_frame, MAX_FRAME_BYTES};
pub use reactor::{spawn_reactor_on, Responder, Wire};
pub use server::{assemble_handle, spawn_listener_on, ServerHandle};
pub use transport::{spawn_rpc_server, InProcTransport, RpcHandler, TcpTransport, Transport};
pub use waker::Waker;

use std::fmt;

/// Transport-layer errors.
#[derive(Debug)]
pub enum NetError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// Malformed or oversized frame.
    Frame(String),
    /// The peer (or the local endpoint) has shut down.
    Closed,
}

impl NetError {
    /// Whether retrying (usually after a reconnect) can plausibly succeed.
    /// Socket failures and closed peers are transient at this layer — the
    /// caller decides whether its own protocol tolerates a retry. Framing
    /// violations are terminal.
    pub fn is_transient(&self) -> bool {
        matches!(self, NetError::Io(_) | NetError::Closed)
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "i/o error: {e}"),
            NetError::Frame(msg) => write!(f, "framing error: {msg}"),
            NetError::Closed => write!(f, "connection closed"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, NetError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transience_splits_io_from_framing() {
        assert!(NetError::Closed.is_transient());
        assert!(NetError::Io(std::io::Error::new(
            std::io::ErrorKind::ConnectionReset,
            "reset"
        ))
        .is_transient());
        assert!(!NetError::Frame("oversized".into()).is_transient());
    }
}
