//! # crayfish-tensor
//!
//! The numerical substrate of the Crayfish reproduction: a small dense
//! tensor library with the kernels required by the paper's two pre-trained
//! models (an MNIST-scale feed-forward network and ResNet50), plus a graph
//! IR ([`graph::NnGraph`]) that the model runtimes in `crayfish-runtime`
//! execute with different strategies (fused/unfused, CPU/simulated GPU).
//!
//! Everything here is *real* computation — matrix multiplies, `im2col`
//! convolutions, batch normalisation. Matrix multiplication runs through a
//! packed, cache-blocked, register-tiled kernel
//! ([`kernels::microkernel`]); by default it stays on one intra-op thread,
//! matching the paper's serving-tool configuration (§4.3 "Hardware
//! Acceleration"), and `CRAYFISH_THREADS` opts large GEMMs into the
//! persistent worker pool ([`par`]). Weight operands can be packed once at
//! plan-compile time ([`packed::PackedA`] / [`packed::PackedB`]) so the
//! executors' steady state does no packing and no allocation.
//!
//! ## Layout conventions
//!
//! * Dense activations are `[batch, features]`, row-major.
//! * Convolutional activations are `[batch, channels, height, width]`
//!   (NCHW), row-major.
//! * Convolution weights are `[out_channels, in_channels, kh, kw]`.

#![forbid(unsafe_code)]

pub mod error;
pub mod graph;
pub mod kernels;
pub mod packed;
pub mod par;
pub mod shape;
pub mod tensor;

pub use error::TensorError;
pub use graph::{NnGraph, Node, NodeId, Op};
pub use packed::{
    ConvWeights, DenseWeights, GemmScratch, PackedA, PackedA16, PackedB, PackedB16, QuantizedA,
    QuantizedB,
};
pub use par::ThreadPool;
pub use shape::Shape;
pub use tensor::Tensor;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TensorError>;
