//! The ratchet: known findings of baselined rules live in
//! `lint-baseline.txt` as `rule path count` lines. New findings fail the
//! build; fixed findings fail too, demanding the baseline be tightened —
//! the count per file may only ever go down.

use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

pub const BASELINE_FILE: &str = "lint-baseline.txt";

pub type Counts = BTreeMap<(String, String), usize>;

pub fn load(root: &Path) -> Result<Counts, String> {
    let path = root.join(BASELINE_FILE);
    let mut out = Counts::new();
    if !path.exists() {
        return Ok(out);
    }
    let text = fs::read_to_string(&path).map_err(|e| format!("read {BASELINE_FILE}: {e}"))?;
    for (n, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(rule), Some(path), Some(count)) = (parts.next(), parts.next(), parts.next())
        else {
            return Err(format!(
                "{BASELINE_FILE}:{}: malformed line {line:?}",
                n + 1
            ));
        };
        let count: usize = count
            .parse()
            .map_err(|_| format!("{BASELINE_FILE}:{}: bad count {count:?}", n + 1))?;
        out.insert((rule.to_string(), path.to_string()), count);
    }
    Ok(out)
}

pub fn write(root: &Path, counts: &Counts) -> Result<(), String> {
    let mut text = String::from(
        "# crayfish-lint ratchet baseline. Regenerate with\n\
         #   cargo run -p crayfish-lint -- --write-baseline\n\
         # Counts may only decrease; new findings fail the lint outright.\n",
    );
    for ((rule, path), count) in counts {
        if *count > 0 {
            text.push_str(&format!("{rule} {path} {count}\n"));
        }
    }
    fs::write(root.join(BASELINE_FILE), text).map_err(|e| format!("write {BASELINE_FILE}: {e}"))
}

/// Compare current findings against the baseline. Returns human-readable
/// failures: regressions (count above baseline) and stale entries (count
/// below baseline — tighten it).
pub fn compare(current: &Counts, baseline: &Counts) -> Vec<String> {
    let mut failures = Vec::new();
    for ((rule, path), &n) in current {
        let base = baseline
            .get(&(rule.clone(), path.clone()))
            .copied()
            .unwrap_or(0);
        if n > base {
            failures.push(format!(
                "{rule}: {path} has {n} finding(s), baseline allows {base} — fix the new ones"
            ));
        } else if n < base {
            failures.push(format!(
                "{rule}: {path} improved to {n} (baseline {base}) — run --write-baseline to ratchet"
            ));
        }
    }
    for ((rule, path), &base) in baseline {
        if base > 0 && !current.contains_key(&(rule.clone(), path.clone())) {
            failures.push(format!(
                "{rule}: {path} is clean (baseline {base}) — run --write-baseline to ratchet"
            ));
        }
    }
    failures
}
