//! `crayfish-top`: a terminal reporter for the crayfish-obs exporter.
//!
//! Polls a Prometheus endpoint and renders a per-stage latency breakdown
//! plus end-to-end percentiles, refreshing in place like `top`:
//!
//! ```text
//! crayfish-top [--addr 127.0.0.1:9184] [--interval 2] [--once]
//! ```

use std::collections::HashMap;
use std::time::Duration;

use crayfish_obs::export::{fetch_body, DEFAULT_PORT};
use crayfish_obs::text::{parse, Sample};
use crayfish_obs::Stage;

struct Options {
    addr: String,
    interval: Duration,
    once: bool,
}

fn usage() -> ! {
    eprintln!("usage: crayfish-top [--addr HOST:PORT] [--interval SECS] [--once]");
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options {
        addr: format!("127.0.0.1:{DEFAULT_PORT}"),
        interval: Duration::from_secs(2),
        once: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => opts.addr = args.next().unwrap_or_else(|| usage()),
            "--interval" => {
                let secs: f64 = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                opts.interval = Duration::from_secs_f64(secs.max(0.1));
            }
            "--once" => opts.once = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    opts
}

/// Aggregated view of one histogram series: cumulative buckets, sum, count.
#[derive(Default, Clone)]
struct Series {
    /// `(le_seconds, cumulative_count)` sorted by `le`.
    buckets: Vec<(f64, f64)>,
    sum: f64,
    count: f64,
}

impl Series {
    /// Quantile from cumulative buckets, linearly interpolated between the
    /// previous and current `le` edges. Returns seconds.
    fn quantile(&self, q: f64) -> f64 {
        if self.count == 0.0 {
            return 0.0;
        }
        let rank = (q * self.count).ceil().max(1.0);
        let mut prev_le = 0.0;
        let mut prev_cum = 0.0;
        for &(le, cum) in &self.buckets {
            if cum >= rank {
                let le = if le.is_finite() { le } else { prev_le };
                let span = (cum - prev_cum).max(1.0);
                return prev_le + (le - prev_le) * ((rank - prev_cum) / span);
            }
            prev_le = if le.is_finite() { le } else { prev_le };
            prev_cum = cum;
        }
        prev_le
    }

    fn mean(&self) -> f64 {
        if self.count == 0.0 {
            0.0
        } else {
            self.sum / self.count
        }
    }
}

/// Pull the histogram series for `base` (e.g. `crayfish_e2e_latency_seconds`)
/// filtered by an optional label match.
fn series(samples: &[Sample], base: &str, label: Option<(&str, &str)>) -> Series {
    let matches = |s: &Sample| match label {
        None => true,
        Some((k, v)) => s.label(k) == Some(v),
    };
    let mut out = Series::default();
    for s in samples {
        if !matches(s) {
            continue;
        }
        if s.name == format!("{base}_bucket") {
            if let Some(le) = s.label("le") {
                let le = if le == "+Inf" {
                    f64::INFINITY
                } else {
                    le.parse().unwrap_or(f64::INFINITY)
                };
                out.buckets.push((le, s.value));
            }
        } else if s.name == format!("{base}_sum") {
            out.sum = s.value;
        } else if s.name == format!("{base}_count") {
            out.count = s.value;
        }
    }
    out.buckets
        .sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    out
}

fn ms(seconds: f64) -> f64 {
    seconds * 1e3
}

fn render(samples: &[Sample], prev_counters: &HashMap<String, f64>, elapsed: Duration) {
    println!(
        "{:<14} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "STAGE", "COUNT", "MEAN ms", "P50 ms", "P95 ms", "P99 ms"
    );
    let mut stage_total = 0.0;
    for stage in Stage::ALL {
        let s = series(
            samples,
            "crayfish_stage_latency_seconds",
            Some(("stage", stage.name())),
        );
        stage_total += s.sum;
        println!(
            "{:<14} {:>10} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
            stage.name(),
            s.count as u64,
            ms(s.mean()),
            ms(s.quantile(0.50)),
            ms(s.quantile(0.95)),
            ms(s.quantile(0.99)),
        );
    }
    let e2e = series(samples, "crayfish_e2e_latency_seconds", None);
    println!(
        "{:<14} {:>10} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
        "e2e",
        e2e.count as u64,
        ms(e2e.mean()),
        ms(e2e.quantile(0.50)),
        ms(e2e.quantile(0.95)),
        ms(e2e.quantile(0.99)),
    );
    if e2e.sum > 0.0 {
        println!(
            "\nstage spans account for {:.1}% of end-to-end time (rest: queueing)",
            100.0 * stage_total / e2e.sum
        );
    }

    render_resilience(samples);
    render_admission(samples);
    render_replication(samples);
    render_network(samples, prev_counters, elapsed);

    let mut scalar_lines = Vec::new();
    for s in samples {
        // Admission, replication, and network metrics get their own
        // sections above.
        if s.name.starts_with("crayfish_admission_")
            || s.name.starts_with("crayfish_replication_")
            || s.name.starts_with("crayfish_net_")
            || s.name.starts_with("crayfish_rpc_")
        {
            continue;
        }
        if let Some(base) = s.name.strip_suffix("_total") {
            let key = render_key(s);
            let rate = prev_counters
                .get(&key)
                .map(|prev| (s.value - prev) / elapsed.as_secs_f64().max(1e-9));
            let name = base.strip_prefix("crayfish_").unwrap_or(base);
            match rate {
                Some(r) => scalar_lines.push(format!(
                    "{name}{}: {} ({r:.0}/s)",
                    label_suffix(s),
                    s.value as u64
                )),
                None => scalar_lines.push(format!("{name}{}: {}", label_suffix(s), s.value as u64)),
            }
        } else if !s.name.contains("_latency_seconds")
            && !s.name.contains("_seconds_")
            && !s.name.ends_with("_seconds")
        {
            let name = s.name.strip_prefix("crayfish_").unwrap_or(&s.name);
            scalar_lines.push(format!("{name}{}: {}", label_suffix(s), s.value as i64));
        }
    }
    if !scalar_lines.is_empty() {
        println!("\n{}", scalar_lines.join("  |  "));
    }
}

/// Fault/recovery instruments (populated by the resilience layer in
/// chaos-enabled runs): retries, per-stage errors, worker restarts,
/// deduplicated producer re-sends, and the serving circuit-breaker state.
fn render_resilience(samples: &[Sample]) {
    let mut lines = Vec::new();
    for s in samples {
        match s.name.as_str() {
            "crayfish_retries_total" => lines.push(format!("retries: {}", s.value as u64)),
            "crayfish_errors_total" => {
                let stage = s.label("stage").unwrap_or("?");
                lines.push(format!("errors[{stage}]: {}", s.value as u64));
            }
            "crayfish_worker_restarts_total" => {
                lines.push(format!("worker_restarts: {}", s.value as u64))
            }
            "crayfish_duplicates_dropped_total" => {
                lines.push(format!("duplicates_dropped: {}", s.value as u64))
            }
            "crayfish_producer_records_dropped_total" => {
                lines.push(format!("records_dropped: {}", s.value as u64))
            }
            "crayfish_circuit_state" => {
                let state = match s.value as i64 {
                    0 => "closed",
                    1 => "open",
                    2 => "half-open",
                    _ => "?",
                };
                lines.push(format!("circuit: {state}"));
            }
            _ => {}
        }
    }
    if !lines.is_empty() {
        println!("\nRESILIENCE  {}", lines.join("  |  "));
    }
}

/// Continuous-batching instruments (populated by `crayfish-admission` in
/// reactor-mode serving): queue depth, shed count, requests per scored
/// batch, and time spent queued before a worker drained the request.
///
/// `admission_batch_size` reuses the nanosecond histogram machinery to
/// store dimensionless batch sizes, so its exported "seconds" are counts
/// scaled by 1e-9 — undo that here.
fn render_admission(samples: &[Sample]) {
    let mut lines = Vec::new();
    for s in samples {
        match s.name.as_str() {
            "crayfish_admission_queue_depth" => {
                lines.push(format!("queue_depth: {}", s.value as i64));
            }
            "crayfish_admission_shed_total" => {
                lines.push(format!("shed: {}", s.value as u64));
            }
            _ => {}
        }
    }
    let batch = series(samples, "crayfish_admission_batch_size_seconds", None);
    if batch.count > 0.0 {
        lines.push(format!(
            "batch mean/p50: {:.1}/{:.1}",
            batch.mean() * 1e9,
            batch.quantile(0.50) * 1e9
        ));
    }
    let wait = series(samples, "crayfish_admission_wait_seconds", None);
    if wait.count > 0.0 {
        lines.push(format!(
            "wait p50/p99 ms: {:.3}/{:.3}",
            ms(wait.quantile(0.50)),
            ms(wait.quantile(0.99))
        ));
    }
    if !lines.is_empty() {
        println!("\nADMISSION   {}", lines.join("  |  "));
    }
}

/// Broker replication instruments (populated when topics live on a
/// replicated cluster): one row per partition with its current leader node,
/// leader epoch, ISR size out of the replica total, and how far the
/// most-behind replica trails the high watermark. A shrunken ISR or nonzero
/// lag flags a partition still recovering from a node fault.
fn render_replication(samples: &[Sample]) {
    // partition key -> (leader, epoch, isr, hw_lag)
    let mut rows: HashMap<&str, (i64, i64, i64, i64)> = HashMap::new();
    for s in samples {
        let Some(partition) = s.label("partition") else {
            continue;
        };
        let row = rows.entry(partition).or_insert((-1, 0, 0, 0));
        match s.name.as_str() {
            "crayfish_replication_leader" => row.0 = s.value as i64,
            "crayfish_replication_leader_epoch" => row.1 = s.value as i64,
            "crayfish_replication_isr_size" => row.2 = s.value as i64,
            "crayfish_replication_hw_lag" => row.3 = s.value as i64,
            _ => {}
        }
    }
    if rows.is_empty() {
        return;
    }
    let mut rows: Vec<_> = rows.into_iter().collect();
    rows.sort_by_key(|(partition, _)| partition.to_string());
    println!(
        "\nREPLICATION {:<18} {:>7} {:>6} {:>4} {:>7}",
        "PARTITION", "LEADER", "EPOCH", "ISR", "HW-LAG"
    );
    for (partition, (leader, epoch, isr, hw_lag)) in rows {
        println!(
            "            {:<18} {:>7} {:>6} {:>4} {:>7}",
            partition, leader, epoch, isr, hw_lag
        );
    }
}

/// Transport instruments (populated by `crayfish-net` clients and servers
/// in TCP deployments): bytes on the wire with live throughput, reconnect
/// and leader-failover counts, and per-RPC round-trip percentiles. The
/// histograms are recorded in nanoseconds and exported through the seconds
/// machinery, so the usual `ms()` conversion applies unchanged.
fn render_network(samples: &[Sample], prev_counters: &HashMap<String, f64>, elapsed: Duration) {
    let mut lines = Vec::new();
    for s in samples {
        let short = match s.name.as_str() {
            "crayfish_net_bytes_in_total" => "bytes_in",
            "crayfish_net_bytes_out_total" => "bytes_out",
            "crayfish_net_reconnects_total" => "reconnects",
            "crayfish_net_failovers_total" => "failovers",
            _ => continue,
        };
        let rate = prev_counters
            .get(&render_key(s))
            .map(|prev| (s.value - prev) / elapsed.as_secs_f64().max(1e-9));
        match (short, rate) {
            ("bytes_in" | "bytes_out", Some(r)) => {
                lines.push(format!("{short}: {} ({r:.0} B/s)", s.value as u64))
            }
            _ => lines.push(format!("{short}: {}", s.value as u64)),
        }
    }
    let mut rpc_rows = Vec::new();
    for rpc in ["append", "read", "poll", "commit", "admin"] {
        let h = series(samples, &format!("crayfish_rpc_{rpc}_ns_seconds"), None);
        if h.count > 0.0 {
            rpc_rows.push(format!(
                "{rpc} p50/p99 ms: {:.3}/{:.3}",
                ms(h.quantile(0.50)),
                ms(h.quantile(0.99))
            ));
        }
    }
    if lines.is_empty() && rpc_rows.is_empty() {
        return;
    }
    println!("\nNETWORK     {}", lines.join("  |  "));
    if !rpc_rows.is_empty() {
        println!("            {}", rpc_rows.join("  |  "));
    }
}

fn label_suffix(s: &Sample) -> String {
    match s.labels.first() {
        None => String::new(),
        Some((k, v)) => format!("[{k}={v}]"),
    }
}

fn render_key(s: &Sample) -> String {
    format!("{}{:?}", s.name, s.labels)
}

fn main() {
    let opts = parse_args();
    let mut prev_counters: HashMap<String, f64> = HashMap::new();
    let mut first = true;
    loop {
        let body = match fetch_body(&opts.addr) {
            Ok(body) => body,
            Err(e) => {
                eprintln!("crayfish-top: {e}");
                std::process::exit(1);
            }
        };
        let samples = match parse(&body) {
            Ok(samples) => samples,
            Err(e) => {
                eprintln!("crayfish-top: bad exposition payload: {e}");
                std::process::exit(1);
            }
        };
        if !opts.once {
            // Clear screen and home the cursor, like top(1).
            print!("\x1b[2J\x1b[H");
        }
        println!(
            "crayfish-top — {} — refresh {:?}\n",
            opts.addr, opts.interval
        );
        if first {
            prev_counters.clear();
        }
        render(&samples, &prev_counters, opts.interval);
        if opts.once {
            return;
        }
        prev_counters = samples
            .iter()
            .filter(|s| s.name.ends_with("_total"))
            .map(|s| (render_key(s), s.value))
            .collect();
        first = false;
        std::thread::sleep(opts.interval);
    }
}
