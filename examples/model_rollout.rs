//! Model rollout: hot-deploy a new model version behind a running stream.
//!
//! The paper's §7.2 argument for external serving: model management happens
//! *without touching the stream processor*. Here a Kafka-Streams-style job
//! scores a stream against a multi-model TF-Serving analog while we deploy
//! v2 of the model mid-run; the job never restarts, yet every batch after
//! the deployment is scored by the new version.

use std::time::Duration;

use crayfish::models::tiny;
use crayfish::serving::registry::ModelRegistry;
use crayfish::serving::{tf_serving, GrpcClient, ServingConfig};
use crayfish::sim::NetworkModel;
use crayfish::tensor::Tensor;

fn main() {
    // A registry-backed server with one model deployed.
    let registry = ModelRegistry::new(ServingConfig {
        replicas: 2,
        ..Default::default()
    });
    registry
        .deploy("fraud", &tiny::tiny_mlp(1))
        .expect("deploy v1");
    let server = tf_serving::start_with_registry(registry.clone()).expect("start server");
    println!(
        "serving 'fraud' v{} at {}",
        registry.version("fraud").unwrap(),
        server.addr()
    );

    // A long-lived client (stands in for the stream processor's scoring
    // operator) keeps scoring the same probe input.
    let mut client = GrpcClient::connect(server.addr(), NetworkModel::zero()).expect("connect");
    let probe = Tensor::seeded_uniform([1, 8, 8], 7, 0.0, 1.0);
    let v1_scores = client.infer_named("fraud", &probe).expect("v1 inference");
    println!("v1 scores: {:?}", v1_scores.batch_item(0));

    // Ops deploys v2 (retrained weights). No server restart, no stream
    // processor involvement.
    std::thread::sleep(Duration::from_millis(200));
    let version = registry
        .deploy("fraud", &tiny::tiny_mlp(4242))
        .expect("deploy v2");
    println!("hot-deployed 'fraud' v{version}");

    let v2_scores = client.infer_named("fraud", &probe).expect("v2 inference");
    println!("v2 scores: {:?}", v2_scores.batch_item(0));
    let moved = v1_scores.max_abs_diff(&v2_scores).expect("same shape");
    println!("prediction shift on the probe input: {moved:.4}");
    assert!(moved > 0.0, "v2 should differ from v1");

    // A second model can share the same endpoint.
    registry
        .deploy("anomaly", &tiny::tiny_cnn(1))
        .expect("deploy anomaly model");
    println!("deployments: {:?}", registry.deployments());
    let cnn_probe = Tensor::seeded_uniform([1, 3, 8, 8], 1, 0.0, 1.0);
    let anomaly = client
        .infer_named("anomaly", &cnn_probe)
        .expect("anomaly inference");
    println!("anomaly scores: {:?}", anomaly.batch_item(0));

    server.shutdown();
    println!("done: two models, one endpoint, zero restarts.");
}
