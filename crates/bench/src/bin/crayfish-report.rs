//! `crayfish-report` — the paper's *metrics analyzer* component: consolidate
//! the JSON measurements the bench harness wrote under `bench_results/`
//! into one report.
//!
//! ```sh
//! cargo bench --workspace              # produce bench_results/*.json
//! cargo run -p crayfish-bench --bin crayfish-report
//! ```

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use serde_json::Value;

fn results_dir() -> PathBuf {
    // Anchored at the workspace root, like the harness's save_json.
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../bench_results")
}

fn fmt_num(v: &Value) -> String {
    match v.as_f64() {
        Some(f) if f >= 100.0 => format!("{f:.0}"),
        Some(f) => format!("{f:.2}"),
        None => "-".into(),
    }
}

/// Render one measurement object (the common `Measurement` shape).
fn render_measurement(m: &Value) -> Option<String> {
    let config = m.get("config")?.as_str()?;
    let eps = m.get("throughput_eps")?;
    let lat = m.get("latency")?;
    Some(format!(
        "  {config:<44} {:>10} ev/s   p50 {:>8} ms   p99 {:>8} ms   n={}",
        fmt_num(eps),
        fmt_num(lat.get("p50")?),
        fmt_num(lat.get("p99")?),
        lat.get("count").and_then(Value::as_u64).unwrap_or(0),
    ))
}

fn main() {
    let dir = results_dir();
    let mut files: BTreeMap<String, PathBuf> = BTreeMap::new();
    let Ok(entries) = std::fs::read_dir(&dir) else {
        eprintln!(
            "no results at {} — run `cargo bench --workspace` first",
            dir.display()
        );
        std::process::exit(1);
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) == Some("json") {
            if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                files.insert(stem.to_string(), path);
            }
        }
    }
    if files.is_empty() {
        eprintln!("no .json results in {}", dir.display());
        std::process::exit(1);
    }

    println!("Crayfish benchmark report ({} experiments)", files.len());
    for (name, path) in files {
        let Ok(raw) = std::fs::read_to_string(&path) else {
            continue;
        };
        let Ok(value) = serde_json::from_str::<Value>(&raw) else {
            println!("\n== {name}: unreadable JSON ==");
            continue;
        };
        println!("\n== {name} ==");
        match &value {
            Value::Array(items) => {
                let mut rendered = 0;
                for item in items {
                    if let Some(line) = render_measurement(item) {
                        println!("{line}");
                        rendered += 1;
                    }
                }
                if rendered == 0 {
                    // Experiment-specific shapes (table2, fig8, fig13):
                    // print them compactly.
                    for item in items {
                        println!("  {}", serde_json::to_string(item).unwrap_or_default());
                    }
                }
            }
            other => println!("  {}", serde_json::to_string(other).unwrap_or_default()),
        }
    }
}
