//! Worker supervision: restart crashed engine workers.
//!
//! Engines wrap each worker thread body in [`supervise`]. The body runs as
//! an *incarnation*: when it returns [`WorkerExit::Failed`] (or panics),
//! the supervisor waits a capped backoff and starts a fresh incarnation;
//! when it returns [`WorkerExit::Stopped`] the thread ends for good. A
//! fresh incarnation rebuilds its consumers from the broker's committed
//! offsets, so a restart resumes exactly where the last commit left off —
//! at-least-once delivery, with re-emission bounded by one uncommitted
//! fetch.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use crayfish_sync::atomic::{AtomicBool, Ordering};
use crayfish_sync::thread::{self, JoinHandle};
use crayfish_sync::Arc;

use crayfish_obs::ObsHandle;

use crate::handle::{ChaosHandle, Domain};

/// How one worker incarnation ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerExit {
    /// Normal termination (stop flag seen, input exhausted, topic gone).
    /// The supervisor does not restart.
    Stopped,
    /// The incarnation crashed or hit a transient fabric error mid-batch.
    /// The supervisor restarts after a backoff.
    Failed(String),
}

/// Supervision tunables.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Backoff before the first restart.
    pub restart_backoff: Duration,
    /// Backoff cap (doubles per consecutive restart up to this).
    pub max_backoff: Duration,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            restart_backoff: Duration::from_millis(20),
            max_backoff: Duration::from_millis(200),
        }
    }
}

/// Spawn a supervised worker thread named `name`.
///
/// `body(incarnation)` is called with 0 for the initial run and n for the
/// nth restart. Restarts continue (with exponential backoff capped at
/// `max_backoff`) until the body returns [`WorkerExit::Stopped`] or `stop`
/// is set; there is no restart cap, so a worker facing a long outage keeps
/// probing at the capped backoff instead of dying — `stop` remains the
/// one way to end it, which keeps `RunningJob::stop()` prompt.
///
/// Each restart increments the `worker_restarts` counter and
/// `errors{stage=<name>}`; a successful restart reports engine-domain
/// recovery to the chaos handle (closing `WorkerCrash` incidents).
pub fn supervise<F>(
    name: String,
    stop: Arc<AtomicBool>,
    obs: ObsHandle,
    chaos: ChaosHandle,
    config: SupervisorConfig,
    mut body: F,
) -> JoinHandle<()>
where
    F: FnMut(u32) -> WorkerExit + Send + 'static,
{
    thread::spawn_named(&name, move || {
        let restarts = obs.counter("worker_restarts");
        let errors = obs.counter_with("errors", "stage", "worker");
        let mut backoff = config.restart_backoff;
        let mut incarnation = 0u32;
        loop {
            let exit = match catch_unwind(AssertUnwindSafe(|| body(incarnation))) {
                Ok(exit) => exit,
                Err(payload) => WorkerExit::Failed(panic_message(payload.as_ref())),
            };
            match exit {
                WorkerExit::Stopped => return,
                WorkerExit::Failed(_reason) => {
                    errors.inc();
                    if sleep_unless_stopped(&stop, backoff) {
                        return;
                    }
                    backoff = (backoff * 2).min(config.max_backoff);
                    incarnation += 1;
                    restarts.inc();
                    chaos.note_success(Domain::Engine);
                }
            }
        }
    })
    .expect("spawn supervised worker")
}

/// Sleep in short slices, returning `true` if `stop` was set.
fn sleep_unless_stopped(stop: &AtomicBool, total: Duration) -> bool {
    let mut remaining = total;
    while remaining > Duration::ZERO {
        if stop.load(Ordering::Relaxed) {
            return true;
        }
        let slice = remaining.min(Duration::from_millis(5));
        thread::sleep(slice);
        remaining = remaining.saturating_sub(slice);
    }
    stop.load(Ordering::Relaxed)
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn quick_config() -> SupervisorConfig {
        SupervisorConfig {
            restart_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(4),
        }
    }

    #[test]
    fn restarts_failed_incarnations_until_stopped_exit() {
        let stop = Arc::new(AtomicBool::new(false));
        let runs = Arc::new(AtomicU32::new(0));
        let runs2 = runs.clone();
        let obs = ObsHandle::enabled();
        let t = supervise(
            "w".into(),
            stop,
            obs.clone(),
            ChaosHandle::disabled(),
            quick_config(),
            move |incarnation| {
                runs2.fetch_add(1, Ordering::Relaxed);
                if incarnation < 3 {
                    WorkerExit::Failed("injected".into())
                } else {
                    WorkerExit::Stopped
                }
            },
        );
        t.join().unwrap();
        assert_eq!(runs.load(Ordering::Relaxed), 4);
        assert_eq!(obs.counter("worker_restarts").get(), 3);
        assert_eq!(obs.counter_with("errors", "stage", "worker").get(), 3);
    }

    #[test]
    fn panics_are_caught_and_restarted() {
        let stop = Arc::new(AtomicBool::new(false));
        let runs = Arc::new(AtomicU32::new(0));
        let runs2 = runs.clone();
        let t = supervise(
            "w".into(),
            stop,
            ObsHandle::disabled(),
            ChaosHandle::disabled(),
            quick_config(),
            move |incarnation| {
                runs2.fetch_add(1, Ordering::Relaxed);
                if incarnation == 0 {
                    panic!("boom");
                }
                WorkerExit::Stopped
            },
        );
        t.join().unwrap();
        assert_eq!(runs.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn stop_flag_ends_restart_loop() {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let t = supervise(
            "w".into(),
            stop.clone(),
            ObsHandle::disabled(),
            ChaosHandle::disabled(),
            SupervisorConfig {
                restart_backoff: Duration::from_millis(50),
                max_backoff: Duration::from_millis(50),
            },
            move |_| {
                stop2.store(true, Ordering::Relaxed);
                WorkerExit::Failed("dies forever".into())
            },
        );
        // Stop was raised inside the first incarnation; the backoff sleep
        // notices it and the supervisor exits instead of restarting.
        t.join().unwrap();
    }

    #[test]
    fn restart_closes_worker_crash_incidents() {
        use crate::plan::FaultKind;
        let chaos = ChaosHandle::enabled();
        let id = chaos.open_incident(FaultKind::WorkerCrash);
        chaos.end_fault(id);
        let stop = Arc::new(AtomicBool::new(false));
        let t = supervise(
            "w".into(),
            stop,
            ObsHandle::disabled(),
            chaos.clone(),
            quick_config(),
            move |incarnation| {
                if incarnation == 0 {
                    WorkerExit::Failed("crash".into())
                } else {
                    WorkerExit::Stopped
                }
            },
        );
        t.join().unwrap();
        let report = chaos.report();
        assert_eq!(report.unrecovered, 0);
        assert!(report.incidents[0].mttr_ms.unwrap() > 0.0);
    }
}
