//! The repo-specific rules. Each rule returns the violations it found in
//! one file; `main` aggregates, applies baselines, and reports.

use crate::source::{function_bodies, SourceFile};

/// One finding, pointing at a line of the original file.
pub struct Violation {
    pub rule: &'static str,
    pub rel: String,
    pub line: usize,
    pub msg: String,
}

pub const CLOCK_AUTHORITY: &str = "clock-authority";
pub const UNWRAP_IN_PIPELINE: &str = "unwrap-in-pipeline";
pub const LOCK_RANK: &str = "lock-rank";
pub const SPAN_COVERAGE: &str = "span-coverage";
pub const FORBID_UNSAFE: &str = "forbid-unsafe";
pub const HOT_PATH_ALLOC: &str = "hot-path-alloc";

/// Rules whose findings are ratcheted through `lint-baseline.txt` instead
/// of failing outright.
pub const BASELINED: &[&str] = &[CLOCK_AUTHORITY, UNWRAP_IN_PIPELINE, HOT_PATH_ALLOC];

/// Crates whose non-test code must not unwrap: everything on the record
/// path, where a panic kills a supervised worker and poisons the run.
const PIPELINE_CRATES: &[&str] = &[
    "crates/admission/",
    "crates/broker/",
    "crates/engine-kernel/",
    "crates/net/",
    "crates/serving/",
    "crates/flink/",
    "crates/kstreams/",
    "crates/sparkss/",
    "crates/ray/",
];

fn in_any(rel: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| rel.starts_with(p))
}

fn find_all(hay: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut search = 0;
    while let Some(found) = hay[search..].find(needle) {
        out.push(search + found);
        search += found + needle.len();
    }
    out
}

/// Direct wall-clock reads are reserved to `crayfish-sim`'s clock
/// authority (`crayfish_sim::now()` / `Stopwatch`): that is the one seam a
/// virtual clock can later replace, and it keeps modelled costs and
/// measured costs on the same timeline.
pub fn clock_authority(file: &SourceFile) -> Vec<Violation> {
    if in_any(&file.rel, &["crates/sim/", "crates/lint/"]) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for needle in ["Instant::now()", "SystemTime::now()"] {
        for pos in find_all(&file.clean, needle) {
            out.push(Violation {
                rule: CLOCK_AUTHORITY,
                rel: file.rel.clone(),
                line: file.line_of(pos),
                msg: format!("{needle} outside crayfish-sim; use crayfish_sim::now()"),
            });
        }
    }
    out
}

/// `.unwrap()` / `.expect(` in non-test pipeline code. A panic in a
/// supervised worker reads as an injected crash to the resilience layer,
/// corrupting fault-tolerance measurements.
pub fn unwrap_in_pipeline(file: &SourceFile) -> Vec<Violation> {
    if !in_any(&file.rel, PIPELINE_CRATES) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for needle in [".unwrap()", ".expect("] {
        for pos in find_all(&file.clean, needle) {
            out.push(Violation {
                rule: UNWRAP_IN_PIPELINE,
                rel: file.rel.clone(),
                line: file.line_of(pos),
                msg: format!("{needle} in pipeline code; propagate the error"),
            });
        }
    }
    out
}

/// Lock-rank table. Rank = acquisition order: a lock may only be taken
/// while every held lock has a *smaller* rank (outermost first). Broker:
/// node append gate (3) → node leader state (5) → cluster client leader
/// index (8) → topic registry (10) → group coordinator (15) → committed
/// offsets (20) → replicated partition state (30) → topic version (40).
/// Net: TCP connection slot (5) → reactor injector (10) → ready queue
/// (15) → connection registry (20) → waker signal (30). Flink exchange:
/// channel state (10) → (worker-set structures, unranked today, would slot
/// above).
fn lock_rank_of(rel: &str, receiver: &str) -> Option<(u32, &'static str)> {
    if rel.starts_with("crates/broker/") {
        match receiver {
            "append_gate" => Some((3, "node append gate")),
            "state" => Some((5, "node leader state")),
            "leader" => Some((8, "cluster client leader index")),
            "topics" => Some((10, "broker topic registry")),
            "groups" => Some((15, "consumer group coordinator")),
            "offsets" => Some((20, "committed consumer offsets")),
            "repl" => Some((30, "replicated partition state")),
            "version" => Some((40, "topic version")),
            _ => None,
        }
    } else if rel.starts_with("crates/net/") {
        match receiver {
            "conn" => Some((5, "TCP connection slot")),
            "injector" => Some((10, "reactor injector")),
            "ready" => Some((15, "reactor ready queue")),
            "registry" | "connections" => Some((20, "connection registry")),
            "signal" => Some((30, "waker signal")),
            _ => None,
        }
    } else if rel.starts_with("crates/flink/") {
        match receiver {
            "state" => Some((10, "exchange channel state")),
            _ => None,
        }
    } else {
        None
    }
}

/// Walk back from a `.lock()` call, skipping index/call bracket groups,
/// and return the nearest identifier in the receiver chain
/// (`self.partitions[p].lock()` → `partitions`).
fn receiver_of(clean: &str, dot: usize) -> Option<&str> {
    let bytes = clean.as_bytes();
    let mut i = dot;
    while i > 0 {
        let c = bytes[i - 1];
        if c == b']' || c == b')' {
            let open = if c == b']' { b'[' } else { b'(' };
            let mut depth = 0usize;
            while i > 0 {
                let d = bytes[i - 1];
                i -= 1;
                if d == c {
                    depth += 1;
                } else if d == open {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
            }
        } else if c.is_ascii_alphanumeric() || c == b'_' {
            let end = i;
            while i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_') {
                i -= 1;
            }
            return Some(&clean[i..end]);
        } else if c == b'.' {
            i -= 1;
        } else {
            break;
        }
    }
    None
}

/// Detect out-of-rank acquisitions within each function: taking a ranked
/// lock while holding one of greater rank inverts the global acquisition
/// order and is a deadlock seed with any thread doing it the right way
/// round.
pub fn lock_rank(file: &SourceFile) -> Vec<Violation> {
    let mut out = Vec::new();
    let clean = &file.clean;
    for (_, body_start, body_end) in function_bodies(clean) {
        let body = &clean[body_start..=body_end];
        // Held guards: (binding name if `let`-bound, rank, label).
        let mut held: Vec<(Option<String>, u32, &'static str)> = Vec::new();
        let mut events: Vec<(usize, Event)> = Vec::new();
        for needle in [".lock()", ".read()", ".write()"] {
            for pos in find_all(body, needle) {
                events.push((pos, Event::Acquire));
            }
        }
        for pos in find_all(body, "drop(") {
            events.push((pos, Event::Drop));
        }
        events.sort_by_key(|&(p, _)| p);
        for (pos, ev) in events {
            match ev {
                Event::Drop => {
                    let args_start = pos + "drop(".len();
                    let arg: String = body[args_start..]
                        .chars()
                        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                        .collect();
                    held.retain(|(name, _, _)| name.as_deref() != Some(arg.as_str()));
                }
                Event::Acquire => {
                    let Some(recv) = receiver_of(body, pos) else {
                        continue;
                    };
                    let Some((rank, label)) = lock_rank_of(&file.rel, recv) else {
                        continue;
                    };
                    if let Some((_, _, held_label)) = held.iter().find(|&&(_, r, _)| r > rank) {
                        out.push(Violation {
                            rule: LOCK_RANK,
                            rel: file.rel.clone(),
                            line: file.line_of(body_start + pos),
                            msg: format!(
                                "acquires {label} (rank {rank}) while holding {held_label}; \
                                 acquisition order is rank-ascending"
                            ),
                        });
                    }
                    // `let g = x.lock()` holds to end of scope (or drop);
                    // an unbound guard is a temporary, released at the end
                    // of the statement — still checked above, not tracked.
                    let binding = let_binding_before(body, pos);
                    if binding.is_some() {
                        held.push((binding, rank, label));
                    }
                }
            }
        }
    }
    out
}

enum Event {
    Acquire,
    Drop,
}

/// If the statement containing `pos` starts with `let <ident> =`, return
/// the identifier.
fn let_binding_before(body: &str, pos: usize) -> Option<String> {
    let stmt_start = body[..pos].rfind([';', '{', '}']).map_or(0, |p| p + 1);
    let stmt = body[stmt_start..pos].trim_start();
    let rest = stmt.strip_prefix("let ")?;
    let rest = rest
        .trim_start()
        .strip_prefix("mut ")
        .unwrap_or(rest)
        .trim_start();
    let name: String = rest
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

/// Name of the function declared at `fn_pos` in cleaned text.
fn fn_name(clean: &str, fn_pos: usize) -> &str {
    let after = &clean[fn_pos + "fn ".len()..];
    let end = after
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .unwrap_or(after.len());
    &after[..end]
}

/// Heap allocation inside a hot-loop body. Two trees make this promise:
///
/// * `crates/tensor/src/kernels/` — the packed GEMM path's zero-allocation
///   steady state: every kernel takes an `_into` output slice or a
///   reusable scratch (`GemmScratch`, the executor arena); every function
///   is covered.
/// * `crates/net/src/reactor.rs` and `crates/net/src/codec.rs` — the
///   shared reactor's per-connection poll helpers (`poll_*`), which run
///   for every connection on every loop iteration and must reuse the
///   connection's own buffers. Only the `poll_*`-prefixed functions are
///   covered: dispatch callbacks invoked *from* the loop (decode,
///   admission push) allocate legitimately.
///
/// A `Vec::new` / `vec![` / `.to_vec(` / `.collect(` there is either a
/// compat wrapper (baselined, ratcheted down) or a regression. Test
/// modules are already blanked by the source cleaner.
pub fn hot_path_alloc(file: &SourceFile) -> Vec<Violation> {
    let kernels = file.rel.starts_with("crates/tensor/src/kernels/");
    let reactor = file.rel == "crates/net/src/reactor.rs" || file.rel == "crates/net/src/codec.rs";
    if !kernels && !reactor {
        return Vec::new();
    }
    let mut out = Vec::new();
    let clean = &file.clean;
    for (fn_pos, body_start, body_end) in function_bodies(clean) {
        if reactor && !fn_name(clean, fn_pos).starts_with("poll_") {
            continue;
        }
        let body = &clean[body_start..=body_end];
        for needle in ["Vec::new", "vec![", ".to_vec(", ".collect("] {
            for pos in find_all(body, needle) {
                out.push(Violation {
                    rule: HOT_PATH_ALLOC,
                    rel: file.rel.clone(),
                    line: file.line_of(body_start + pos),
                    msg: format!(
                        "{needle} in a hot-path body; use an `_into` variant or reuse a buffer"
                    ),
                });
            }
        }
    }
    out
}

/// Every engine-kernel worker loop that polls the broker must run under
/// supervision discipline: a chaos checkpoint (so injected crashes and
/// stop flags are honoured per cycle) and an obs span or charge (so the
/// stage shows up in the paper's latency breakdown).
pub fn span_coverage(file: &SourceFile) -> Vec<Violation> {
    if !file.rel.starts_with("crates/engine-kernel/src") {
        return Vec::new();
    }
    let span_markers = ["charge_ingest", "ingest_span", ".timer("];
    let mut out = Vec::new();
    for (fn_pos, body_start, body_end) in function_bodies(&file.clean) {
        let body = &file.clean[body_start..=body_end];
        if !body.contains(".poll(") {
            continue;
        }
        let mut missing = Vec::new();
        if !body.contains("checkpoint") {
            missing.push("a chaos checkpoint (`ctl.checkpoint()`)");
        }
        if !span_markers.iter().any(|m| body.contains(m)) {
            missing.push("an obs span or ingest charge");
        }
        if !missing.is_empty() {
            out.push(Violation {
                rule: SPAN_COVERAGE,
                rel: file.rel.clone(),
                line: file.line_of(fn_pos),
                msg: format!("polling worker body lacks {}", missing.join(" and ")),
            });
        }
    }
    out
}

/// Every crate root must forbid unsafe code — the reproduction is pure
/// safe Rust, and the guarantee should be compiler-enforced per crate, not
/// folklore.
pub fn forbid_unsafe(file: &SourceFile) -> Vec<Violation> {
    let is_root = file.rel.ends_with("/src/lib.rs")
        || file.rel == "src/lib.rs"
        || file.rel.ends_with("/src/main.rs")
        || file.rel.starts_with("src/bin/");
    if !is_root {
        return Vec::new();
    }
    if file.raw.contains("#![forbid(unsafe_code)]") {
        return Vec::new();
    }
    vec![Violation {
        rule: FORBID_UNSAFE,
        rel: file.rel.clone(),
        line: 1,
        msg: "crate root lacks #![forbid(unsafe_code)]".into(),
    }]
}

/// Run every rule over one file.
pub fn all_rules(file: &SourceFile) -> Vec<Violation> {
    let mut out = Vec::new();
    out.extend(clock_authority(file));
    out.extend(unwrap_in_pipeline(file));
    out.extend(lock_rank(file));
    out.extend(hot_path_alloc(file));
    out.extend(span_coverage(file));
    out.extend(forbid_unsafe(file));
    out
}
