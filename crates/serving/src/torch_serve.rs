//! TorchServe analog.
//!
//! Same gRPC-like protocol as the TF-Serving analog, but every request runs
//! through a *Python handler* before reaching the model (§3.4.3:
//! "it allows users to write additional wrapper code for the inference
//! through Python handlers"): the handler re-encodes the input tensor as
//! JSON and parses it back (real work — TorchServe handlers shuttle request
//! payloads through Python objects) and pays the calibrated interpreter
//! cost. Inference itself uses the unfused executor — the missing
//! "off-the-shelf CPU optimisations" the paper blames for TorchServe's 3×
//! deficit against TF-Serving (§5.1.1).

use std::io::BufReader;
use std::net::{SocketAddr, TcpStream};

use crayfish_admission::{AdmissionMetrics, BatchQueue, Dispatcher, Pending};
use crayfish_runtime::{EmbeddedRuntime, TorchRuntime};
use crayfish_sim::Cost;
use crayfish_tensor::{NnGraph, Tensor};

use crate::batching::ScoreJob;
use crate::protocol::{
    decode_tensor_binary, encode_error_binary, encode_tensor_binary, read_frame, write_frame,
    JsonTensor,
};
use crayfish_net::{spawn_reactor_on, Responder, Wire};

use crate::server::{spawn_listener_on, IoModel, ModelPool, ServerHandle, ServingConfig};
use crate::tf_serving::score_grpc_batch;
use crate::{Result, ServingError};

/// Start a TorchServe analog for `graph`.
pub fn start(graph: &NnGraph, config: ServingConfig) -> Result<ServerHandle> {
    start_at(graph, config, SocketAddr::from(([127, 0, 0, 1], 0)))
}

/// Start a TorchServe analog on a fixed address (port 0 picks an ephemeral
/// one); used to restore a crashed server on the same endpoint.
pub fn start_at(graph: &NnGraph, config: ServingConfig, addr: SocketAddr) -> Result<ServerHandle> {
    // Native eager-mode kernels, no graph optimiser.
    let loader = TorchRuntime::new();
    let graph = graph.clone();
    let pool = ModelPool::new(config.replicas, &config.obs, || {
        loader.load_graph(&graph, config.device)
    })?;
    let py_cost = config.overheads.py_handler;
    match config.io {
        IoModel::Reactor => start_reactor(pool, config, py_cost, addr),
        IoModel::ThreadPerConnection => spawn_listener_on("torch-serve", addr, move |stream| {
            handle_connection(stream, &pool, py_cost);
        }),
    }
}

/// The reactor path. The Python handler stays a *per-request* cost even
/// inside a batch — TorchServe handlers shuttle each payload through the
/// interpreter individually — so continuous batching amortises only the
/// native scoring, which is exactly why the paper's TorchServe trails
/// TF-Serving under load.
fn start_reactor(
    pool: ModelPool,
    config: ServingConfig,
    py_cost: Cost,
    addr: SocketAddr,
) -> Result<ServerHandle> {
    let queue: BatchQueue<ScoreJob<Responder>> = BatchQueue::new(
        config.admission,
        config.replicas,
        AdmissionMetrics::new(&config.obs),
    );
    let dispatcher = Dispatcher::spawn("torch-serve", queue.clone(), config.replicas, |_i| {
        let pool = pool.clone();
        move |batch: &mut Vec<Pending<ScoreJob<Responder>>>| {
            // Per-request Python handler pass, then stacked native scoring.
            for p in batch.iter_mut() {
                match python_handler(&p.payload.input, py_cost) {
                    Ok(handled) => p.payload.input = handled,
                    Err(_) => {
                        // Leave the input as-is; the apply below will
                        // surface the model's own error for it. (The
                        // handler only fails on non-finite JSON, which the
                        // decode layer already rejects.)
                    }
                }
            }
            score_grpc_batch(batch, |_model, input| {
                pool.with_model(|m| m.apply(input))
                    .and_then(|applied| applied.map_err(Into::into))
            });
        }
    })?;
    let mut handle = spawn_reactor_on(
        "torch-serve",
        addr,
        Wire::Grpc,
        move |payload, responder| {
            crate::tf_serving::dispatch_grpc(&queue, payload, responder);
        },
    )?;
    handle.add_teardown(move || drop(dispatcher));
    Ok(handle)
}

/// The simulated Python handler: JSON round-trip plus interpreter cost.
fn python_handler(input: &Tensor, py_cost: Cost) -> crate::Result<Tensor> {
    let json = serde_json::to_vec(&JsonTensor::from_tensor(input))
        .map_err(|e| ServingError::Protocol(format!("handler encode: {e}")))?;
    py_cost.spend(json.len());
    let parsed: JsonTensor = serde_json::from_slice(&json)
        .map_err(|e| ServingError::Protocol(format!("handler decode: {e}")))?;
    parsed.into_tensor()
}

fn handle_connection(stream: TcpStream, pool: &ModelPool, py_cost: Cost) {
    let mut writer = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    while let Ok(Some(payload)) = read_frame(&mut reader) {
        let reply = match decode_tensor_binary(&payload).and_then(|t| python_handler(&t, py_cost)) {
            Ok(input) => match pool.with_model(|m| m.apply(&input)) {
                Ok(Ok(output)) => encode_tensor_binary(&output),
                Ok(Err(e)) => encode_error_binary(&e.to_string()),
                Err(e) => encode_error_binary(&e.to_string()),
            },
            Err(e) => encode_error_binary(&e.to_string()),
        };
        if write_frame(&mut writer, &reply).is_err() {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{GrpcClient, ScoringClient};
    use crayfish_models::tiny;
    use crayfish_sim::{NetworkModel, OverheadModel, Stopwatch};

    #[test]
    fn serves_inference() {
        let server = start(&tiny::tiny_mlp(1), ServingConfig::default()).unwrap();
        let mut client = GrpcClient::connect(server.addr(), NetworkModel::zero()).unwrap();
        let out = client
            .infer(&Tensor::seeded_uniform([3, 8, 8], 1, 0.0, 1.0))
            .unwrap();
        assert_eq!(out.shape().dims(), &[3, 4]);
        server.shutdown();
    }

    #[test]
    fn python_handler_preserves_the_tensor() {
        let t = Tensor::seeded_uniform([2, 5], 7, -3.0, 3.0);
        let back = python_handler(&t, Cost::ZERO).unwrap();
        // JSON float round-trips are exact for f32 via serde_json.
        assert_eq!(t.shape(), back.shape());
        assert!(t.max_abs_diff(&back).unwrap() < 1e-6);
    }

    #[test]
    fn slower_than_tf_serving_per_request() {
        // The handler cost must make TorchServe measurably slower than the
        // TF-Serving analog for the same model — Table 4's ordering.
        let g = tiny::tiny_mlp(1);
        let overheads = OverheadModel::calibrated();
        let torch = start(
            &g,
            ServingConfig {
                overheads,
                ..Default::default()
            },
        )
        .unwrap();
        let tf = crate::tf_serving::start(
            &g,
            ServingConfig {
                overheads,
                ..Default::default()
            },
        )
        .unwrap();
        let mut torch_c = GrpcClient::connect(torch.addr(), NetworkModel::zero()).unwrap();
        let mut tf_c = GrpcClient::connect(tf.addr(), NetworkModel::zero()).unwrap();
        let input = Tensor::seeded_uniform([1, 8, 8], 1, 0.0, 1.0);
        torch_c.infer(&input).unwrap();
        tf_c.infer(&input).unwrap();
        let reps = 10;
        let sw = Stopwatch::start();
        for _ in 0..reps {
            torch_c.infer(&input).unwrap();
        }
        let t_torch = sw.elapsed();
        let sw = Stopwatch::start();
        for _ in 0..reps {
            tf_c.infer(&input).unwrap();
        }
        let t_tf = sw.elapsed();
        assert!(
            t_torch > t_tf * 2,
            "torchserve {t_torch:?} vs tf-serving {t_tf:?}"
        );
        torch.shutdown();
        tf.shutdown();
    }
}
