//! **Figure 11** — vertical scalability across the four stream processors
//! with embedded ONNX and external TF-Serving (FFNN, offered 30 k events/s,
//! `bsz = 1`).

use crayfish::prelude::*;
use crayfish_bench::*;

/// Paper-reported peaks (events/s).
fn paper_peak(engine: &str, tool: &str) -> f64 {
    match (engine, tool) {
        ("flink", "onnx (e)") => 13_000.0,
        ("flink", "tf-serving (x)") => 9_800.0,
        ("kstreams", "onnx (e)") => 23_000.0,
        ("kstreams", "tf-serving (x)") => 10_000.0,
        ("sparkss", "onnx (e)") => 23_000.0,
        ("sparkss", "tf-serving (x)") => 10_200.0,
        ("ray", "onnx (e)") => 1_200.0,
        ("ray", "tf-serving (x)") => 455.44,
        _ => 0.0,
    }
}

fn main() {
    let tools = [
        (
            "onnx (e)",
            ServingChoice::Embedded {
                lib: EmbeddedLib::Onnx,
                device: Device::Cpu,
            },
        ),
        (
            "tf-serving (x)",
            ServingChoice::External {
                kind: ExternalKind::TfServing,
                device: Device::Cpu,
            },
        ),
    ];
    let mut table = Table::new(
        "Figure 11: vertical scaling across SPSs (events/s, FFNN, ir=30k, bsz=1)",
        &["engine", "serving tool", "mp", "measured", "paper peak"],
    );
    let mut dump = Vec::new();
    for (engine, processor) in registry::all_processors() {
        for (tool, serving) in tools {
            for mp in mp_sweep() {
                let mut spec = base_spec(ModelSpec::Ffnn, serving);
                spec.mp = mp;
                spec.workload = Workload::Constant {
                    rate: OVERLOAD_FFNN,
                };
                let result = run(
                    &format!("fig11/{engine}/{tool}/mp{mp}"),
                    processor.as_ref(),
                    &spec,
                );
                table.row(vec![
                    engine.into(),
                    tool.into(),
                    mp.to_string(),
                    eps(result.throughput_eps),
                    format!("{:.0}", paper_peak(engine, tool)),
                ]);
                dump.push(Measurement::of(format!("{engine}/{tool}/mp{mp}"), &result));
            }
        }
    }
    table.print();
    println!("\nPaper shape: kstreams scales best (pull model, broker integration) and");
    println!("peaks highest with onnx; flink similar but lower; sparkss starts high and");
    println!("barely improves with mp; ray plateaus lowest, earliest (single HTTP proxy");
    println!("for its external path).");
    save_json("fig11", &dump);
}
