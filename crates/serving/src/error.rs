//! Serving error type.

use std::fmt;
use std::time::Duration;

/// Errors from servers, clients, and wire protocols.
#[derive(Debug)]
pub enum ServingError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// Malformed frame, header, or body.
    Protocol(String),
    /// The remote side reported an inference failure.
    Remote(String),
    /// Model runtime failure.
    Runtime(crayfish_runtime::RuntimeError),
    /// Invalid configuration.
    Config(String),
    /// The server has shut down.
    Closed,
    /// The client's circuit breaker is open: the call failed fast without
    /// touching the network. Retrying after the cooldown may succeed.
    CircuitOpen,
    /// The server shed the request at admission: its queue is full. The
    /// request was never scored; retrying after roughly `retry_after`
    /// (the server's drain-time estimate) may succeed. Unlike `Io`, the
    /// connection and the server are healthy — this is backpressure, not
    /// failure.
    Overloaded {
        /// Server-supplied hint: estimated time until its admission queue
        /// has drained enough to accept new work.
        retry_after: Duration,
    },
}

impl ServingError {
    /// Whether a retry can plausibly succeed. Connection-level failures —
    /// including fail-fast breaker rejections — and admission-control
    /// sheds are transient; protocol, remote-inference, runtime, and
    /// config errors are terminal.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            ServingError::Io(_)
                | ServingError::Closed
                | ServingError::CircuitOpen
                | ServingError::Overloaded { .. }
        )
    }

    /// The server's retry-after hint, if this error carries one.
    pub fn retry_hint(&self) -> Option<Duration> {
        match self {
            ServingError::Overloaded { retry_after } => Some(*retry_after),
            _ => None,
        }
    }
}

impl fmt::Display for ServingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServingError::Io(e) => write!(f, "i/o error: {e}"),
            ServingError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ServingError::Remote(msg) => write!(f, "remote inference error: {msg}"),
            ServingError::Runtime(e) => write!(f, "runtime error: {e}"),
            ServingError::Config(msg) => write!(f, "config error: {msg}"),
            ServingError::Closed => write!(f, "server closed"),
            ServingError::CircuitOpen => write!(f, "circuit breaker open"),
            ServingError::Overloaded { retry_after } => {
                write!(f, "server overloaded; retry after {retry_after:?}")
            }
        }
    }
}

impl std::error::Error for ServingError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServingError::Io(e) => Some(e),
            ServingError::Runtime(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServingError {
    fn from(e: std::io::Error) -> Self {
        ServingError::Io(e)
    }
}

impl From<crayfish_runtime::RuntimeError> for ServingError {
    fn from(e: crayfish_runtime::RuntimeError) -> Self {
        ServingError::Runtime(e)
    }
}

impl From<crayfish_net::NetError> for ServingError {
    fn from(e: crayfish_net::NetError) -> Self {
        match e {
            crayfish_net::NetError::Io(e) => ServingError::Io(e),
            crayfish_net::NetError::Frame(msg) => ServingError::Protocol(msg),
            crayfish_net::NetError::Closed => ServingError::Closed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_detail() {
        assert!(ServingError::Protocol("bad magic".into())
            .to_string()
            .contains("bad magic"));
    }

    #[test]
    fn transient_covers_connection_failures_only() {
        assert!(ServingError::Closed.is_transient());
        assert!(ServingError::CircuitOpen.is_transient());
        assert!(ServingError::Overloaded {
            retry_after: Duration::from_millis(5)
        }
        .is_transient());
        assert_eq!(
            ServingError::Overloaded {
                retry_after: Duration::from_millis(5)
            }
            .retry_hint(),
            Some(Duration::from_millis(5))
        );
        assert_eq!(ServingError::Closed.retry_hint(), None);
        assert!(ServingError::Io(std::io::Error::new(
            std::io::ErrorKind::ConnectionReset,
            "reset"
        ))
        .is_transient());
        assert!(!ServingError::Remote("bad shape".into()).is_transient());
        assert!(!ServingError::Protocol("bad magic".into()).is_transient());
    }

    #[test]
    fn net_errors_map_onto_serving_taxonomy() {
        assert!(matches!(
            ServingError::from(crayfish_net::NetError::Closed),
            ServingError::Closed
        ));
        assert!(matches!(
            ServingError::from(crayfish_net::NetError::Frame("oversized".into())),
            ServingError::Protocol(_)
        ));
        let io = crayfish_net::NetError::Io(std::io::Error::new(
            std::io::ErrorKind::ConnectionReset,
            "reset",
        ));
        assert!(matches!(ServingError::from(io), ServingError::Io(_)));
    }
}
