//! General matrix multiplication and the dense (fully connected) layer.
//!
//! Three tiers, slowest to fastest, all kept callable because the bench
//! ablation (`crayfish-bench`, `micro_gemm`) measures each step:
//!
//! 1. [`matmul_naive`] — textbook `i-j-p` oracle, tests only;
//! 2. [`gemm_ipj`] — the original streaming kernel ("seed"); still the best
//!    choice for tiny products where packing overhead dominates;
//! 3. the blocked path — operands packed into strip panels
//!    ([`crate::kernels::pack`]), driven through the `MR×NR` register-tiled
//!    microkernel ([`crate::kernels::microkernel`]) with `KC`/`MC`/`NC`
//!    cache blocking, optionally spread across the worker pool
//!    ([`crate::par`]).
//!
//! The public [`gemm`] keeps the historic signature and routes by problem
//! size; hot paths (the executors) call the `_scratch`/`_prepacked` entry
//! points instead so packing buffers come from a caller-owned
//! [`GemmScratch`] and weight operands are packed once at plan-compile
//! time.

use crate::kernels::microkernel::{
    microkernel, padded_qk, q8_microkernel, store_tile_add, store_tile_dequant, KC, MC_STRIPS, MR,
    NC_STRIPS, NR, QMR, QNR,
};
use crate::kernels::pack::{
    a_strips, b_strips, pack_a_into, pack_b_into, packed_a_len, packed_b_len, q_cols, q_rows,
    quant_a_len, quant_b_len, quantize_a_into, quantize_patches_into,
};
use crate::kernels::quant::{amax, expand_f16_into, f16_bits_to_f32, quant_scales};
use crate::packed::{
    with_tls_scratch, DenseWeights, GemmScratch, PackedA, PackedA16, PackedB, PackedB16,
    QuantizedA, QuantizedB,
};
use crate::par::ThreadPool;

/// Below this `m·k·n` the packed path's pack+store overhead outweighs its
/// FLOP rate and [`gemm_ipj`] wins (measured in `micro_gemm`; a 32³ GEMM
/// sits right at the crossover).
pub(crate) const SMALL_GEMM_WORK: usize = 32 * 32 * 32;

/// Below this `m·k·n` a single core finishes faster than the pool's
/// submit/merge handshake can pay for itself (~a 128³ GEMM per worker).
pub(crate) const MT_MIN_WORK: usize = 2 * 1024 * 1024;

/// `C += A * B` where `A` is `m×k`, `B` is `k×n`, `C` is `m×n`, all
/// row-major.
///
/// Compatibility entry point: routes to [`gemm_ipj`] for small problems and
/// otherwise to the blocked path with a thread-local scratch (and the
/// global worker pool when the problem is large enough). Callers with a hot
/// loop should hold their own [`GemmScratch`] and use [`gemm_scratch`] or
/// the prepacked variants.
///
/// # Panics
/// Panics if the slice lengths do not match the given dimensions.
pub fn gemm(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    if m * k * n <= SMALL_GEMM_WORK {
        gemm_ipj(a, b, c, m, k, n);
    } else {
        with_tls_scratch(|scratch| gemm_scratch(a, b, c, m, k, n, scratch));
    }
}

/// The original streaming kernel: `i-p-j` loop order keeps the innermost
/// loop running over contiguous rows of `B` and `C`, which LLVM
/// auto-vectorises. No packing, no blocking — optimal for small problems,
/// memory-bound on large ones (every pass over `B` misses cache once `B`
/// outgrows L2). Kept verbatim as the ablation baseline and small-size
/// path.
pub fn gemm_ipj(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "gemm: A length");
    assert_eq!(b.len(), k * n, "gemm: B length");
    assert_eq!(c.len(), m * n, "gemm: C length");
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (p, &av) in a_row.iter().enumerate() {
            let b_row = &b[p * n..(p + 1) * n];
            for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                *cv += av * bv;
            }
        }
    }
}

/// Cache-blocked `i-p-j` without packing: the `K` dimension is tiled by
/// [`KC`] and rows by `MC` so the touched slice of `B` stays cache-resident
/// across the row block. The middle rung of the ablation ladder — isolates
/// the benefit of blocking from the benefit of packing.
pub fn gemm_tiled_unpacked(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "gemm: A length");
    assert_eq!(b.len(), k * n, "gemm: B length");
    assert_eq!(c.len(), m * n, "gemm: C length");
    let mc = MC_STRIPS * MR;
    for pc in (0..k).step_by(KC) {
        let kc = KC.min(k - pc);
        for ic in (0..m).step_by(mc) {
            let ic_end = (ic + mc).min(m);
            for i in ic..ic_end {
                let a_row = &a[i * k + pc..i * k + pc + kc];
                let c_row = &mut c[i * n..(i + 1) * n];
                for (p, &av) in a_row.iter().enumerate() {
                    let b_row = &b[(pc + p) * n..(pc + p + 1) * n];
                    for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                        *cv += av * bv;
                    }
                }
            }
        }
    }
}

/// The blocked driver over packed operands: `C += A * B` restricted to row
/// strips `[s0, s1)` of `A`, writing into `c` whose row 0 is global row
/// `c_row0` (leading dimension `n`). The loop nest is the classic
/// `jc → pc → ic → jr → ir` order so a [`KC`]`×NC` slice of packed `B`
/// stays in L2/L3, an `MC×`[`KC`] slice of packed `A` in L2, and one `B`
/// strip slice in L1 across the `ir` loop.
#[allow(clippy::too_many_arguments)] // a GEMM driver's natural signature
pub(crate) fn gemm_packed_region(
    pa: &[f32],
    pb: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    s0: usize,
    s1: usize,
    c_row0: usize,
) {
    let bs = b_strips(n);
    for jcb in (0..bs).step_by(NC_STRIPS) {
        let jc_end = (jcb + NC_STRIPS).min(bs);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            for icb in (s0..s1).step_by(MC_STRIPS) {
                let ic_end = (icb + MC_STRIPS).min(s1);
                for js in jcb..jc_end {
                    let b_panel = &pb[js * k * NR + pc * NR..][..kc * NR];
                    let col0 = js * NR;
                    let nr_eff = NR.min(n - col0);
                    for is in icb..ic_end {
                        let a_panel = &pa[is * k * MR + pc * MR..][..kc * MR];
                        let acc = microkernel(a_panel, b_panel, kc);
                        let row0 = is * MR;
                        let mr_eff = MR.min(m - row0);
                        store_tile_add(&acc, c, n, row0 - c_row0, col0, mr_eff, nr_eff);
                    }
                }
            }
        }
    }
}

fn pack_both(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, scratch: &mut GemmScratch) {
    assert_eq!(a.len(), m * k, "gemm: A length");
    assert_eq!(b.len(), k * n, "gemm: B length");
    pack_a_into(a, m, k, scratch.pa_mut(packed_a_len(m, k)));
    pack_b_into(b, k, n, scratch.pb_mut(packed_b_len(k, n)));
}

/// Blocked `C += A * B` with caller-owned packing scratch; uses the global
/// worker pool when the problem is large enough ([`MT_MIN_WORK`]) and a
/// pool is configured.
pub fn gemm_scratch(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    scratch: &mut GemmScratch,
) {
    assert_eq!(c.len(), m * n, "gemm: C length");
    pack_both(a, b, m, k, n, scratch);
    if m * k * n >= MT_MIN_WORK {
        if let Some(pool) = crate::par::global() {
            pool.gemm(scratch.pa_arc(), scratch.pb_arc(), c, m, k, n);
            return;
        }
    }
    gemm_packed_region(
        scratch.pa_arc(),
        scratch.pb_arc(),
        c,
        m,
        k,
        n,
        0,
        a_strips(m),
        0,
    );
}

/// Blocked `C += A * B`, forced single-threaded. Ablation rung
/// "tiled+packed"; also what [`gemm_scratch`] degrades to without a pool.
pub fn gemm_st(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    scratch: &mut GemmScratch,
) {
    assert_eq!(c.len(), m * n, "gemm: C length");
    pack_both(a, b, m, k, n, scratch);
    gemm_packed_region(
        scratch.pa_arc(),
        scratch.pb_arc(),
        c,
        m,
        k,
        n,
        0,
        a_strips(m),
        0,
    );
}

/// Blocked `C += A * B` on an explicit pool regardless of problem size.
/// Used by the bench ablation and the loom models, which need the
/// threading path exercised deterministically.
#[allow(clippy::too_many_arguments)]
pub fn gemm_with_pool(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    scratch: &mut GemmScratch,
    pool: &ThreadPool,
) {
    assert_eq!(c.len(), m * n, "gemm: C length");
    pack_both(a, b, m, k, n, scratch);
    pool.gemm(scratch.pa_arc(), scratch.pb_arc(), c, m, k, n);
}

/// `C += A * B` with `A` pre-packed (convolution weights in executor
/// plans). Only `B` — the per-call activation operand — is packed here,
/// into the caller's scratch.
pub fn gemm_prepacked_a(
    pa: &PackedA,
    b: &[f32],
    c: &mut [f32],
    n: usize,
    scratch: &mut GemmScratch,
) {
    let (m, k) = (pa.m(), pa.k());
    assert_eq!(b.len(), k * n, "gemm: B length");
    assert_eq!(c.len(), m * n, "gemm: C length");
    pack_b_into(b, k, n, scratch.pb_mut(packed_b_len(k, n)));
    if m * k * n >= MT_MIN_WORK {
        if let Some(pool) = crate::par::global() {
            pool.gemm(pa.data(), scratch.pb_arc(), c, m, k, n);
            return;
        }
    }
    gemm_packed_region(pa.data(), scratch.pb_arc(), c, m, k, n, 0, a_strips(m), 0);
}

/// `C += A * B` with `B` pre-packed (dense weights in executor plans).
pub fn gemm_prepacked_b(
    a: &[f32],
    pb: &PackedB,
    c: &mut [f32],
    m: usize,
    scratch: &mut GemmScratch,
) {
    let (k, n) = (pb.k(), pb.n());
    assert_eq!(a.len(), m * k, "gemm: A length");
    assert_eq!(c.len(), m * n, "gemm: C length");
    pack_a_into(a, m, k, scratch.pa_mut(packed_a_len(m, k)));
    if m * k * n >= MT_MIN_WORK {
        if let Some(pool) = crate::par::global() {
            pool.gemm(scratch.pa_arc(), pb.data(), c, m, k, n);
            return;
        }
    }
    gemm_packed_region(scratch.pa_arc(), pb.data(), c, m, k, n, 0, a_strips(m), 0);
}

/// Column tiles of quantized `B` processed per block of the int8 driver:
/// 16 tiles = 64 columns, so a `64 × padded_qk(k)` i16 slab (≤ ~0.6 MB at
/// ResNet's deepest `k`) stays L2-resident while every `A` row tile streams
/// over it once.
const QNC_TILES: usize = 16;

/// The int8 GEMM driver: `C += dequant(Aq · Bq)` over quantized panels.
///
/// Both operands are stored as contiguous full-K channel vectors (see
/// [`q8_microkernel`] for the layout contract), so unlike the f32 path
/// there is no `KC` blocking — an `i32` accumulator holds a full-K int8 dot
/// exactly. Panels are padded to whole `QMR`/`QNR` tiles at quantize time,
/// which keeps this loop nest edge-free; [`store_tile_dequant`] clips the
/// store to the real `m×n` corner and applies the per-row (`sa`) and
/// per-column (`sb`) scales.
#[allow(clippy::too_many_arguments)] // a GEMM driver's natural signature
pub(crate) fn gemm_q8_region(
    qa: &[i16],
    sa: &[f32],
    qb: &[i16],
    sb: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    let kp = padded_qk(k);
    let row_tiles = q_rows(m) / QMR;
    let col_tiles = q_cols(n) / QNR;
    for jcb in (0..col_tiles).step_by(QNC_TILES) {
        let jc_end = (jcb + QNC_TILES).min(col_tiles);
        for it in 0..row_tiles {
            let a_panel = &qa[it * QMR * kp..(it + 1) * QMR * kp];
            let row0 = it * QMR;
            let mr_eff = QMR.min(m - row0);
            for jt in jcb..jc_end {
                let b_panel = &qb[jt * QNR * kp..(jt + 1) * QNR * kp];
                let col0 = jt * QNR;
                let nr_eff = QNR.min(n - col0);
                let acc = q8_microkernel(a_panel, b_panel, kp);
                store_tile_dequant(&acc, c, n, row0, col0, mr_eff, nr_eff, sa, sb);
            }
        }
    }
}

/// `C += A * B` with `A` int8-quantized at plan-compile time (conv weights,
/// per-output-channel scales) and `B` — an `im2col` activation matrix —
/// quantized here per call with a single per-tensor scale, into the
/// caller's scratch. Single-threaded: the int8 path targets the
/// latency-per-core regime, and the full-K panel layout has no `KC` seams
/// to split across workers.
pub fn gemm_prepacked_qa(
    qa: &QuantizedA,
    b: &[f32],
    c: &mut [f32],
    n: usize,
    scratch: &mut GemmScratch,
) {
    let (m, k) = (qa.m(), qa.k());
    assert_eq!(b.len(), k * n, "gemm: B length");
    assert_eq!(c.len(), m * n, "gemm: C length");
    let (qbuf, sbuf) = scratch.qa_qs_mut(quant_b_len(k, n), n);
    let (scale, inv) = quant_scales(amax(b));
    quantize_patches_into(b, k, n, inv, qbuf);
    sbuf.fill(scale);
    gemm_q8_region(qa.data(), qa.scales(), scratch.qa(), scratch.qs(), c, m, k, n);
}

/// `C += A * B` with `B` int8-quantized at plan-compile time (dense
/// weights, per-output-feature scales) and `A` — the activation rows —
/// quantized here per call, one scale per batch row, into the caller's
/// scratch.
pub fn gemm_prepacked_qb(
    a: &[f32],
    qb: &QuantizedB,
    c: &mut [f32],
    m: usize,
    scratch: &mut GemmScratch,
) {
    let (k, n) = (qb.k(), qb.n());
    assert_eq!(a.len(), m * k, "gemm: A length");
    assert_eq!(c.len(), m * n, "gemm: C length");
    let (qbuf, sbuf) = scratch.qa_qs_mut(quant_a_len(m, k), m);
    quantize_a_into(a, m, k, qbuf, sbuf);
    gemm_q8_region(scratch.qa(), scratch.qs(), qb.data(), qb.scales(), c, m, k, n);
}

/// `C += A * B` with `A` stored as f16 panels: the panels are block-expanded
/// to f32 in the caller's scratch — one conversion amortised over the whole
/// GEMM — and driven through the unchanged f32 blocked path, so accumulation
/// is f32 throughout.
pub fn gemm_prepacked_a16(
    pa: &PackedA16,
    b: &[f32],
    c: &mut [f32],
    n: usize,
    scratch: &mut GemmScratch,
) {
    let (m, k) = (pa.m(), pa.k());
    assert_eq!(b.len(), k * n, "gemm: B length");
    assert_eq!(c.len(), m * n, "gemm: C length");
    expand_f16_into(pa.data(), scratch.pa_mut(packed_a_len(m, k)));
    pack_b_into(b, k, n, scratch.pb_mut(packed_b_len(k, n)));
    if m * k * n >= MT_MIN_WORK {
        if let Some(pool) = crate::par::global() {
            pool.gemm(scratch.pa_arc(), scratch.pb_arc(), c, m, k, n);
            return;
        }
    }
    gemm_packed_region(
        scratch.pa_arc(),
        scratch.pb_arc(),
        c,
        m,
        k,
        n,
        0,
        a_strips(m),
        0,
    );
}

/// `C += A * B` with `B` stored as f16 panels (see [`gemm_prepacked_a16`]).
pub fn gemm_prepacked_b16(
    a: &[f32],
    pb: &PackedB16,
    c: &mut [f32],
    m: usize,
    scratch: &mut GemmScratch,
) {
    let (k, n) = (pb.k(), pb.n());
    assert_eq!(a.len(), m * k, "gemm: A length");
    assert_eq!(c.len(), m * n, "gemm: C length");
    pack_a_into(a, m, k, scratch.pa_mut(packed_a_len(m, k)));
    expand_f16_into(pb.data(), scratch.pb_mut(packed_b_len(k, n)));
    if m * k * n >= MT_MIN_WORK {
        if let Some(pool) = crate::par::global() {
            pool.gemm(scratch.pa_arc(), scratch.pb_arc(), c, m, k, n);
            return;
        }
    }
    gemm_packed_region(
        scratch.pa_arc(),
        scratch.pb_arc(),
        c,
        m,
        k,
        n,
        0,
        a_strips(m),
        0,
    );
}

/// Skinny-batch streaming kernel over f32 `B` panels: [`gemm_ipj`]'s access
/// pattern re-expressed over the strip layout, so executors can serve
/// batch < [`MR`] dense layers straight from the packed weights instead of
/// keeping a second row-major copy. Each `B` element is read exactly once;
/// the inner loop is a contiguous `NR`-wide span.
pub fn gemm_prepacked_b_ipj(a: &[f32], pb: &PackedB, c: &mut [f32], m: usize) {
    let (k, n) = (pb.k(), pb.n());
    assert_eq!(a.len(), m * k, "gemm: A length");
    assert_eq!(c.len(), m * n, "gemm: C length");
    let data = pb.data();
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for s in 0..b_strips(n) {
            let col0 = s * NR;
            let cols = NR.min(n - col0);
            let strip = &data[s * k * NR..];
            let c_seg = &mut c_row[col0..col0 + cols];
            for (p, &av) in a_row.iter().enumerate() {
                let b_row = &strip[p * NR..p * NR + cols];
                for (cv, &bv) in c_seg.iter_mut().zip(b_row) {
                    *cv += av * bv;
                }
            }
        }
    }
}

/// Skinny-batch streaming kernel over f16 `B` panels: each strip of `B` is
/// read exactly once and converted in-register, so a memory-bound GEMM
/// (batch < [`MR`], huge `k×n` — e.g. the ResNet fc layer at batch 1) moves
/// half the bytes of its f32 counterpart with no expansion buffer at all.
/// The strip-inner loop is `NR` wide and the f16 decode is branch-free, so
/// both vectorise.
pub fn gemm_prepacked_b16_ipj(a: &[f32], pb: &PackedB16, c: &mut [f32], m: usize) {
    let (k, n) = (pb.k(), pb.n());
    assert_eq!(a.len(), m * k, "gemm: A length");
    assert_eq!(c.len(), m * n, "gemm: C length");
    let data = pb.data();
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for s in 0..b_strips(n) {
            let col0 = s * NR;
            let cols = NR.min(n - col0);
            let strip = &data[s * k * NR..];
            let c_seg = &mut c_row[col0..col0 + cols];
            for (p, &av) in a_row.iter().enumerate() {
                let b_row = &strip[p * NR..p * NR + cols];
                for (cv, &bits) in c_seg.iter_mut().zip(b_row) {
                    *cv += av * f16_bits_to_f32(bits);
                }
            }
        }
    }
}

/// Textbook triple-loop matmul returning a fresh buffer. Used only as the
/// reference implementation in tests and property checks.
pub fn matmul_naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), k * n);
    let mut c = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a[i * k + p] * b[p * n + j];
            }
            c[i * n + j] = acc;
        }
    }
    c
}

/// Fully connected layer: `out = x * w + bias` where `x` is
/// `[batch, in_features]`, `w` is `[in_features, out_features]`, and `bias`
/// has `out_features` elements broadcast across the batch. Allocating
/// compatibility wrapper over [`dense_into`].
pub fn dense(
    x: &[f32],
    w: &[f32],
    bias: &[f32],
    batch: usize,
    inf: usize,
    outf: usize,
) -> Vec<f32> {
    let mut out = vec![0.0f32; batch * outf];
    with_tls_scratch(|scratch| dense_into(x, w, bias, batch, inf, outf, &mut out, scratch));
    out
}

/// [`dense`] into a caller-provided buffer with caller-owned scratch — the
/// allocation-free form the executors drive from their arenas.
#[allow(clippy::too_many_arguments)]
pub fn dense_into(
    x: &[f32],
    w: &[f32],
    bias: &[f32],
    batch: usize,
    inf: usize,
    outf: usize,
    out: &mut [f32],
    scratch: &mut GemmScratch,
) {
    assert_eq!(bias.len(), outf, "dense: bias length");
    assert_eq!(out.len(), batch * outf, "dense: out length");
    for row in out.chunks_exact_mut(outf) {
        row.copy_from_slice(bias);
    }
    if batch * inf * outf <= SMALL_GEMM_WORK || batch < MR {
        // Tiny or skinny batches: packing A wastes MR/batch of the panel;
        // the streaming kernel reads x exactly once either way.
        gemm_ipj(x, w, out, batch, inf, outf);
    } else {
        gemm_scratch(x, w, out, batch, inf, outf, scratch);
    }
}

/// [`dense_into`] against a weight matrix packed once at plan-compile
/// time. Steady-state inference does zero weight packing; only the
/// activation rows are packed, into the caller's scratch.
pub fn dense_prepacked_into(
    x: &[f32],
    w: &PackedB,
    bias: &[f32],
    batch: usize,
    out: &mut [f32],
    scratch: &mut GemmScratch,
) {
    let outf = w.n();
    assert_eq!(bias.len(), outf, "dense: bias length");
    assert_eq!(out.len(), batch * outf, "dense: out length");
    for row in out.chunks_exact_mut(outf) {
        row.copy_from_slice(bias);
    }
    gemm_prepacked_b(x, w, out, batch, scratch);
}

/// The precision-dispatched dense layer: `out = x · w + bias` against
/// weights prepacked at plan-compile time in any supported precision. The
/// executors' single dense entry point — the per-layer precision decision
/// is data (`DenseWeights`), made once at plan compile, and this function
/// routes each call to the matching kernel:
///
/// * f32 → the packed-panel path, or the strip-streaming `ipj` kernel when
///   the batch is too skinny to fill an `A` panel;
/// * int8 → per-row activation quantization + the `vpmaddwd` driver with a
///   dequantizing store;
/// * f16 → half-width weight panels expanded on the fly (skinny batch) or
///   block-expanded into scratch (full batch), f32 accumulation either way.
///
/// All paths write `bias` then accumulate, allocate nothing, and agree with
/// [`dense_into`] up to the respective precision's error.
#[allow(clippy::too_many_arguments)]
pub fn dense_dispatch_into(
    x: &[f32],
    w: &DenseWeights,
    bias: &[f32],
    batch: usize,
    out: &mut [f32],
    scratch: &mut GemmScratch,
) {
    let outf = w.outf();
    assert_eq!(bias.len(), outf, "dense: bias length");
    assert_eq!(out.len(), batch * outf, "dense: out length");
    for row in out.chunks_exact_mut(outf) {
        row.copy_from_slice(bias);
    }
    match w {
        DenseWeights::F32(pb) => {
            if batch < MR {
                gemm_prepacked_b_ipj(x, pb, out, batch);
            } else {
                gemm_prepacked_b(x, pb, out, batch, scratch);
            }
        }
        DenseWeights::Int8(qb) => gemm_prepacked_qb(x, qb, out, batch, scratch),
        DenseWeights::F16(pb16) => {
            if batch < MR {
                gemm_prepacked_b16_ipj(x, pb16, out, batch);
            } else {
                gemm_prepacked_b16(x, pb16, out, batch, scratch);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn gemm_matches_hand_computed() {
        // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let b = vec![5.0, 6.0, 7.0, 8.0];
        let mut c = vec![0.0; 4];
        gemm(&a, &b, &mut c, 2, 2, 2);
        assert_eq!(c, vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn gemm_accumulates_into_c() {
        let a = vec![1.0];
        let b = vec![2.0];
        let mut c = vec![10.0];
        gemm(&a, &b, &mut c, 1, 1, 1);
        assert_eq!(c, vec![12.0]);
    }

    #[test]
    fn dense_applies_bias_per_row() {
        // x = [[1, 1], [2, 2]], w = identity, bias = [10, 20]
        let x = vec![1.0, 1.0, 2.0, 2.0];
        let w = vec![1.0, 0.0, 0.0, 1.0];
        let out = dense(&x, &w, &[10.0, 20.0], 2, 2, 2);
        assert_eq!(out, vec![11.0, 21.0, 12.0, 22.0]);
    }

    #[test]
    fn non_square_shapes() {
        // 1x3 * 3x2
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let mut c = vec![0.0; 2];
        gemm(&a, &b, &mut c, 1, 3, 2);
        assert_eq!(c, vec![22.0, 28.0]);
    }

    #[test]
    fn packed_paths_match_naive_on_edge_remainders() {
        // Dimensions straddling every MR/NR strip boundary near one strip.
        let mut scratch = GemmScratch::new();
        let dims = [1usize, 2, MR - 1, MR, MR + 1, NR - 1, NR, NR + 1, 33];
        for &m in &dims {
            for &k in &[1usize, 3, 17] {
                for &n in &dims {
                    let a = crate::Tensor::seeded_uniform([m, k], 11, -1.0, 1.0);
                    let b = crate::Tensor::seeded_uniform([k, n], 13, -1.0, 1.0);
                    let reference = matmul_naive(a.data(), b.data(), m, k, n);
                    let mut c = vec![0.0f32; m * n];
                    gemm_st(a.data(), b.data(), &mut c, m, k, n, &mut scratch);
                    for i in 0..m * n {
                        assert!(
                            (c[i] - reference[i]).abs() < 1e-4,
                            "st ({m},{k},{n})[{i}]: {} vs {}",
                            c[i],
                            reference[i]
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn prepacked_variants_match_dense_and_gemm() {
        let mut scratch = GemmScratch::new();
        let (m, k, n) = (10usize, 19usize, 21usize);
        let a = crate::Tensor::seeded_uniform([m, k], 3, -1.0, 1.0);
        let b = crate::Tensor::seeded_uniform([k, n], 4, -1.0, 1.0);
        let reference = matmul_naive(a.data(), b.data(), m, k, n);

        let pa = crate::packed::PackedA::pack(a.data(), m, k);
        let mut c1 = vec![0.0f32; m * n];
        gemm_prepacked_a(&pa, b.data(), &mut c1, n, &mut scratch);

        let pb = crate::packed::PackedB::pack(b.data(), k, n);
        let mut c2 = vec![0.0f32; m * n];
        gemm_prepacked_b(a.data(), &pb, &mut c2, m, &mut scratch);

        for i in 0..m * n {
            assert!((c1[i] - reference[i]).abs() < 1e-4, "prepacked_a [{i}]");
            assert!((c2[i] - reference[i]).abs() < 1e-4, "prepacked_b [{i}]");
        }

        let bias: Vec<f32> = (0..n).map(|v| v as f32 / 7.0).collect();
        let via_dense = dense(a.data(), b.data(), &bias, m, k, n);
        let mut via_packed = vec![0.0f32; m * n];
        dense_prepacked_into(a.data(), &pb, &bias, m, &mut via_packed, &mut scratch);
        for i in 0..m * n {
            assert!(
                (via_dense[i] - via_packed[i]).abs() < 1e-4,
                "dense prepacked [{i}]"
            );
        }
    }

    #[test]
    fn q8_prepacked_variants_match_naive_within_quant_error() {
        let mut scratch = GemmScratch::new();
        for &(m, k, n) in &[(1usize, 19usize, 21usize), (7, 40, 9), (12, 64, 33)] {
            let a = crate::Tensor::seeded_uniform([m, k], 5, -1.0, 1.0);
            let b = crate::Tensor::seeded_uniform([k, n], 6, -1.0, 1.0);
            let reference = matmul_naive(a.data(), b.data(), m, k, n);
            // Worst-case dequant error per output: k rounding steps of at
            // most scale_a/2 · amax_b + scale_b/2 · amax_a ≈ k · amax²/127.
            let bound = k as f32 / 127.0 * 1.2;

            let qa = QuantizedA::from_f32(a.data(), m, k);
            let mut c1 = vec![0.0f32; m * n];
            gemm_prepacked_qa(&qa, b.data(), &mut c1, n, &mut scratch);

            let qb = QuantizedB::from_f32(b.data(), k, n);
            let mut c2 = vec![0.0f32; m * n];
            gemm_prepacked_qb(a.data(), &qb, &mut c2, m, &mut scratch);

            for i in 0..m * n {
                assert!(
                    (c1[i] - reference[i]).abs() < bound,
                    "qa ({m},{k},{n})[{i}]: {} vs {}",
                    c1[i],
                    reference[i]
                );
                assert!(
                    (c2[i] - reference[i]).abs() < bound,
                    "qb ({m},{k},{n})[{i}]: {} vs {}",
                    c2[i],
                    reference[i]
                );
            }
        }
    }

    #[test]
    fn q8_is_exact_when_inputs_are_scaled_integers() {
        // Rows/columns whose amax is 127 · 2⁻ᵉ and whose entries are
        // multiples of the scale quantize losslessly, so the int8 path must
        // reproduce the f32 result exactly.
        let (m, k, n) = (5usize, 24usize, 10usize);
        let a: Vec<f32> = (0..m * k).map(|v| (v * 41 % 255) as f32 - 127.0).collect();
        let b: Vec<f32> = (0..k * n)
            .map(|v| ((v * 29 % 255) as f32 - 127.0) * 0.5)
            .collect();
        // Force every channel to contain ±amax so scales are exact.
        let mut a = a;
        let mut b = b;
        for r in 0..m {
            a[r * k] = 127.0;
        }
        for v in b.iter_mut().take(n) {
            *v = 63.5;
        }
        let reference = matmul_naive(&a, &b, m, k, n);
        let qa = QuantizedA::from_f32(&a, m, k);
        let qb = QuantizedB::from_f32(&b, k, n);
        let mut scratch = GemmScratch::new();
        let mut c = vec![0.0f32; m * n];
        gemm_prepacked_qb(&a, &qb, &mut c, m, &mut scratch);
        // The activation side (A) quantizes itself per call; its entries are
        // integers in [-127, 127] with amax 127, so it is lossless too.
        for i in 0..m * n {
            assert_eq!(c[i], reference[i], "qb exact [{i}]");
        }
        let mut c = vec![0.0f32; m * n];
        gemm_prepacked_qa(&qa, &b, &mut c, n, &mut scratch);
        // B side uses one per-tensor scale; entries are multiples of 0.5
        // and amax = 63.5 = 127 · 0.5, so it is lossless as well.
        for i in 0..m * n {
            assert_eq!(c[i], reference[i], "qa exact [{i}]");
        }
    }

    #[test]
    fn f16_prepacked_variants_match_naive_within_half_precision() {
        let mut scratch = GemmScratch::new();
        for &(m, k, n) in &[(1usize, 19, 40), (4, 33, 21), (10, 64, 33)] {
            let a = crate::Tensor::seeded_uniform([m, k], 8, -1.0, 1.0);
            let b = crate::Tensor::seeded_uniform([k, n], 9, -1.0, 1.0);
            let reference = matmul_naive(a.data(), b.data(), m, k, n);
            // Each product has relative error ≤ 2⁻¹¹ from rounding B (A and
            // the accumulation stay f32); k of them sum.
            let bound = k as f32 * (1.0 / 2048.0) + 1e-4;

            let pa16 = PackedA16::pack(a.data(), m, k);
            let mut c1 = vec![0.0f32; m * n];
            gemm_prepacked_a16(&pa16, b.data(), &mut c1, n, &mut scratch);

            let pb16 = PackedB16::pack(b.data(), k, n);
            let mut c2 = vec![0.0f32; m * n];
            gemm_prepacked_b16(a.data(), &pb16, &mut c2, m, &mut scratch);

            let mut c3 = vec![0.0f32; m * n];
            gemm_prepacked_b16_ipj(a.data(), &pb16, &mut c3, m);

            for i in 0..m * n {
                assert!((c1[i] - reference[i]).abs() < bound, "a16 ({m},{k},{n})[{i}]");
                assert!((c2[i] - reference[i]).abs() < bound, "b16 ({m},{k},{n})[{i}]");
                // ipj and the blocked driver sum in different orders.
                assert!((c2[i] - c3[i]).abs() < 1e-4, "b16 ipj vs blocked [{i}]");
            }
        }
    }

    #[test]
    fn prepacked_b_ipj_matches_blocked_path() {
        let mut scratch = GemmScratch::new();
        for &(m, k, n) in &[(1usize, 17, 45), (MR - 1, 30, NR + 1), (9, 12, 7)] {
            let a = crate::Tensor::seeded_uniform([m, k], 14, -1.0, 1.0);
            let b = crate::Tensor::seeded_uniform([k, n], 15, -1.0, 1.0);
            let pb = crate::packed::PackedB::pack(b.data(), k, n);
            let mut c1 = vec![0.0f32; m * n];
            gemm_prepacked_b_ipj(a.data(), &pb, &mut c1, m);
            let mut c2 = vec![0.0f32; m * n];
            gemm_prepacked_b(a.data(), &pb, &mut c2, m, &mut scratch);
            for i in 0..m * n {
                assert!(
                    (c1[i] - c2[i]).abs() < 1e-4,
                    "ipj vs blocked ({m},{k},{n})[{i}]"
                );
            }
        }
    }

    #[test]
    fn dense_dispatch_routes_all_precisions() {
        let mut scratch = GemmScratch::new();
        // Cover both the skinny (batch < MR) and full-panel arms.
        for &(batch, inf, outf) in &[(1usize, 20usize, 33usize), (8, 20, 33)] {
            let x = crate::Tensor::seeded_uniform([batch, inf], 21, -1.0, 1.0);
            let w = crate::Tensor::seeded_uniform([inf, outf], 22, -1.0, 1.0);
            let bias: Vec<f32> = (0..outf).map(|v| v as f32 / 9.0).collect();
            let oracle = dense(x.data(), w.data(), &bias, batch, inf, outf);

            let weights = [
                DenseWeights::F32(PackedB::pack(w.data(), inf, outf)),
                DenseWeights::Int8(QuantizedB::from_f32(w.data(), inf, outf)),
                DenseWeights::F16(PackedB16::pack(w.data(), inf, outf)),
            ];
            for dw in &weights {
                let mut out = vec![0.0f32; batch * outf];
                dense_dispatch_into(x.data(), dw, &bias, batch, &mut out, &mut scratch);
                let bound = match dw.precision_name() {
                    "f32" => 1e-4,
                    _ => inf as f32 / 127.0 * 1.2,
                };
                for i in 0..batch * outf {
                    assert!(
                        (out[i] - oracle[i]).abs() < bound,
                        "{} b{batch} [{i}]: {} vs {}",
                        dw.precision_name(),
                        out[i],
                        oracle[i]
                    );
                }
            }
        }
    }

    proptest! {
        #[test]
        fn gemm_matches_naive(
            m in 1usize..6,
            k in 1usize..6,
            n in 1usize..6,
            seed in any::<u64>(),
        ) {
            let a = crate::Tensor::seeded_uniform([m, k], seed, -1.0, 1.0);
            let b = crate::Tensor::seeded_uniform([k, n], seed.wrapping_add(1), -1.0, 1.0);
            let mut c = vec![0.0f32; m * n];
            gemm(a.data(), b.data(), &mut c, m, k, n);
            let reference = matmul_naive(a.data(), b.data(), m, k, n);
            for (x, y) in c.iter().zip(&reference) {
                prop_assert!((x - y).abs() < 1e-4, "{x} vs {y}");
            }
        }

        #[test]
        fn tiled_and_packed_match_naive(
            m in 1usize..40,
            k in 1usize..40,
            n in 1usize..40,
            seed in any::<u64>(),
        ) {
            let a = crate::Tensor::seeded_uniform([m, k], seed, -1.0, 1.0);
            let b = crate::Tensor::seeded_uniform([k, n], seed.wrapping_add(1), -1.0, 1.0);
            let c0 = crate::Tensor::seeded_uniform([m, n], seed.wrapping_add(2), -1.0, 1.0);
            let reference = matmul_naive(a.data(), b.data(), m, k, n);

            let mut c_tiled = c0.data().to_vec();
            gemm_tiled_unpacked(a.data(), b.data(), &mut c_tiled, m, k, n);

            let mut scratch = GemmScratch::new();
            let mut c_packed = c0.data().to_vec();
            gemm_st(a.data(), b.data(), &mut c_packed, m, k, n, &mut scratch);

            for i in 0..m * n {
                let expect = c0.data()[i] + reference[i];
                prop_assert!((c_tiled[i] - expect).abs() < 1e-4, "tiled [{i}]");
                prop_assert!((c_packed[i] - expect).abs() < 1e-4, "packed [{i}]");
            }
        }
    }
}
