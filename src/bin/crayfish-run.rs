//! `crayfish-run` — execute one experiment described by a JSON config file.
//!
//! The configuration surface of the paper's framework: pick a stream
//! processor, a serving tool, a model, and Table 1's workload parameters in
//! a file, and get latency/throughput numbers back.
//!
//! ```sh
//! cargo run --release --bin crayfish-run -- configs/flink-onnx-ffnn.json
//! cargo run --release --bin crayfish-run -- config.json --json         # machine-readable
//! cargo run --release --bin crayfish-run -- config.json --sustainable  # ST search
//! ```

#![forbid(unsafe_code)]

use std::process::ExitCode;

use crayfish::framework::metrics::bucketize;
use crayfish::framework::runner::{find_sustainable_rate, StSearchOptions};
use crayfish::framework::{run_experiment, ExperimentConfig};
use crayfish::registry;

fn usage() -> ExitCode {
    eprintln!("usage: crayfish-run <config.json> [--json] [--sustainable]");
    eprintln!();
    eprintln!("Engines: {}", registry::engine_names().join(", "));
    eprintln!("See crates/core/src/config.rs for the config schema.");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json_output = args.iter().any(|a| a == "--json");
    let Some(path) = args.iter().find(|a| !a.starts_with("--")) else {
        return usage();
    };

    let config = match ExperimentConfig::from_file(std::path::Path::new(path)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(processor) = registry::processor_by_name(&config.processor) else {
        eprintln!(
            "error: unknown processor {:?} (available: {})",
            config.processor,
            registry::engine_names().join(", ")
        );
        return ExitCode::FAILURE;
    };
    let spec = match config.to_spec() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    if args.iter().any(|a| a == "--sustainable") {
        eprintln!(
            "searching sustainable throughput for {} | {} | {} (bsz={} mp={}) ...",
            config.processor,
            spec.serving.label(),
            config.model,
            spec.bsz,
            spec.mp
        );
        let opts = StSearchOptions {
            probe: spec.duration,
            ..Default::default()
        };
        return match find_sustainable_rate(processor.as_ref(), &spec, opts) {
            Ok(st) => {
                if json_output {
                    println!("{}", serde_json::json!({ "sustainable_eps": st }));
                } else {
                    println!("sustainable throughput: {st:.1} events/s");
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }

    eprintln!(
        "running {} | {} | {} | bsz={} mp={} for {:?} ...",
        config.processor,
        spec.serving.label(),
        config.model,
        spec.bsz,
        spec.mp,
        spec.duration
    );
    let result = match run_experiment(processor.as_ref(), &spec) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    if json_output {
        let buckets = bucketize(&result.samples, 1_000.0);
        let out = serde_json::json!({
            "config": config,
            "produced": result.produced,
            "consumed": result.consumed,
            "throughput_eps": result.throughput_eps,
            "latency_ms": result.latency,
            "per_second": buckets
                .iter()
                .map(|b| serde_json::json!({
                    "t_s": b.start_ms / 1_000.0,
                    "events_per_s": b.throughput_eps,
                    "mean_latency_ms": b.mean_latency_ms,
                }))
                .collect::<Vec<_>>(),
        });
        match serde_json::to_string_pretty(&out) {
            Ok(s) => println!("{s}"),
            Err(e) => eprintln!("crayfish-run: serialize result: {e}"),
        }
    } else {
        println!("produced      : {}", result.produced);
        println!("scored        : {}", result.consumed);
        println!("throughput    : {:.1} events/s", result.throughput_eps);
        println!(
            "latency (ms)  : mean {:.2}  std {:.2}  p50 {:.2}  p95 {:.2}  p99 {:.2}  max {:.2}",
            result.latency.mean,
            result.latency.std,
            result.latency.p50,
            result.latency.p95,
            result.latency.p99,
            result.latency.max
        );
    }
    ExitCode::SUCCESS
}
