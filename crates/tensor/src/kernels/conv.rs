//! 2-D convolution: the production `im2col + GEMM` path and a direct
//! reference implementation.

use crate::kernels::gemm::{gemm, gemm_prepacked_a, gemm_prepacked_a16, gemm_prepacked_qa};
use crate::packed::{ConvWeights, GemmScratch, PackedA, PackedA16, QuantizedA};

/// Static parameters of a conv2d op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dParams {
    /// Input channels.
    pub in_c: usize,
    /// Output channels.
    pub out_c: usize,
    /// Kernel height/width (square kernels only — all ResNet50 kernels are).
    pub kernel: usize,
    /// Stride in both dimensions.
    pub stride: usize,
    /// Zero padding on every border.
    pub pad: usize,
}

impl Conv2dParams {
    /// Output spatial size for an `h×w` input.
    pub fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        let oh = (h + 2 * self.pad - self.kernel) / self.stride + 1;
        let ow = (w + 2 * self.pad - self.kernel) / self.stride + 1;
        (oh, ow)
    }

    /// Multiply-accumulate FLOPs (2 per MAC) for one image of `h×w`.
    pub fn flops(&self, h: usize, w: usize) -> u64 {
        let (oh, ow) = self.out_hw(h, w);
        2 * (self.out_c * oh * ow) as u64 * (self.in_c * self.kernel * self.kernel) as u64
    }
}

/// Unfold one NCHW image (`[in_c, h, w]`) into the `im2col` matrix with shape
/// `[in_c * k * k, oh * ow]`, writing into `col` (which must have that many
/// elements; it is fully overwritten).
pub fn im2col(input: &[f32], h: usize, w: usize, p: &Conv2dParams, col: &mut [f32]) {
    let (oh, ow) = p.out_hw(h, w);
    let cols = oh * ow;
    assert_eq!(input.len(), p.in_c * h * w, "im2col: input length");
    assert_eq!(
        col.len(),
        p.in_c * p.kernel * p.kernel * cols,
        "im2col: col length"
    );
    let mut row = 0usize;
    for c in 0..p.in_c {
        let chan = &input[c * h * w..(c + 1) * h * w];
        for ky in 0..p.kernel {
            for kx in 0..p.kernel {
                let out_row = &mut col[row * cols..(row + 1) * cols];
                let mut idx = 0usize;
                for oy in 0..oh {
                    let iy = (oy * p.stride + ky) as isize - p.pad as isize;
                    if iy < 0 || iy >= h as isize {
                        out_row[idx..idx + ow].fill(0.0);
                        idx += ow;
                        continue;
                    }
                    let iy = iy as usize;
                    for ox in 0..ow {
                        let ix = (ox * p.stride + kx) as isize - p.pad as isize;
                        out_row[idx] = if ix < 0 || ix >= w as isize {
                            0.0
                        } else {
                            chan[iy * w + ix as usize]
                        };
                        idx += 1;
                    }
                }
                row += 1;
            }
        }
    }
}

/// Convolution via `im2col` + GEMM for a batch of NCHW images.
///
/// * `input`: `[batch, in_c, h, w]`
/// * `weight`: `[out_c, in_c, k, k]` (used as a `[out_c, in_c*k*k]` matrix)
/// * `bias`: `out_c` elements, or empty for no bias (ResNet convs carry the
///   bias inside the following batch-norm)
/// * `col_scratch`: reusable buffer; resized as needed. Runtimes that reuse
///   arenas pass the same buffer across calls, the naive runtime passes a
///   fresh one each time.
///
/// Returns `[batch, out_c, oh, ow]` data.
#[allow(clippy::too_many_arguments)] // a BLAS-style kernel signature: dims are positional by convention
pub fn conv2d_im2col(
    input: &[f32],
    batch: usize,
    h: usize,
    w: usize,
    weight: &[f32],
    bias: &[f32],
    p: &Conv2dParams,
    col_scratch: &mut Vec<f32>,
) -> Vec<f32> {
    let (oh, ow) = p.out_hw(h, w);
    let cols = oh * ow;
    let krows = p.in_c * p.kernel * p.kernel;
    assert_eq!(weight.len(), p.out_c * krows, "conv2d: weight length");
    col_scratch.resize(krows * cols, 0.0);
    let mut out = vec![0.0f32; batch * p.out_c * cols];
    for b in 0..batch {
        let img = &input[b * p.in_c * h * w..(b + 1) * p.in_c * h * w];
        im2col(img, h, w, p, col_scratch);
        let out_img = &mut out[b * p.out_c * cols..(b + 1) * p.out_c * cols];
        if !bias.is_empty() {
            assert_eq!(bias.len(), p.out_c, "conv2d: bias length");
            for (oc, &bv) in bias.iter().enumerate() {
                out_img[oc * cols..(oc + 1) * cols].fill(bv);
            }
        }
        gemm(weight, col_scratch, out_img, p.out_c, krows, cols);
    }
    out
}

/// Convolution via `im2col` + GEMM against a weight matrix packed once at
/// plan-compile time (`[out_c, in_c*k*k]` as a [`PackedA`]), writing into a
/// caller-provided buffer — the allocation-free, zero-weight-packing form
/// the executors drive from their arenas.
///
/// `out` must hold `batch * out_c * oh * ow` elements; it is fully
/// overwritten (bias-filled, or zeroed when `bias` is empty). `col_scratch`
/// is reused across calls like in [`conv2d_im2col`]; per-call activation
/// packing goes through `gemm_scratch`.
#[allow(clippy::too_many_arguments)] // a BLAS-style kernel signature: dims are positional by convention
pub fn conv2d_prepacked_into(
    input: &[f32],
    batch: usize,
    h: usize,
    w: usize,
    weight: &PackedA,
    bias: &[f32],
    p: &Conv2dParams,
    col_scratch: &mut Vec<f32>,
    out: &mut [f32],
    gemm_scratch: &mut GemmScratch,
) {
    let (oh, ow) = p.out_hw(h, w);
    let cols = oh * ow;
    let krows = p.in_c * p.kernel * p.kernel;
    assert_eq!(weight.m(), p.out_c, "conv2d: packed weight rows");
    assert_eq!(weight.k(), krows, "conv2d: packed weight depth");
    assert_eq!(out.len(), batch * p.out_c * cols, "conv2d: out length");
    col_scratch.resize(krows * cols, 0.0);
    for b in 0..batch {
        let img = &input[b * p.in_c * h * w..(b + 1) * p.in_c * h * w];
        im2col(img, h, w, p, col_scratch);
        let out_img = &mut out[b * p.out_c * cols..(b + 1) * p.out_c * cols];
        if bias.is_empty() {
            out_img.fill(0.0);
        } else {
            assert_eq!(bias.len(), p.out_c, "conv2d: bias length");
            for (oc, &bv) in bias.iter().enumerate() {
                out_img[oc * cols..(oc + 1) * cols].fill(bv);
            }
        }
        gemm_prepacked_a(weight, col_scratch, out_img, cols, gemm_scratch);
    }
}

/// [`conv2d_prepacked_into`] against weights int8-quantized at plan-compile
/// time (per-output-channel scales). Each image's `im2col` matrix is
/// quantized per call with one per-tensor scale inside
/// [`gemm_prepacked_qa`]; accumulation is `i32`, dequantized on store.
#[allow(clippy::too_many_arguments)] // a BLAS-style kernel signature: dims are positional by convention
pub fn conv2d_q8_prepacked_into(
    input: &[f32],
    batch: usize,
    h: usize,
    w: usize,
    weight: &QuantizedA,
    bias: &[f32],
    p: &Conv2dParams,
    col_scratch: &mut Vec<f32>,
    out: &mut [f32],
    gemm_scratch: &mut GemmScratch,
) {
    let (oh, ow) = p.out_hw(h, w);
    let cols = oh * ow;
    let krows = p.in_c * p.kernel * p.kernel;
    assert_eq!(weight.m(), p.out_c, "conv2d: quantized weight rows");
    assert_eq!(weight.k(), krows, "conv2d: quantized weight depth");
    assert_eq!(out.len(), batch * p.out_c * cols, "conv2d: out length");
    col_scratch.resize(krows * cols, 0.0);
    for b in 0..batch {
        let img = &input[b * p.in_c * h * w..(b + 1) * p.in_c * h * w];
        im2col(img, h, w, p, col_scratch);
        let out_img = &mut out[b * p.out_c * cols..(b + 1) * p.out_c * cols];
        fill_bias(out_img, bias, p.out_c, cols);
        gemm_prepacked_qa(weight, col_scratch, out_img, cols, gemm_scratch);
    }
}

/// [`conv2d_prepacked_into`] against weights stored as f16 panels: half the
/// weight footprint, expanded to f32 in scratch per call, f32 accumulation.
#[allow(clippy::too_many_arguments)] // a BLAS-style kernel signature: dims are positional by convention
pub fn conv2d_f16_prepacked_into(
    input: &[f32],
    batch: usize,
    h: usize,
    w: usize,
    weight: &PackedA16,
    bias: &[f32],
    p: &Conv2dParams,
    col_scratch: &mut Vec<f32>,
    out: &mut [f32],
    gemm_scratch: &mut GemmScratch,
) {
    let (oh, ow) = p.out_hw(h, w);
    let cols = oh * ow;
    let krows = p.in_c * p.kernel * p.kernel;
    assert_eq!(weight.m(), p.out_c, "conv2d: f16 weight rows");
    assert_eq!(weight.k(), krows, "conv2d: f16 weight depth");
    assert_eq!(out.len(), batch * p.out_c * cols, "conv2d: out length");
    col_scratch.resize(krows * cols, 0.0);
    for b in 0..batch {
        let img = &input[b * p.in_c * h * w..(b + 1) * p.in_c * h * w];
        im2col(img, h, w, p, col_scratch);
        let out_img = &mut out[b * p.out_c * cols..(b + 1) * p.out_c * cols];
        fill_bias(out_img, bias, p.out_c, cols);
        gemm_prepacked_a16(weight, col_scratch, out_img, cols, gemm_scratch);
    }
}

/// The precision-dispatched convolution: the executors' single conv entry
/// point, routing to the kernel matching the weight operand's precision
/// (chosen per layer at plan-compile time — see the dense counterpart
/// [`crate::kernels::gemm::dense_dispatch_into`]). All arms share the
/// `im2col` + prepacked-GEMM structure and allocate nothing past the first
/// call's scratch growth.
#[allow(clippy::too_many_arguments)] // a BLAS-style kernel signature: dims are positional by convention
pub fn conv2d_dispatch_into(
    input: &[f32],
    batch: usize,
    h: usize,
    w: usize,
    weight: &ConvWeights,
    bias: &[f32],
    p: &Conv2dParams,
    col_scratch: &mut Vec<f32>,
    out: &mut [f32],
    gemm_scratch: &mut GemmScratch,
) {
    match weight {
        ConvWeights::F32(pa) => {
            conv2d_prepacked_into(input, batch, h, w, pa, bias, p, col_scratch, out, gemm_scratch)
        }
        ConvWeights::Int8(qa) => conv2d_q8_prepacked_into(
            input,
            batch,
            h,
            w,
            qa,
            bias,
            p,
            col_scratch,
            out,
            gemm_scratch,
        ),
        ConvWeights::F16(pa16) => conv2d_f16_prepacked_into(
            input,
            batch,
            h,
            w,
            pa16,
            bias,
            p,
            col_scratch,
            out,
            gemm_scratch,
        ),
    }
}

/// Bias-fill (or zero) one image's output plane, one value per channel.
fn fill_bias(out_img: &mut [f32], bias: &[f32], out_c: usize, cols: usize) {
    if bias.is_empty() {
        out_img.fill(0.0);
    } else {
        assert_eq!(bias.len(), out_c, "conv2d: bias length");
        for (oc, &bv) in bias.iter().enumerate() {
            out_img[oc * cols..(oc + 1) * cols].fill(bv);
        }
    }
}

/// Direct (sliding-window) convolution. O(out * k²) per element with no
/// locality optimisation — used as the correctness reference for
/// [`conv2d_im2col`] in tests.
pub fn conv2d_direct(
    input: &[f32],
    batch: usize,
    h: usize,
    w: usize,
    weight: &[f32],
    bias: &[f32],
    p: &Conv2dParams,
) -> Vec<f32> {
    let (oh, ow) = p.out_hw(h, w);
    let mut out = vec![0.0f32; batch * p.out_c * oh * ow];
    for b in 0..batch {
        for oc in 0..p.out_c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = if bias.is_empty() { 0.0 } else { bias[oc] };
                    for ic in 0..p.in_c {
                        for ky in 0..p.kernel {
                            for kx in 0..p.kernel {
                                let iy = (oy * p.stride + ky) as isize - p.pad as isize;
                                let ix = (ox * p.stride + kx) as isize - p.pad as isize;
                                if iy < 0 || iy >= h as isize || ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                let iv =
                                    input[((b * p.in_c + ic) * h + iy as usize) * w + ix as usize];
                                let wv =
                                    weight[((oc * p.in_c + ic) * p.kernel + ky) * p.kernel + kx];
                                acc += iv * wv;
                            }
                        }
                    }
                    out[((b * p.out_c + oc) * oh + oy) * ow + ox] = acc;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tensor;
    use proptest::prelude::*;

    #[test]
    fn out_hw_standard_cases() {
        // ResNet50 stem: 224x224, k=7, s=2, p=3 -> 112x112
        let p = Conv2dParams {
            in_c: 3,
            out_c: 64,
            kernel: 7,
            stride: 2,
            pad: 3,
        };
        assert_eq!(p.out_hw(224, 224), (112, 112));
        // Same-size 3x3: k=3, s=1, p=1
        let p = Conv2dParams {
            in_c: 8,
            out_c: 8,
            kernel: 3,
            stride: 1,
            pad: 1,
        };
        assert_eq!(p.out_hw(56, 56), (56, 56));
    }

    #[test]
    fn identity_1x1_conv() {
        // A 1x1 conv with identity channel mixing returns the input.
        let p = Conv2dParams {
            in_c: 2,
            out_c: 2,
            kernel: 1,
            stride: 1,
            pad: 0,
        };
        let input = Tensor::seeded_uniform([1, 2, 3, 3], 7, -1.0, 1.0);
        let weight = vec![1.0, 0.0, 0.0, 1.0]; // [2,2,1,1] identity
        let mut scratch = Vec::new();
        let out = conv2d_im2col(input.data(), 1, 3, 3, &weight, &[], &p, &mut scratch);
        assert_eq!(out, input.data());
    }

    #[test]
    fn bias_is_broadcast() {
        let p = Conv2dParams {
            in_c: 1,
            out_c: 2,
            kernel: 1,
            stride: 1,
            pad: 0,
        };
        let input = vec![0.0; 4]; // 1x1x2x2 zeros
        let weight = vec![1.0, 1.0];
        let mut scratch = Vec::new();
        let out = conv2d_im2col(&input, 1, 2, 2, &weight, &[3.0, 5.0], &p, &mut scratch);
        assert_eq!(out, vec![3.0, 3.0, 3.0, 3.0, 5.0, 5.0, 5.0, 5.0]);
    }

    #[test]
    fn strided_padded_matches_direct() {
        let p = Conv2dParams {
            in_c: 3,
            out_c: 4,
            kernel: 3,
            stride: 2,
            pad: 1,
        };
        let input = Tensor::seeded_uniform([2, 3, 7, 7], 11, -1.0, 1.0);
        let weight = Tensor::seeded_uniform([4, 3, 3, 3], 12, -1.0, 1.0);
        let bias = vec![0.5, -0.5, 0.0, 1.0];
        let mut scratch = Vec::new();
        let fast = conv2d_im2col(
            input.data(),
            2,
            7,
            7,
            weight.data(),
            &bias,
            &p,
            &mut scratch,
        );
        let slow = conv2d_direct(input.data(), 2, 7, 7, weight.data(), &bias, &p);
        assert_eq!(fast.len(), slow.len());
        for (a, b) in fast.iter().zip(&slow) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn prepacked_conv_matches_im2col_path() {
        let p = Conv2dParams {
            in_c: 3,
            out_c: 5,
            kernel: 3,
            stride: 2,
            pad: 1,
        };
        let input = Tensor::seeded_uniform([2, 3, 9, 9], 21, -1.0, 1.0);
        let weight = Tensor::seeded_uniform([5, 3, 3, 3], 22, -1.0, 1.0);
        let bias = vec![0.1, -0.2, 0.3, 0.0, 1.5];
        let mut col = Vec::new();
        let expect = conv2d_im2col(input.data(), 2, 9, 9, weight.data(), &bias, &p, &mut col);

        let packed = PackedA::pack(weight.data(), 5, 27);
        let mut out = vec![f32::NAN; expect.len()];
        let mut gs = GemmScratch::new();
        conv2d_prepacked_into(
            input.data(),
            2,
            9,
            9,
            &packed,
            &bias,
            &p,
            &mut col,
            &mut out,
            &mut gs,
        );
        for (a, b) in out.iter().zip(&expect) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn prepacked_conv_scale_row_folds_like_weight_scaling() {
        // Folding BN into conv means scaling each output channel's weight
        // row; scale_row must act identically on the packed layout.
        let p = Conv2dParams {
            in_c: 2,
            out_c: 3,
            kernel: 1,
            stride: 1,
            pad: 0,
        };
        let input = Tensor::seeded_uniform([1, 2, 4, 4], 31, -1.0, 1.0);
        let weight = Tensor::seeded_uniform([3, 2, 1, 1], 32, -1.0, 1.0);
        let scales = [2.0f32, 0.5, -1.25];
        let mut scaled = weight.data().to_vec();
        for (oc, &s) in scales.iter().enumerate() {
            for v in &mut scaled[oc * 2..(oc + 1) * 2] {
                *v *= s;
            }
        }
        let mut col = Vec::new();
        let expect = conv2d_im2col(input.data(), 1, 4, 4, &scaled, &[], &p, &mut col);

        let mut packed = PackedA::pack(weight.data(), 3, 2);
        for (oc, &s) in scales.iter().enumerate() {
            packed.scale_row(oc, s);
        }
        let mut out = vec![f32::NAN; expect.len()];
        let mut gs = GemmScratch::new();
        conv2d_prepacked_into(
            input.data(),
            1,
            4,
            4,
            &packed,
            &[],
            &p,
            &mut col,
            &mut out,
            &mut gs,
        );
        for (a, b) in out.iter().zip(&expect) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn quantized_and_f16_conv_track_the_f32_path() {
        let p = Conv2dParams {
            in_c: 3,
            out_c: 5,
            kernel: 3,
            stride: 2,
            pad: 1,
        };
        let input = Tensor::seeded_uniform([2, 3, 9, 9], 41, -1.0, 1.0);
        let weight = Tensor::seeded_uniform([5, 3, 3, 3], 42, -1.0, 1.0);
        let bias = vec![0.1, -0.2, 0.3, 0.0, 1.5];
        let mut col = Vec::new();
        let expect = conv2d_im2col(input.data(), 2, 9, 9, weight.data(), &bias, &p, &mut col);
        let mut gs = GemmScratch::new();

        // int8: k = 27 rounding steps bound the absolute error.
        let qw = QuantizedA::from_f32(weight.data(), 5, 27);
        let mut out = vec![f32::NAN; expect.len()];
        conv2d_q8_prepacked_into(
            input.data(),
            2,
            9,
            9,
            &qw,
            &bias,
            &p,
            &mut col,
            &mut out,
            &mut gs,
        );
        let bound = 27.0 / 127.0 * 1.2;
        for (a, b) in out.iter().zip(&expect) {
            assert!((a - b).abs() < bound, "int8 {a} vs {b}");
        }

        // f16: much tighter.
        let hw = PackedA16::pack(weight.data(), 5, 27);
        let mut out = vec![f32::NAN; expect.len()];
        conv2d_f16_prepacked_into(
            input.data(),
            2,
            9,
            9,
            &hw,
            &bias,
            &p,
            &mut col,
            &mut out,
            &mut gs,
        );
        for (a, b) in out.iter().zip(&expect) {
            assert!((a - b).abs() < 27.0 / 2048.0 + 1e-4, "f16 {a} vs {b}");
        }

        // The dispatcher routes each variant to the same kernels.
        let variants = [
            ConvWeights::F32(PackedA::pack(weight.data(), 5, 27)),
            ConvWeights::Int8(qw.clone()),
            ConvWeights::F16(hw.clone()),
        ];
        for cw in &variants {
            let mut out = vec![f32::NAN; expect.len()];
            conv2d_dispatch_into(
                input.data(),
                2,
                9,
                9,
                cw,
                &bias,
                &p,
                &mut col,
                &mut out,
                &mut gs,
            );
            for (a, b) in out.iter().zip(&expect) {
                assert!(
                    (a - b).abs() < bound,
                    "{} dispatch {a} vs {b}",
                    cw.precision_name()
                );
            }
        }
    }

    #[test]
    fn flops_counts_macs_twice() {
        let p = Conv2dParams {
            in_c: 1,
            out_c: 1,
            kernel: 1,
            stride: 1,
            pad: 0,
        };
        // 1 output element, 1 MAC -> 2 FLOPs, over a 1x1 image.
        assert_eq!(p.flops(1, 1), 2);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn im2col_gemm_matches_direct(
            in_c in 1usize..4,
            out_c in 1usize..4,
            kernel in 1usize..4,
            stride in 1usize..3,
            pad in 0usize..2,
            hw in 3usize..9,
            seed in any::<u64>(),
        ) {
            prop_assume!(hw + 2 * pad >= kernel);
            let p = Conv2dParams { in_c, out_c, kernel, stride, pad };
            let input = Tensor::seeded_uniform([1, in_c, hw, hw], seed, -1.0, 1.0);
            let weight = Tensor::seeded_uniform([out_c, in_c, kernel, kernel], seed ^ 1, -1.0, 1.0);
            let mut scratch = Vec::new();
            let fast = conv2d_im2col(input.data(), 1, hw, hw, weight.data(), &[], &p, &mut scratch);
            let slow = conv2d_direct(input.data(), 1, hw, hw, weight.data(), &[], &p);
            prop_assert_eq!(fast.len(), slow.len());
            for (a, b) in fast.iter().zip(&slow) {
                prop_assert!((a - b).abs() < 1e-3, "{} vs {}", a, b);
            }
        }
    }
}
