//! # crayfish-admission
//!
//! Continuous batching and admission control for the serving layer.
//!
//! The paper's external-serving experiments (Fig. 10/12) saturate the
//! serving tier long before the compute does because every connection
//! scores requests one at a time. This crate supplies the mechanism behind
//! every production inference server:
//!
//! * a **cross-connection batch former** ([`BatchQueue`]): requests from
//!   all connections land in one bounded queue per deployment, and scoring
//!   workers drain them in arrival order as batches of up to
//!   [`AdmissionConfig::max_batch`], flushing early once the oldest
//!   waiting request has been queued for [`AdmissionConfig::max_wait`]
//!   (oldest-deadline-first: the front of the FIFO is always the request
//!   whose deadline expires soonest);
//! * **queue-depth backpressure**: a full queue rejects new work
//!   *immediately* with [`AdmissionError::Overloaded`] carrying a
//!   `retry_after` hint derived from the observed batch service time, so
//!   clients shed load at the door instead of timing out deep in the
//!   server;
//! * **multi-replica dispatch** ([`Dispatcher`]): a pool of persistent
//!   scoring workers (the `crayfish-sync` worker-pool idiom from the
//!   packed-GEMM layer) pulls batches from the queue, so batch forming,
//!   scoring, and connection I/O all overlap.
//!
//! The queue/worker handoff is built on the `crayfish-sync` shim and is
//! loom-model-checked (`tests/loom.rs`): no request is ever lost or scored
//! twice across racing producers, flushers, and shutdown.
//!
//! The crate is transport- and model-agnostic: payloads are generic, and
//! the serving layer supplies the scoring closure. Observability (queue
//! depth gauge, batch-size and admission-wait histograms, shed counter)
//! reports through a [`crayfish_obs::ObsHandle`] and costs nothing when
//! disabled.

#![forbid(unsafe_code)]

mod dispatcher;
mod metrics;
mod queue;

pub use dispatcher::Dispatcher;
pub use metrics::AdmissionMetrics;
pub use queue::{BatchQueue, Pending, Rejected};

use std::time::Duration;

/// Tuning for the continuous-batching scheduler.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Largest batch a scoring worker may drain at once. `1` disables
    /// cross-request batching (every request scores alone — the paper's
    /// baseline behaviour).
    pub max_batch: usize,
    /// Longest a scoring worker may hold a *partial* batch open waiting
    /// for it to fill, measured from the oldest waiting request's
    /// admission. Zero (the default) flushes a partial batch as soon as a
    /// replica is free — pure continuous batching, where batches form
    /// from service-time backpressure alone and an idle server adds no
    /// latency. A positive window trades low-load latency for fuller
    /// batches (TF-Serving's `batch_timeout_micros`).
    pub max_wait: Duration,
    /// Queue capacity. Enqueueing onto a full queue fails fast with
    /// [`AdmissionError::Overloaded`] — this is the backpressure signal.
    pub queue_capacity: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_batch: 8,
            max_wait: Duration::ZERO,
            queue_capacity: 256,
        }
    }
}

impl AdmissionConfig {
    /// Batch-1 admission: no cross-request batching, but the queue still
    /// bounds concurrency and sheds overload. The saturation bench's
    /// baseline rung.
    pub fn batch1() -> Self {
        AdmissionConfig {
            max_batch: 1,
            ..Default::default()
        }
    }

    /// Clamp the knobs into their sane ranges (`max_batch >= 1`,
    /// `queue_capacity >= max_batch`).
    pub fn normalized(self) -> Self {
        let max_batch = self.max_batch.max(1);
        AdmissionConfig {
            max_batch,
            max_wait: self.max_wait,
            queue_capacity: self.queue_capacity.max(max_batch),
        }
    }
}

/// Admission failures surfaced to the transport layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionError {
    /// The queue is full. The request was **not** admitted; the client
    /// should retry after roughly `retry_after`.
    Overloaded {
        /// Estimated time until the queue has drained enough to admit new
        /// work, from the observed batch service time.
        retry_after: Duration,
    },
    /// The scheduler has shut down; no further work is admitted.
    Shutdown,
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::Overloaded { retry_after } => {
                write!(f, "overloaded; retry after {retry_after:?}")
            }
            AdmissionError::Shutdown => write!(f, "admission scheduler shut down"),
        }
    }
}

impl std::error::Error for AdmissionError {}
