//! Criterion microbenchmarks of the substrates: the GEMM and convolution
//! kernels, the JSON wire codec, the binary serving protocol, and broker
//! produce/fetch round trips. These are the primitives whose costs compose
//! into every table and figure.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bytes::Bytes;
use crayfish_broker::{Broker, PartitionConsumer, Producer, ProducerConfig};
use crayfish_core::batch::CrayfishDataBatch;
use crayfish_models::{ffnn, tiny};
use crayfish_runtime::exec::FusedExec;
use crayfish_serving::protocol::{decode_tensor_binary, encode_tensor_binary};
use crayfish_sim::NetworkModel;
use crayfish_tensor::kernels::conv::{conv2d_im2col, Conv2dParams};
use crayfish_tensor::kernels::gemm::{gemm, gemm_ipj, gemm_prepacked_b, gemm_st};
use crayfish_tensor::{GemmScratch, PackedB, Tensor};

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    group.sample_size(20);
    for n in [64usize, 256] {
        let a = Tensor::seeded_uniform([n, n], 1, -1.0, 1.0);
        let b = Tensor::seeded_uniform([n, n], 2, -1.0, 1.0);
        group.bench_function(format!("{n}x{n}x{n}"), |bench| {
            bench.iter(|| {
                let mut out = vec![0.0f32; n * n];
                gemm(black_box(a.data()), black_box(b.data()), &mut out, n, n, n);
                black_box(out);
            })
        });
    }
    group.finish();
}

/// The kernel-ablation rungs side by side at one shape (the full sweep
/// lives in `cargo run -p crayfish-bench --bin micro_gemm`).
fn bench_gemm_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_variants_256");
    group.sample_size(20);
    let n = 256usize;
    let a = Tensor::seeded_uniform([n, n], 1, -1.0, 1.0);
    let b = Tensor::seeded_uniform([n, n], 2, -1.0, 1.0);
    let mut out = vec![0.0f32; n * n];
    group.bench_function("seed_ipj", |bench| {
        bench.iter(|| {
            out.fill(0.0);
            gemm_ipj(black_box(a.data()), black_box(b.data()), &mut out, n, n, n);
        })
    });
    let mut scratch = GemmScratch::new();
    group.bench_function("tiled_packed_st", |bench| {
        bench.iter(|| {
            out.fill(0.0);
            gemm_st(
                black_box(a.data()),
                black_box(b.data()),
                &mut out,
                n,
                n,
                n,
                &mut scratch,
            );
        })
    });
    let pb = PackedB::pack(b.data(), n, n);
    group.bench_function("prepacked_weights", |bench| {
        bench.iter(|| {
            out.fill(0.0);
            gemm_prepacked_b(
                black_box(a.data()),
                black_box(&pb),
                &mut out,
                n,
                &mut scratch,
            );
        })
    });
    group.finish();
}

fn bench_conv(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv2d");
    group.sample_size(20);
    // A ResNet50 layer-2 shape: 128 channels, 28x28, 3x3.
    let p = Conv2dParams {
        in_c: 128,
        out_c: 128,
        kernel: 3,
        stride: 1,
        pad: 1,
    };
    let input = Tensor::seeded_uniform([1, 128, 28, 28], 1, -1.0, 1.0);
    let weight = Tensor::seeded_uniform([128, 128, 3, 3], 2, -0.1, 0.1);
    group.bench_function("resnet_layer2_3x3", |bench| {
        let mut scratch = Vec::new();
        bench.iter(|| {
            black_box(conv2d_im2col(
                black_box(input.data()),
                1,
                28,
                28,
                weight.data(),
                &[],
                &p,
                &mut scratch,
            ))
        })
    });
    group.finish();
}

fn bench_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("inference");
    group.sample_size(30);
    let g = ffnn::build(1);
    let mut exec = FusedExec::new(&g).unwrap();
    for bsz in [1usize, 128] {
        let input = Tensor::seeded_uniform([bsz, 28, 28], 1, 0.0, 1.0);
        group.bench_function(format!("ffnn_fused_bsz{bsz}"), |bench| {
            bench.iter(|| black_box(exec.run(black_box(&input)).unwrap()))
        });
    }
    group.finish();
}

fn bench_json_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("json_codec");
    group.sample_size(30);
    let t = Tensor::seeded_uniform([1, 28, 28], 1, 0.0, 255.0);
    let batch = CrayfishDataBatch::from_tensor(1, 0.0, &t);
    let bytes = batch.encode().unwrap();
    group.bench_function("encode_ffnn_point", |bench| {
        bench.iter(|| black_box(batch.encode().unwrap()))
    });
    group.bench_function("decode_ffnn_point", |bench| {
        bench.iter(|| black_box(CrayfishDataBatch::decode(black_box(&bytes)).unwrap()))
    });
    group.finish();
}

fn bench_binary_protocol(c: &mut Criterion) {
    let mut group = c.benchmark_group("binary_protocol");
    group.sample_size(30);
    let t = Tensor::seeded_uniform([1, 28, 28], 1, 0.0, 1.0);
    let enc = encode_tensor_binary(&t);
    group.bench_function("encode", |bench| {
        bench.iter(|| black_box(encode_tensor_binary(&t)))
    });
    group.bench_function("decode", |bench| {
        bench.iter(|| black_box(decode_tensor_binary(black_box(&enc)).unwrap()))
    });
    group.finish();
}

fn bench_broker(c: &mut Criterion) {
    let mut group = c.benchmark_group("broker");
    group.sample_size(20);
    let broker = Broker::new(NetworkModel::zero());
    broker.create_topic("bench", 4).unwrap();
    let payload = Bytes::from(vec![0u8; 3 * 1024]);
    group.bench_function("append_3kb", |bench| {
        bench.iter(|| {
            black_box(
                broker
                    .append("bench", 0, vec![(payload.clone(), 0.0)])
                    .unwrap(),
            )
        })
    });
    group.bench_function("produce_fetch_roundtrip_3kb", |bench| {
        broker.create_topic("rt", 1).ok();
        let mut producer = Producer::new(broker.clone(), "rt", ProducerConfig::default()).unwrap();
        let mut consumer = PartitionConsumer::new(broker.clone(), "rt", "g", vec![0]).unwrap();
        bench.iter(|| {
            producer.send(Some(0), payload.clone()).unwrap();
            producer.flush();
            let recs = consumer
                .poll(std::time::Duration::from_millis(100))
                .unwrap();
            black_box(recs);
        })
    });
    group.finish();
}

fn bench_tiny_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("tiny_models");
    group.sample_size(30);
    let g = tiny::tiny_cnn(1);
    let mut exec = FusedExec::new(&g).unwrap();
    let input = Tensor::seeded_uniform([4, 3, 8, 8], 1, 0.0, 1.0);
    group.bench_function("tiny_cnn_fused_bsz4", |bench| {
        bench.iter(|| black_box(exec.run(black_box(&input)).unwrap()))
    });
    group.finish();
}

fn bench_obs(c: &mut Criterion) {
    use crayfish_obs::{ObsHandle, Stage};
    let mut group = c.benchmark_group("obs");
    group.sample_size(30);
    let g = tiny::tiny_cnn(1);
    let mut exec = FusedExec::new(&g).unwrap();
    let input = Tensor::seeded_uniform([4, 3, 8, 8], 1, 0.0, 1.0);

    // The pre-PR hot path: inference with no instrumentation at all.
    group.bench_function("inference_bare", |bench| {
        bench.iter(|| black_box(exec.run(black_box(&input)).unwrap()))
    });
    // The zero-cost-when-disabled claim: the same path behind a disabled
    // span must be within measurement noise of `inference_bare`.
    let disabled = ObsHandle::disabled();
    group.bench_function("inference_disabled_span", |bench| {
        bench.iter(|| {
            let span = disabled.timer(Stage::Inference);
            let out = exec.run(black_box(&input)).unwrap();
            span.stop();
            black_box(out)
        })
    });
    // Live-telemetry cost: two clock reads plus one sharded histogram add.
    let enabled = ObsHandle::enabled();
    group.bench_function("inference_enabled_span", |bench| {
        bench.iter(|| {
            let span = enabled.timer(Stage::Inference);
            let out = exec.run(black_box(&input)).unwrap();
            span.stop();
            black_box(out)
        })
    });
    group.bench_function("record_stage_ns", |bench| {
        bench.iter(|| enabled.observe_stage_ns(Stage::Inference, black_box(42_000)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_gemm,
    bench_gemm_variants,
    bench_conv,
    bench_inference,
    bench_json_codec,
    bench_binary_protocol,
    bench_broker,
    bench_tiny_models,
    bench_obs
);
criterion_main!(benches);
