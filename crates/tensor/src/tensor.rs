//! The dense `f32` tensor type.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::error::TensorError;
use crate::shape::Shape;
use crate::Result;

/// A dense, row-major, `f32` tensor.
///
/// This is the only tensor type in Crayfish: model weights, activations, and
/// inference inputs/outputs are all `Tensor`s. The paper's workloads never
/// need other dtypes (inputs are synthetic images, outputs are class
/// probability vectors).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// A tensor of zeros.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let data = vec![0.0; shape.numel()];
        Tensor { shape, data }
    }

    /// A tensor filled with a constant.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        let data = vec![value; shape.numel()];
        Tensor { shape, data }
    }

    /// Build a tensor from raw data, validating the element count.
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<f32>) -> Result<Self> {
        let shape = shape.into();
        if data.len() != shape.numel() {
            return Err(TensorError::LengthMismatch {
                len: data.len(),
                shape,
            });
        }
        Ok(Tensor { shape, data })
    }

    /// A tensor of uniform random values in `[lo, hi)`, deterministic in the
    /// seed. Used for synthetic inputs (the paper: "data content being
    /// irrelevant") and reproducible weight initialisation.
    pub fn seeded_uniform(shape: impl Into<Shape>, seed: u64, lo: f32, hi: f32) -> Self {
        let shape = shape.into();
        let mut rng = StdRng::seed_from_u64(seed);
        let data = (0..shape.numel()).map(|_| rng.gen_range(lo..hi)).collect();
        Tensor { shape, data }
    }

    /// He-style initialisation for a layer with `fan_in` inputs: uniform in
    /// `±sqrt(6 / fan_in)`. Keeps activations numerically tame through deep
    /// stacks like ResNet50 so softmax outputs stay finite.
    pub fn seeded_he(shape: impl Into<Shape>, seed: u64, fan_in: usize) -> Self {
        let bound = (6.0 / fan_in.max(1) as f32).sqrt();
        Self::seeded_uniform(shape, seed, -bound, bound)
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Immutable view of the underlying row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the tensor and return its data buffer.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Reinterpret the tensor with a new shape of identical element count.
    pub fn reshape(&self, shape: impl Into<Shape>) -> Result<Tensor> {
        let shape = shape.into();
        if shape.numel() != self.data.len() {
            return Err(TensorError::LengthMismatch {
                len: self.data.len(),
                shape,
            });
        }
        Ok(Tensor {
            shape,
            data: self.data.clone(),
        })
    }

    /// The size of the leading (batch) dimension, or 1 for scalars.
    pub fn batch(&self) -> usize {
        if self.shape.rank() == 0 {
            1
        } else {
            self.shape.dim(0)
        }
    }

    /// Borrow the `i`-th item of the leading dimension as a flat slice.
    ///
    /// # Panics
    /// Panics if `i >= batch()`.
    pub fn batch_item(&self, i: usize) -> &[f32] {
        let stride = self.shape.per_item().numel();
        &self.data[i * stride..(i + 1) * stride]
    }

    /// Mutably borrow the `i`-th item of the leading dimension.
    pub fn batch_item_mut(&mut self, i: usize) -> &mut [f32] {
        let stride = self.shape.per_item().numel();
        &mut self.data[i * stride..(i + 1) * stride]
    }

    /// Stack per-item tensors into one batched tensor.
    ///
    /// All items must share a shape; the result has shape
    /// `[items.len(), ..item_shape]`.
    pub fn stack(items: &[Tensor]) -> Result<Tensor> {
        let first = items.first().ok_or_else(|| {
            TensorError::Graph("cannot stack an empty list of tensors".to_string())
        })?;
        let item_shape = first.shape.clone();
        let mut data = Vec::with_capacity(item_shape.numel() * items.len());
        for t in items {
            if t.shape != item_shape {
                return Err(TensorError::ShapeMismatch {
                    op: "stack",
                    expected: item_shape,
                    actual: t.shape.clone(),
                });
            }
            data.extend_from_slice(&t.data);
        }
        let mut dims = vec![items.len()];
        dims.extend_from_slice(item_shape.dims());
        Ok(Tensor {
            shape: Shape::new(dims),
            data,
        })
    }

    /// Split a batched tensor into its per-item tensors.
    pub fn unstack(&self) -> Vec<Tensor> {
        let item_shape = self.shape.per_item();
        (0..self.batch())
            .map(|i| Tensor {
                shape: item_shape.clone(),
                data: self.batch_item(i).to_vec(),
            })
            .collect()
    }

    /// Maximum absolute difference against another tensor of equal shape.
    pub fn max_abs_diff(&self, other: &Tensor) -> Result<f32> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                op: "max_abs_diff",
                expected: self.shape.clone(),
                actual: other.shape.clone(),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max))
    }

    /// Index of the maximum element per batch item (arg-max over the last
    /// axis of a `[batch, classes]` tensor) — the predicted class.
    pub fn argmax_per_item(&self) -> Vec<usize> {
        (0..self.batch())
            .map(|i| {
                let row = self.batch_item(i);
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(idx, _)| idx)
                    .unwrap_or(0)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_full() {
        let z = Tensor::zeros([2, 3]);
        assert_eq!(z.numel(), 6);
        assert!(z.data().iter().all(|&v| v == 0.0));
        let f = Tensor::full([2], 1.5);
        assert_eq!(f.data(), &[1.5, 1.5]);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec([2, 2], vec![1.0; 4]).is_ok());
        assert!(matches!(
            Tensor::from_vec([2, 2], vec![1.0; 5]),
            Err(TensorError::LengthMismatch { len: 5, .. })
        ));
    }

    #[test]
    fn seeded_uniform_is_deterministic_and_bounded() {
        let a = Tensor::seeded_uniform([100], 42, -1.0, 1.0);
        let b = Tensor::seeded_uniform([100], 42, -1.0, 1.0);
        let c = Tensor::seeded_uniform([100], 43, -1.0, 1.0);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.data().iter().all(|&v| (-1.0..1.0).contains(&v)));
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec([2, 3], (0..6).map(|v| v as f32).collect()).unwrap();
        let r = t.reshape([3, 2]).unwrap();
        assert_eq!(r.data(), t.data());
        assert!(t.reshape([4, 2]).is_err());
    }

    #[test]
    fn batch_items_are_contiguous_slices() {
        let t = Tensor::from_vec([2, 3], vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(t.batch(), 2);
        assert_eq!(t.batch_item(0), &[0.0, 1.0, 2.0]);
        assert_eq!(t.batch_item(1), &[3.0, 4.0, 5.0]);
    }

    #[test]
    fn stack_unstack_roundtrip() {
        let items = vec![
            Tensor::from_vec([2], vec![1.0, 2.0]).unwrap(),
            Tensor::from_vec([2], vec![3.0, 4.0]).unwrap(),
        ];
        let stacked = Tensor::stack(&items).unwrap();
        assert_eq!(stacked.shape().dims(), &[2, 2]);
        assert_eq!(stacked.unstack(), items);
    }

    #[test]
    fn stack_rejects_mismatched_items() {
        let items = vec![Tensor::zeros([2]), Tensor::zeros([3])];
        assert!(Tensor::stack(&items).is_err());
        assert!(Tensor::stack(&[]).is_err());
    }

    #[test]
    fn argmax_per_item_picks_max() {
        let t = Tensor::from_vec([2, 3], vec![0.1, 0.9, 0.0, 0.5, 0.2, 0.7]).unwrap();
        assert_eq!(t.argmax_per_item(), vec![1, 2]);
    }

    #[test]
    fn max_abs_diff_detects_divergence() {
        let a = Tensor::from_vec([2], vec![1.0, 2.0]).unwrap();
        let b = Tensor::from_vec([2], vec![1.5, 2.0]).unwrap();
        assert!((a.max_abs_diff(&b).unwrap() - 0.5).abs() < 1e-6);
        assert!(a.max_abs_diff(&Tensor::zeros([3])).is_err());
    }
}
