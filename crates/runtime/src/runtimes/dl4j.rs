//! DeepLearning4j analog: the JVM-binding embedded library.

use crayfish_models::ModelFormat;
use crayfish_sim::OverheadModel;
use crayfish_tensor::NnGraph;

use crate::device::Device;
use crate::exec::unfused::JniBoundary;
use crate::exec::{GpuExec, UnfusedExec};
use crate::precision::{Precision, QuantConfig};
use crate::runtimes::{EmbeddedRuntime, GpuModel, LoadedModel, UnfusedModel};
use crate::Result;

/// The DL4J-style embedded library.
///
/// Every op executes behind a simulated JNI boundary: the op's input
/// activations are marshalled `f32 → f64 → f32` for real (the INDArray
/// conversion a Keras-import DL4J deployment performs), fresh buffers are
/// allocated per call, and the calibrated per-FFI-call cost from
/// [`crayfish_sim::calibration::FFI_CALL`] is charged. The paper attributes
/// DL4J's 42.6 % throughput deficit against SavedModel to these costs.
#[derive(Debug, Clone, Copy)]
pub struct Dl4jRuntime {
    overheads: OverheadModel,
    quant: QuantConfig,
}

impl Dl4jRuntime {
    /// Create the runtime with the default calibrated overheads.
    pub fn new() -> Self {
        Dl4jRuntime {
            overheads: OverheadModel::calibrated(),
            quant: QuantConfig::default(),
        }
    }

    /// Create with explicit overheads (ablation benchmarks pass
    /// [`OverheadModel::zero`] to isolate the real marshalling cost).
    pub fn with_overheads(overheads: OverheadModel) -> Self {
        Dl4jRuntime {
            overheads,
            quant: QuantConfig::default(),
        }
    }

    /// Compile CPU plans at `precision` with the default calibration gate
    /// (the GPU path always stays f32).
    pub fn with_precision(precision: Precision) -> Self {
        Dl4jRuntime {
            overheads: OverheadModel::calibrated(),
            quant: QuantConfig::with_precision(precision),
        }
    }
}

impl Default for Dl4jRuntime {
    fn default() -> Self {
        Self::new()
    }
}

impl EmbeddedRuntime for Dl4jRuntime {
    fn name(&self) -> &'static str {
        "dl4j"
    }

    fn expected_format(&self) -> ModelFormat {
        // DL4J's Keras import consumes H5 checkpoints (§3.4.2).
        ModelFormat::H5
    }

    fn load_graph(&self, graph: &NnGraph, device: Device) -> Result<Box<dyn LoadedModel>> {
        match device {
            Device::Cpu => Ok(Box::new(UnfusedModel {
                name: self.name(),
                exec: UnfusedExec::with_precision(
                    graph.clone(),
                    false,
                    Some(JniBoundary {
                        cost: self.overheads.ffi_call,
                    }),
                    self.quant,
                )?,
            })),
            Device::Gpu(spec) => Ok(Box::new(GpuModel {
                name: self.name(),
                exec: GpuExec::new(graph, spec)?,
            })),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crayfish_models::tiny;
    use crayfish_sim::Stopwatch;
    use crayfish_tensor::Tensor;

    #[test]
    fn loads_and_scores() {
        let rt = Dl4jRuntime::new();
        let mut model = rt.load_graph(&tiny::tiny_mlp(1), Device::Cpu).unwrap();
        let out = model
            .apply(&Tensor::seeded_uniform([2, 8, 8], 3, 0.0, 1.0))
            .unwrap();
        assert_eq!(out.shape().dims(), &[2, 4]);
    }

    #[test]
    fn slower_than_onnx_on_small_batches() {
        // The defining property of the DL4J analog: the JNI boundary makes
        // it measurably slower than the fused runtime for small events.
        let g = tiny::tiny_mlp(1);
        let input = Tensor::seeded_uniform([1, 8, 8], 3, 0.0, 1.0);
        let mut dl4j = Dl4jRuntime::new().load_graph(&g, Device::Cpu).unwrap();
        let mut onnx = crate::runtimes::OnnxRuntime::new()
            .load_graph(&g, Device::Cpu)
            .unwrap();
        // Warm both.
        dl4j.apply(&input).unwrap();
        onnx.apply(&input).unwrap();
        let reps = 20;
        let sw = Stopwatch::start();
        for _ in 0..reps {
            dl4j.apply(&input).unwrap();
        }
        let t_dl4j = sw.elapsed();
        let sw = Stopwatch::start();
        for _ in 0..reps {
            onnx.apply(&input).unwrap();
        }
        let t_onnx = sw.elapsed();
        assert!(
            t_dl4j > t_onnx * 2,
            "dl4j {t_dl4j:?} should be much slower than onnx {t_onnx:?}"
        );
    }

    #[test]
    fn zero_overheads_still_marshal() {
        let rt = Dl4jRuntime::with_overheads(OverheadModel::zero());
        let mut model = rt.load_graph(&tiny::tiny_mlp(1), Device::Cpu).unwrap();
        let out = model
            .apply(&Tensor::seeded_uniform([1, 8, 8], 1, 0.0, 1.0))
            .unwrap();
        assert_eq!(out.shape().dims(), &[1, 4]);
    }
}
