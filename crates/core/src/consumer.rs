//! The output consumer (the paper's metrics-collection tail, §3.3).
//!
//! Reads `ScoredBatch` records from the output topic and derives one
//! end-to-end latency sample per record:
//! `latency = LogAppendTime(output record) − created_ms(batch)` — both
//! timestamps taken *outside* the system under test (SUT separation, §3.5).

use std::sync::Arc;
use std::time::Duration;

use crayfish_broker::{BrokerApi, PartitionConsumer};

use crate::batch::ScoredBatch;
use crate::Result;

/// One end-to-end measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySample {
    /// Originating batch id.
    pub id: u64,
    /// Output-topic `LogAppendTime` (UNIX ms) — when the batch finished.
    pub end_ms: f64,
    /// End-to-end latency in milliseconds.
    pub latency_ms: f64,
}

/// Collects latency samples from the output topic.
#[derive(Debug)]
pub struct OutputConsumer {
    consumer: PartitionConsumer,
}

impl OutputConsumer {
    /// Subscribe to every partition of `topic` under a metrics-only group.
    pub fn new(broker: Arc<dyn BrokerApi>, topic: &str) -> Result<OutputConsumer> {
        let partitions = broker.partitions(topic)?;
        let consumer =
            PartitionConsumer::new(broker, topic, "crayfish-metrics", (0..partitions).collect())?;
        Ok(OutputConsumer { consumer })
    }

    /// Poll once (blocking up to `max_wait`) and append the resulting
    /// samples. Returns how many records arrived. Undecodable records are
    /// counted as zero-latency-free errors and skipped.
    pub fn poll_into(
        &mut self,
        max_wait: Duration,
        sink: &mut Vec<LatencySample>,
    ) -> Result<usize> {
        let records = self.consumer.poll(max_wait)?;
        let n = records.len();
        for rec in records {
            let Ok(scored) = ScoredBatch::decode(&rec.value) else {
                continue;
            };
            sink.push(LatencySample {
                id: scored.id,
                end_ms: rec.append_time_ms,
                latency_ms: rec.append_time_ms - scored.created_ms,
            });
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crayfish_broker::Broker;
    use crayfish_sim::{now_millis_f64, NetworkModel};
    use crayfish_tensor::Tensor;

    #[test]
    fn derives_latencies_from_append_time() {
        let broker = Broker::new(NetworkModel::zero());
        broker.create_topic("out", 2).unwrap();
        let created = now_millis_f64() - 50.0; // batch "created" 50 ms ago
        let scored = ScoredBatch {
            id: 1,
            created_ms: created,
            bsz: 1,
            classes: 2,
            scores: vec![0.5, 0.5],
        };
        broker
            .append("out", 0, vec![(scored.encode().unwrap(), 0.0)])
            .unwrap();
        let mut c = OutputConsumer::new(broker, "out").unwrap();
        let mut samples = Vec::new();
        let n = c
            .poll_into(Duration::from_millis(100), &mut samples)
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(samples.len(), 1);
        assert!(samples[0].latency_ms >= 50.0, "{}", samples[0].latency_ms);
        assert!(samples[0].latency_ms < 1_000.0);
    }

    #[test]
    fn skips_undecodable_records() {
        let broker = Broker::new(NetworkModel::zero());
        broker.create_topic("out", 1).unwrap();
        broker
            .append("out", 0, vec![(bytes::Bytes::from_static(b"junk"), 0.0)])
            .unwrap();
        let t = Tensor::zeros([1, 2]);
        let scored = ScoredBatch {
            id: 2,
            created_ms: now_millis_f64(),
            bsz: 1,
            classes: 2,
            scores: t.data().to_vec(),
        };
        broker
            .append("out", 0, vec![(scored.encode().unwrap(), 0.0)])
            .unwrap();
        let mut c = OutputConsumer::new(broker, "out").unwrap();
        let mut samples = Vec::new();
        let n = c
            .poll_into(Duration::from_millis(100), &mut samples)
            .unwrap();
        assert_eq!(n, 2, "both records fetched");
        assert_eq!(samples.len(), 1, "only the valid one sampled");
        assert_eq!(samples[0].id, 2);
    }
}
