//! # crayfish-engine-kernel
//!
//! The shared execution substrate behind every Crayfish engine.
//!
//! §3.2 of the paper defines a data processor as "a DAG of an input
//! operator, a scoring operator, and an output operator". Every engine this
//! repo ships — Flink, Kafka Streams, Spark Structured Streaming, Ray —
//! runs exactly that supervised consume → decode → score → encode → produce
//! → commit lifecycle; what genuinely differs between them is *topology and
//! discipline*, not the lifecycle itself. This crate owns the lifecycle
//! once:
//!
//! * [`worker::WorkerSet`] — thread ownership, supervision (via
//!   `crayfish-chaos`'s [`supervise`]), restart-from-committed-offset
//!   resource rebuilding ([`worker::Rebuild`]), injected-crash checkpoints
//!   ([`worker::Ctl`]), and graceful [`RunningJob`] shutdown.
//! * [`pipeline`] — the full-chain [`pipeline::PipelineWorker`] loop: poll
//!   a fetch, charge the engine's calibrated per-record framework cost
//!   (`ingest` span), funnel each record through the shared scoring body
//!   (`decode`/`inference`|`serving_rpc`/`encode` spans), emit to the sink
//!   producer (`emit` span), then commit — the commit-owning worker both
//!   Kafka Streams and chained Flink are made of.
//! * [`source`] — the commit-owning half alone ([`source::source_pump`]):
//!   poll → forward into a personality-owned sink (exchange, mailbox, task
//!   channel) → commit. Used by unchained Flink sources, Flink async
//!   chains, and Ray input actors.
//! * [`score`] — the scoring stage *past* the commit scope
//!   ([`score::ScoreStage`]: transient failures retry in place instead of
//!   replaying committed input) and the emitting sink
//!   ([`score::ProducerSink`]). Used by Flink scoring tasks and async
//!   workers, Spark executors, and Ray scoring actors.
//!
//! An engine is reduced to an [`EnginePersonality`]: a name plus a
//! `deploy` that wires kernel pieces into that engine's topology. The
//! personality expresses only what the paper says makes the engine itself —
//! Flink's operator chains and exchange repartitioning, Kafka Streams'
//! strict pull cycle, Spark's micro-batch trigger clock and barrier, Ray's
//! actor pools and object-store hops. Everything an engine does *not* own
//! (span taxonomy, chaos hooks, commit discipline, restart semantics) lands
//! here exactly once, so future scaling work — dynamic rebalancing,
//! adaptive batching, backpressure — changes one crate, not four.

#![forbid(unsafe_code)]

pub mod pipeline;
pub mod score;
pub mod source;
pub mod worker;

pub use pipeline::{pipeline_workers, PipelineSettings};
pub use score::{charge_ingest, charge_ingest_chunk, ingest_span, ProducerSink, ScoreStage};
pub use source::{source_pump, PumpSettings, RecordSink, SinkClosed};
pub use worker::{Ctl, Rebuild, WorkerSet};

// The supervisor lives in `crayfish-chaos`; engines reach it through the
// kernel so there is exactly one supervision story.
pub use crayfish_core::chaos::{supervise, RetryPolicy, SupervisorConfig, WorkerExit};

use crayfish_core::{ProcessorContext, Result, RunningJob};

/// What an engine still owns once the kernel owns the record lifecycle.
///
/// `deploy` receives the validated [`ProcessorContext`] and an empty
/// [`WorkerSet`]; it wires up the engine's topology from kernel pieces
/// (pipeline workers, source pumps, score stages) plus whatever structures
/// are genuinely that engine's own (exchanges, mailboxes, barriers).
/// Threads must be registered in upstream-to-downstream order: shutdown
/// joins them in registration order, so upstream senders drop before
/// downstream receivers wait on disconnection.
pub trait EnginePersonality {
    /// Engine name as used in configurations ("flink", "kstreams", ...).
    fn name(&self) -> &'static str;
    /// Build the engine's topology out of kernel parts.
    fn deploy(&self, ctx: &ProcessorContext, set: &mut WorkerSet) -> Result<()>;
}

/// Deploy a personality: validate the context, let the personality wire its
/// topology, and hand back the running job. This is the whole body of every
/// engine's `DataProcessor::start`.
pub fn start(
    personality: &impl EnginePersonality,
    ctx: ProcessorContext,
) -> Result<Box<dyn RunningJob>> {
    ctx.validate()?;
    let mut set = WorkerSet::new();
    personality.deploy(&ctx, &mut set)?;
    Ok(set.into_job())
}
