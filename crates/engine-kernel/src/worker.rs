//! Thread ownership, supervision, and restartable resources.
//!
//! A [`WorkerSet`] owns every thread an engine deploys: supervised
//! commit-owning workers (restarted from committed offsets after crashes)
//! and plain tasks that live past commit scope and end when their input
//! channel disconnects. [`WorkerSet::into_job`] turns the set into the
//! [`RunningJob`] handed back to the runner; stopping raises the shared
//! stop flag and joins threads in registration order, so engines register
//! upstream stages first and downstream stages observe channel
//! disconnection once their senders are joined away.

use crayfish_sync::atomic::{AtomicBool, Ordering};
use crayfish_sync::thread::JoinHandle;
use crayfish_sync::{thread, Arc};

use crayfish_core::chaos::{supervise, ChaosHandle, SupervisorConfig, WorkerExit};
use crayfish_core::{CoreError, ProcessorContext, Result, RunningJob};

/// Per-worker control surface: the job's stop flag plus the run's chaos
/// switchboard. Workers call [`Ctl::checkpoint`] at the top of each cycle.
pub struct Ctl {
    stop: Arc<AtomicBool>,
    chaos: ChaosHandle,
}

impl Ctl {
    /// Whether the job's stop flag is raised.
    pub fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// The per-cycle supervision checkpoint: a raised stop flag ends the
    /// worker for good; a pending injected crash fails the incarnation so
    /// the supervisor restarts it from the committed offsets.
    pub fn checkpoint(&self) -> Option<WorkerExit> {
        if self.stopping() {
            return Some(WorkerExit::Stopped);
        }
        if self.chaos.take_worker_crash() {
            return Some(WorkerExit::Failed("injected worker crash".into()));
        }
        None
    }
}

/// A worker's restartable resources (consumer, producer, scorer, …).
///
/// The first incarnation's resources are built eagerly, so startup errors
/// (missing topic, unreachable serving) surface from `DataProcessor::start`
/// rather than dying silently inside a thread. Each restarted incarnation
/// rebuilds from the factory — consumers come back at the broker's
/// committed offsets, which is what makes restarts at-least-once.
pub struct Rebuild<R> {
    built: Option<R>,
    factory: Box<dyn FnMut() -> Result<R> + Send>,
}

impl<R> Rebuild<R> {
    /// Build the first incarnation's resources now; keep the factory for
    /// restarts.
    pub fn eager<F>(mut factory: F) -> Result<Self>
    where
        F: FnMut() -> Result<R> + Send + 'static,
    {
        let built = factory()?;
        Ok(Rebuild {
            built: Some(built),
            factory: Box::new(factory),
        })
    }

    /// Resources for the next incarnation: the eagerly built set first,
    /// fresh builds after. A transient build failure fails the incarnation
    /// (the supervisor backs off and retries); a terminal one ends the
    /// worker.
    pub fn acquire(&mut self) -> std::result::Result<R, WorkerExit> {
        if let Some(r) = self.built.take() {
            return Ok(r);
        }
        match (self.factory)() {
            Ok(r) => Ok(r),
            Err(e) if e.is_transient() => Err(WorkerExit::Failed(format!("rebuild: {e}"))),
            Err(_) => Err(WorkerExit::Stopped),
        }
    }
}

/// The threads of one deployed engine job.
pub struct WorkerSet {
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl Default for WorkerSet {
    fn default() -> Self {
        Self::new()
    }
}

impl WorkerSet {
    /// An empty set with a fresh stop flag.
    pub fn new() -> Self {
        WorkerSet {
            stop: Arc::new(AtomicBool::new(false)),
            threads: Vec::new(),
        }
    }

    /// The job's stop flag, for personality code that needs to observe
    /// shutdown outside a supervised body.
    pub fn stop_flag(&self) -> Arc<AtomicBool> {
        self.stop.clone()
    }

    /// Register a supervised worker: each incarnation acquires its
    /// resources from `resources` and runs `body` until it returns. Failed
    /// incarnations (including panics and injected crashes) restart with a
    /// backoff; `Stopped` ends the thread.
    pub fn supervised<R, F>(
        &mut self,
        ctx: &ProcessorContext,
        name: String,
        mut resources: Rebuild<R>,
        mut body: F,
    ) where
        R: Send + 'static,
        F: FnMut(&mut R, &Ctl) -> WorkerExit + Send + 'static,
    {
        let ctl = Ctl {
            stop: self.stop.clone(),
            chaos: ctx.chaos().clone(),
        };
        self.threads.push(supervise(
            name,
            self.stop.clone(),
            ctx.obs().clone(),
            ctx.chaos().clone(),
            SupervisorConfig::default(),
            move |_incarnation| {
                let mut r = match resources.acquire() {
                    Ok(r) => r,
                    Err(exit) => return exit,
                };
                body(&mut r, &ctl)
            },
        ));
    }

    /// Register a plain (unsupervised) task thread. Used for stages past
    /// commit scope that end when their input channel disconnects.
    pub fn task(&mut self, name: String, body: impl FnOnce() + Send + 'static) -> Result<()> {
        let handle = thread::spawn_named(&name, body)
            .map_err(|e| CoreError::Config(format!("spawn {name}: {e}")))?;
        self.threads.push(handle);
        Ok(())
    }

    /// Seal the set into the job handle the runner stops.
    pub fn into_job(self) -> Box<dyn RunningJob> {
        Box::new(KernelJob {
            stop: self.stop,
            threads: self.threads,
        })
    }
}

struct KernelJob {
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl RunningJob for KernelJob {
    fn stop(mut self: Box<Self>) {
        self.stop.store(true, Ordering::SeqCst);
        for h in self.threads.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eager_rebuild_surfaces_startup_errors() {
        let r: Result<Rebuild<u32>> =
            Rebuild::eager(|| Err(CoreError::Config("no such scorer".into())));
        assert!(r.is_err());
    }

    #[test]
    fn acquire_returns_eager_build_then_factory_builds() {
        let mut calls = 0u32;
        let mut r = Rebuild::eager(move || {
            calls += 1;
            Ok(calls)
        })
        .unwrap();
        assert_eq!(r.acquire().unwrap(), 1);
        assert_eq!(r.acquire().unwrap(), 2);
        assert_eq!(r.acquire().unwrap(), 3);
    }

    #[test]
    fn acquire_maps_error_transience_to_exits() {
        let mut first = true;
        let mut r: Rebuild<u32> = Rebuild::eager(move || {
            if first {
                first = false;
                Ok(0)
            } else {
                Err(CoreError::Serving(crayfish_serving::ServingError::Closed))
            }
        })
        .unwrap();
        r.acquire().unwrap();
        assert!(matches!(r.acquire(), Err(WorkerExit::Failed(_))));
    }

    #[test]
    fn checkpoint_honours_stop_and_injected_crashes() {
        let chaos = ChaosHandle::enabled();
        let ctl = Ctl {
            stop: Arc::new(AtomicBool::new(false)),
            chaos: chaos.clone(),
        };
        assert_eq!(ctl.checkpoint(), None);
        chaos.inject_worker_crashes(1);
        assert!(matches!(ctl.checkpoint(), Some(WorkerExit::Failed(_))));
        assert_eq!(ctl.checkpoint(), None);
        ctl.stop.store(true, Ordering::SeqCst);
        assert_eq!(ctl.checkpoint(), Some(WorkerExit::Stopped));
    }
}
