//! End-to-end checks for the observability subsystem: a full experiment run
//! with an enabled [`ObsHandle`] must light up every pipeline stage, the
//! per-stage costs must stay inside the end-to-end latency envelope, and the
//! Prometheus endpoint must serve a payload the bundled parser (the same one
//! `crayfish-top` uses) accepts.

use std::time::Duration;

use crayfish::obs;
use crayfish::prelude::*;

fn quick_spec(serving: ServingChoice, handle: ObsHandle) -> ExperimentSpec {
    let mut spec = ExperimentSpec::quick(ModelSpec::TinyMlp, serving);
    spec.workload = Workload::Constant { rate: 300.0 };
    spec.duration = Duration::from_millis(1500);
    spec.mp = 2;
    spec.obs = handle;
    spec
}

/// With external serving every one of the nine stages is exercised: the
/// workload producer (`batch`), the broker (`broker_append`/`broker_fetch`),
/// the engine (`ingest`/`decode`/`encode`/`emit`), the client RPC
/// (`serving_rpc`), and the model pool inside the server (`inference`).
#[test]
fn external_run_records_samples_for_every_stage() {
    let handle = ObsHandle::enabled();
    let spec = quick_spec(
        ServingChoice::External {
            kind: ExternalKind::TfServing,
            device: Device::Cpu,
        },
        handle.clone(),
    );
    let result = run_experiment(&KStreamsProcessor::new(), &spec).unwrap();
    assert!(result.consumed > 30, "only {} consumed", result.consumed);

    for stage in Stage::ALL {
        let snap = handle.stage_snapshot(stage);
        assert!(
            snap.count() > 0,
            "stage {} recorded no samples",
            stage.name()
        );
        assert!(
            snap.max() > 0,
            "stage {} recorded only zero durations",
            stage.name()
        );
    }
    assert!(handle.e2e_snapshot().count() > 0, "no end-to-end samples");

    // The counter taxonomy must be populated and internally consistent.
    let records_in = handle.counter("records_in").get();
    let batches_scored = handle.counter("batches_scored").get();
    let records_out = handle.counter("records_out").get();
    assert!(records_in > 0, "no records_in");
    assert!(batches_scored > 0, "no batches_scored");
    assert!(records_out <= batches_scored, "more emitted than scored");
    assert!(batches_scored <= records_in, "more scored than produced");
    assert_eq!(handle.counter("score_errors").get(), 0);
    assert!(handle.counter("broker_append_requests").get() > 0);
    assert!(handle.counter("broker_fetch_requests").get() > 0);
}

/// In an embedded run the per-record pipeline stages are strictly nested
/// inside the event-time window the end-to-end latency measures, so the sum
/// of their mean costs cannot exceed the mean end-to-end latency (plus a
/// small allowance for clock jitter around very short spans).
#[test]
fn stage_costs_stay_inside_the_e2e_envelope() {
    let handle = ObsHandle::enabled();
    let spec = quick_spec(
        ServingChoice::Embedded {
            lib: EmbeddedLib::Onnx,
            device: Device::Cpu,
        },
        handle.clone(),
    );
    let result = run_experiment(&FlinkProcessor::new(), &spec).unwrap();
    assert!(result.consumed > 30, "only {} consumed", result.consumed);

    let e2e = handle.e2e_snapshot();
    assert!(e2e.count() > 0, "no end-to-end samples");
    let per_record_path = [
        Stage::Ingest,
        Stage::Decode,
        Stage::Inference,
        Stage::Encode,
        Stage::Emit,
    ];
    let stage_sum_ns: f64 = per_record_path
        .iter()
        .map(|s| {
            let snap = handle.stage_snapshot(*s);
            assert!(snap.count() > 0, "stage {} recorded no samples", s.name());
            snap.mean()
        })
        .sum();
    let e2e_mean_ns = e2e.mean();
    let jitter_ns = 2e6; // 2 ms of scheduling/clock slack
    assert!(
        stage_sum_ns <= e2e_mean_ns + jitter_ns,
        "per-record stage means sum to {:.1} µs but mean e2e is {:.1} µs",
        stage_sum_ns / 1e3,
        e2e_mean_ns / 1e3,
    );
}

/// The exporter must serve the handle's metrics over HTTP in a form the
/// text-exposition parser accepts, with the per-stage histograms present.
#[test]
fn exporter_serves_parseable_prometheus_text() {
    let handle = ObsHandle::enabled();
    let spec = quick_spec(
        ServingChoice::Embedded {
            lib: EmbeddedLib::Onnx,
            device: Device::Cpu,
        },
        handle.clone(),
    );
    let result = run_experiment(&RayProcessor::new(), &spec).unwrap();
    assert!(result.consumed > 30, "only {} consumed", result.consumed);

    // Port 0 lets the OS pick a free port so parallel test runs never clash.
    let exporter = obs::export::serve_on(&handle, "127.0.0.1:0").unwrap();
    let samples = obs::export::scrape(&exporter.addr().to_string()).unwrap();
    assert!(!samples.is_empty(), "empty exposition payload");

    // Every stage that recorded samples appears as a histogram family with
    // count, sum, and at least one cumulative bucket ending at +Inf.
    for stage in Stage::ALL {
        if handle.stage_snapshot(stage).count() == 0 {
            continue;
        }
        let count = samples
            .iter()
            .find(|s| {
                s.name == "crayfish_stage_latency_seconds_count"
                    && s.label("stage") == Some(stage.name())
            })
            .unwrap_or_else(|| panic!("no count sample for stage {}", stage.name()));
        assert!(count.value > 0.0);
        let inf = samples.iter().any(|s| {
            s.name == "crayfish_stage_latency_seconds_bucket"
                && s.label("stage") == Some(stage.name())
                && s.label("le") == Some("+Inf")
        });
        assert!(inf, "stage {} has no +Inf bucket", stage.name());
    }

    // Counters round-trip exactly.
    let scored = samples
        .iter()
        .find(|s| s.name == "crayfish_batches_scored_total")
        .expect("no batches_scored sample");
    assert_eq!(scored.value as u64, handle.counter("batches_scored").get());

    exporter.stop();
}
