//! General matrix multiplication and the dense (fully connected) layer.

/// `C += A * B` where `A` is `m×k`, `B` is `k×n`, `C` is `m×n`, all
/// row-major.
///
/// The `i-p-j` loop order keeps the innermost loop streaming over contiguous
/// rows of `B` and `C`, which LLVM auto-vectorises; this is the workhorse
/// behind both the dense layers and the `im2col` convolutions, so its
/// throughput sets the CPU inference speed of every embedded runtime.
///
/// # Panics
/// Panics (via debug assertions on slice indexing) if the slice lengths do
/// not match the given dimensions.
pub fn gemm(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "gemm: A length");
    assert_eq!(b.len(), k * n, "gemm: B length");
    assert_eq!(c.len(), m * n, "gemm: C length");
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (p, &av) in a_row.iter().enumerate() {
            let b_row = &b[p * n..(p + 1) * n];
            for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                *cv += av * bv;
            }
        }
    }
}

/// Textbook triple-loop matmul returning a fresh buffer. Used only as the
/// reference implementation in tests and property checks.
pub fn matmul_naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), k * n);
    let mut c = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a[i * k + p] * b[p * n + j];
            }
            c[i * n + j] = acc;
        }
    }
    c
}

/// Fully connected layer: `out = x * w + bias` where `x` is
/// `[batch, in_features]`, `w` is `[in_features, out_features]`, and `bias`
/// has `out_features` elements broadcast across the batch.
pub fn dense(
    x: &[f32],
    w: &[f32],
    bias: &[f32],
    batch: usize,
    inf: usize,
    outf: usize,
) -> Vec<f32> {
    assert_eq!(bias.len(), outf, "dense: bias length");
    let mut out = Vec::with_capacity(batch * outf);
    for _ in 0..batch {
        out.extend_from_slice(bias);
    }
    gemm(x, w, &mut out, batch, inf, outf);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn gemm_matches_hand_computed() {
        // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let b = vec![5.0, 6.0, 7.0, 8.0];
        let mut c = vec![0.0; 4];
        gemm(&a, &b, &mut c, 2, 2, 2);
        assert_eq!(c, vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn gemm_accumulates_into_c() {
        let a = vec![1.0];
        let b = vec![2.0];
        let mut c = vec![10.0];
        gemm(&a, &b, &mut c, 1, 1, 1);
        assert_eq!(c, vec![12.0]);
    }

    #[test]
    fn dense_applies_bias_per_row() {
        // x = [[1, 1], [2, 2]], w = identity, bias = [10, 20]
        let x = vec![1.0, 1.0, 2.0, 2.0];
        let w = vec![1.0, 0.0, 0.0, 1.0];
        let out = dense(&x, &w, &[10.0, 20.0], 2, 2, 2);
        assert_eq!(out, vec![11.0, 21.0, 12.0, 22.0]);
    }

    #[test]
    fn non_square_shapes() {
        // 1x3 * 3x2
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let mut c = vec![0.0; 2];
        gemm(&a, &b, &mut c, 1, 3, 2);
        assert_eq!(c, vec![22.0, 28.0]);
    }

    proptest! {
        #[test]
        fn gemm_matches_naive(
            m in 1usize..6,
            k in 1usize..6,
            n in 1usize..6,
            seed in any::<u64>(),
        ) {
            let a = crate::Tensor::seeded_uniform([m, k], seed, -1.0, 1.0);
            let b = crate::Tensor::seeded_uniform([k, n], seed.wrapping_add(1), -1.0, 1.0);
            let mut c = vec![0.0f32; m * n];
            gemm(a.data(), b.data(), &mut c, m, k, n);
            let reference = matmul_naive(a.data(), b.data(), m, k, n);
            for (x, y) in c.iter().zip(&reference) {
                prop_assert!((x - y).abs() < 1e-4, "{x} vs {y}");
            }
        }
    }
}
