//! Declarative experiment configuration.
//!
//! The paper's Crayfish is driven by configuration files naming the stream
//! processor, the serving tool, the model, and the workload parameters of
//! Table 1. This module is that surface: a serde-friendly
//! [`ExperimentConfig`] that resolves names into an
//! [`ExperimentSpec`]. The engine itself is looked
//! up by the caller (the `crayfish` facade crate owns the engine registry).

use std::time::Duration;

use serde::{Deserialize, Serialize};

use crayfish_models::ModelSpec;
use crayfish_runtime::{embedded_by_name, Device};
use crayfish_serving::ExternalKind;
use crayfish_sim::NetworkModel;

use crate::error::CoreError;
use crate::runner::{ExperimentSpec, ServingChoice};
use crate::workload::Workload;
use crate::Result;

/// Serving-tool selection by name.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "mode", rename_all = "snake_case")]
pub enum ServingDef {
    /// Embedded library inside the scoring operator.
    Embedded {
        /// `"onnx"`, `"saved_model"`, or `"dl4j"`.
        library: String,
        /// `"cpu"` (default) or `"gpu"`.
        #[serde(default)]
        device: DeviceDef,
    },
    /// External serving service.
    External {
        /// `"tf_serving"`, `"torch_serve"`, or `"ray_serve"`.
        server: String,
        /// `"cpu"` (default) or `"gpu"`.
        #[serde(default)]
        device: DeviceDef,
    },
}

/// Device selection by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum DeviceDef {
    /// Host CPU.
    #[default]
    Cpu,
    /// The simulated T4.
    Gpu,
}

impl DeviceDef {
    fn to_device(self) -> Device {
        match self {
            DeviceDef::Cpu => Device::Cpu,
            DeviceDef::Gpu => Device::gpu(),
        }
    }
}

/// Workload selection (Table 1's `ir` / `bd` / `tbb`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum WorkloadDef {
    /// Constant input rate.
    Constant {
        /// Events per second.
        rate: f64,
    },
    /// Periodic bursts.
    Bursty {
        /// Baseline rate between bursts.
        base: f64,
        /// Rate during bursts.
        burst: f64,
        /// Burst duration (`bd`), seconds.
        bd: f64,
        /// Time between bursts (`tbb`), seconds.
        tbb: f64,
    },
}

/// Network selection by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum NetworkDef {
    /// The paper's calibrated 1 Gbps LAN.
    #[default]
    #[serde(rename = "lan-1gbps")]
    Lan1gbps,
    /// A fast same-rack link.
    Localhost,
    /// No modelled network (everything co-located).
    Zero,
}

impl NetworkDef {
    fn to_model(self) -> NetworkModel {
        match self {
            NetworkDef::Lan1gbps => NetworkModel::lan_1gbps(),
            NetworkDef::Localhost => NetworkModel::localhost(),
            NetworkDef::Zero => NetworkModel::zero(),
        }
    }
}

fn default_bsz() -> usize {
    1
}
fn default_mp() -> usize {
    1
}
fn default_partitions() -> u32 {
    32
}
fn default_duration() -> f64 {
    15.0
}
fn default_warmup() -> f64 {
    0.25
}
fn default_seed() -> u64 {
    42
}

/// A complete experiment description, loadable from JSON.
///
/// ```json
/// {
///   "processor": "flink",
///   "model": "ffnn",
///   "serving": { "mode": "embedded", "library": "onnx" },
///   "workload": { "type": "constant", "rate": 1000.0 },
///   "bsz": 1, "mp": 4, "duration_secs": 30.0
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Engine name: `"flink"`, `"kstreams"`, `"sparkss"`, or `"ray"`.
    pub processor: String,
    /// Model name (see `crayfish_models::ModelSpec`).
    pub model: String,
    /// Serving tool.
    pub serving: ServingDef,
    /// Input workload.
    pub workload: WorkloadDef,
    /// Data points per batch (`bsz`).
    #[serde(default = "default_bsz")]
    pub bsz: usize,
    /// Parallelism (`mp`).
    #[serde(default = "default_mp")]
    pub mp: usize,
    /// Partitions per topic.
    #[serde(default = "default_partitions")]
    pub partitions: u32,
    /// Measurement window in seconds.
    #[serde(default = "default_duration")]
    pub duration_secs: f64,
    /// Warmup fraction discarded from the front of the run.
    #[serde(default = "default_warmup")]
    pub warmup_fraction: f64,
    /// Weight/data seed.
    #[serde(default = "default_seed")]
    pub seed: u64,
    /// Modelled network between components.
    #[serde(default)]
    pub network: NetworkDef,
}

impl ExperimentConfig {
    /// Parse from a JSON string.
    pub fn from_json(json: &str) -> Result<ExperimentConfig> {
        serde_json::from_str(json).map_err(|e| CoreError::Config(format!("config parse: {e}")))
    }

    /// Read and parse a JSON config file.
    pub fn from_file(path: &std::path::Path) -> Result<ExperimentConfig> {
        let json = std::fs::read_to_string(path)
            .map_err(|e| CoreError::Config(format!("read {}: {e}", path.display())))?;
        Self::from_json(&json)
    }

    /// Resolve names into a runnable [`ExperimentSpec`]. The processor name
    /// is *not* resolved here — the caller owns the engine registry.
    pub fn to_spec(&self) -> Result<ExperimentSpec> {
        let model = ModelSpec::by_name(&self.model)?;
        let serving = match &self.serving {
            ServingDef::Embedded { library, device } => ServingChoice::Embedded {
                lib: embedded_by_name(library)?,
                device: device.to_device(),
            },
            ServingDef::External { server, device } => ServingChoice::External {
                kind: ExternalKind::by_name(server)?,
                device: device.to_device(),
            },
        };
        let workload = match self.workload {
            WorkloadDef::Constant { rate } => Workload::Constant { rate },
            WorkloadDef::Bursty {
                base,
                burst,
                bd,
                tbb,
            } => Workload::Bursty {
                base,
                burst,
                burst_secs: bd,
                between_secs: tbb,
            },
        };
        if self.duration_secs <= 0.0 {
            return Err(CoreError::Config("duration_secs must be positive".into()));
        }
        Ok(ExperimentSpec {
            model,
            seed: self.seed,
            serving,
            workload,
            bsz: self.bsz.max(1),
            mp: self.mp,
            partitions: self.partitions,
            duration: Duration::from_secs_f64(self.duration_secs),
            warmup_fraction: self.warmup_fraction,
            network: self.network.to_model(),
            obs: crate::obs::ObsHandle::disabled(),
            chaos: crate::chaos::ChaosHandle::disabled(),
            chaos_plan: crate::chaos::FaultPlan::empty(),
            // Like the chaos handles, the cluster layout is programmatic:
            // chaos drills opt into `ClusterConfig::replicated()` on the
            // spec after `to_spec()`.
            cluster: crayfish_broker::ClusterConfig::default(),
            deployment: crate::deploy::DeploymentTopology::InProcess,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crayfish_runtime::EmbeddedLib;

    const MINIMAL: &str = r#"{
        "processor": "flink",
        "model": "ffnn",
        "serving": { "mode": "embedded", "library": "onnx" },
        "workload": { "type": "constant", "rate": 100.0 }
    }"#;

    #[test]
    fn minimal_config_resolves_with_defaults() {
        let cfg = ExperimentConfig::from_json(MINIMAL).unwrap();
        assert_eq!(cfg.processor, "flink");
        let spec = cfg.to_spec().unwrap();
        assert_eq!(spec.model, ModelSpec::Ffnn);
        assert_eq!(spec.bsz, 1);
        assert_eq!(spec.mp, 1);
        assert_eq!(spec.partitions, 32);
        assert!(matches!(
            spec.serving,
            ServingChoice::Embedded {
                lib: EmbeddedLib::Onnx,
                device: Device::Cpu
            }
        ));
    }

    #[test]
    fn external_gpu_and_bursty_config() {
        let json = r#"{
            "processor": "sparkss",
            "model": "resnet50",
            "serving": { "mode": "external", "server": "tf_serving", "device": "gpu" },
            "workload": { "type": "bursty", "base": 70.0, "burst": 110.0, "bd": 30.0, "tbb": 120.0 },
            "bsz": 8, "mp": 4, "network": "zero"
        }"#;
        let spec = ExperimentConfig::from_json(json)
            .unwrap()
            .to_spec()
            .unwrap();
        assert_eq!(spec.model, ModelSpec::Resnet50);
        assert_eq!(spec.bsz, 8);
        assert_eq!(spec.network, NetworkModel::zero());
        match spec.serving {
            ServingChoice::External { kind, device } => {
                assert_eq!(kind, ExternalKind::TfServing);
                assert!(device.is_gpu());
            }
            other => panic!("unexpected serving {other:?}"),
        }
        match spec.workload {
            Workload::Bursty {
                burst_secs,
                between_secs,
                ..
            } => {
                assert_eq!(burst_secs, 30.0);
                assert_eq!(between_secs, 120.0);
            }
            other => panic!("unexpected workload {other:?}"),
        }
    }

    #[test]
    fn bad_names_are_rejected() {
        let bad_model = MINIMAL.replace("\"ffnn\"", "\"bert\"");
        assert!(ExperimentConfig::from_json(&bad_model)
            .unwrap()
            .to_spec()
            .is_err());
        let bad_lib = MINIMAL.replace("\"onnx\"", "\"tvm\"");
        assert!(ExperimentConfig::from_json(&bad_lib)
            .unwrap()
            .to_spec()
            .is_err());
        assert!(ExperimentConfig::from_json("{}").is_err());
    }

    #[test]
    fn config_roundtrips_through_serde() {
        let cfg = ExperimentConfig::from_json(MINIMAL).unwrap();
        let json = serde_json::to_string(&cfg).unwrap();
        assert_eq!(ExperimentConfig::from_json(&json).unwrap(), cfg);
    }

    #[test]
    fn zero_duration_is_rejected() {
        let mut cfg = ExperimentConfig::from_json(MINIMAL).unwrap();
        cfg.duration_secs = 0.0;
        assert!(cfg.to_spec().is_err());
    }
}
