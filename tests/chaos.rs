//! The chaos matrix: every engine must survive every fault kind with zero
//! lost records, bounded duplicates, and a measurable recovery.
//!
//! Each case runs one engine against a single injected fault window while
//! records flow before, during, and after the fault. The producer feeding
//! the input topic uses a patient retry budget, so a mid-window outage may
//! delay appends but never lose them — any missing output id is therefore
//! the engine's fault. `CHAOS_SEED` (default 42) selects the seed for the
//! generated-plan tests; CI runs the suite across several seeds.

use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;

use crayfish::broker::{Broker, Producer, ProducerConfig};
use crayfish::chaos::{poll_until, ChaosActions, FaultInjector, InjectorConfig};
use crayfish::framework::batch::{CrayfishDataBatch, ScoredBatch};
use crayfish::framework::scoring::ScorerSpec;
use crayfish::framework::{DataProcessor, ProcessorContext};
use crayfish::models::tiny;
use crayfish::obs::ObsHandle;
use crayfish::prelude::*;
use crayfish::serving::{ResilienceConfig, RestartableServer, ServingConfig};
use crayfish::sim::now_millis_f64;
use crayfish::tensor::Tensor;

/// Records fed per case: 60 pulsed across the fault window, 20 after it.
const FED: u64 = 80;

fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

fn feed_chunk(producer: &mut Producer, from: u64, to: u64) {
    for id in from..to {
        let t = Tensor::seeded_uniform([1, 8, 8], id, 0.0, 1.0);
        let payload = CrayfishDataBatch::from_tensor(id, now_millis_f64(), &t)
            .encode()
            .unwrap();
        producer.send(None, payload).unwrap();
    }
}

/// Every id currently on the output topic (with repeats).
fn out_ids(broker: &Broker) -> Vec<u64> {
    let mut ids = Vec::new();
    for p in 0..4u32 {
        if let Ok(records) = broker.read("out", p, 0, usize::MAX, usize::MAX) {
            for r in records {
                ids.push(ScoredBatch::decode(&r.value).unwrap().id);
            }
        }
    }
    ids
}

fn distinct(ids: &[u64]) -> HashSet<u64> {
    ids.iter().copied().collect()
}

/// One matrix cell: run `proc` through a single `kind` window and assert
/// no loss, bounded duplication, and a recovered incident.
fn run_case(engine: &str, proc: &dyn DataProcessor, kind: FaultKind) {
    run_case_on(engine, proc, kind, ClusterConfig::default());
}

/// [`run_case`] on an explicit broker cluster layout. Node-level faults
/// (`LeaderKill`, `PartitionIsolate`) run on `ClusterConfig::replicated()`
/// so the window forces failover instead of a total single-node outage.
fn run_case_on(engine: &str, proc: &dyn DataProcessor, kind: FaultKind, cluster: ClusterConfig) {
    let chaos = ChaosHandle::enabled();
    let broker = Broker::with_cluster(
        NetworkModel::zero(),
        ObsHandle::disabled(),
        chaos.clone(),
        cluster,
    )
    .unwrap();
    broker.create_topic("in", 4).unwrap();
    broker.create_topic("out", 4).unwrap();

    // Serving-facing faults need a real external server behind the
    // resilient client; broker/engine faults run the cheaper embedded path.
    let external = matches!(kind, FaultKind::ServingCrash | FaultKind::NetworkDegrade);
    let (scorer, server) = if external {
        let srv = RestartableServer::start(
            ExternalKind::TfServing,
            &tiny::tiny_mlp(1),
            ServingConfig::default(),
        )
        .unwrap();
        let scorer = ScorerSpec::ResilientExternal {
            kind: ExternalKind::TfServing,
            addr: srv.addr(),
            network: NetworkModel::zero(),
            config: ResilienceConfig {
                retry: RetryPolicy::patient(),
                chaos: chaos.clone(),
                ..Default::default()
            },
        };
        (scorer, Some(srv))
    } else {
        let scorer = ScorerSpec::Embedded {
            lib: EmbeddedLib::Onnx,
            graph: Arc::new(tiny::tiny_mlp(1)),
            device: Device::Cpu,
        };
        (scorer, None)
    };

    let ctx = ProcessorContext {
        broker: broker.clone(),
        input_topic: "in".into(),
        output_topic: "out".into(),
        group: "sut".into(),
        scorer,
        mp: 2,
    };
    let job = proc.start(ctx).unwrap();

    let mut producer = Producer::new(
        broker.clone(),
        "in",
        ProducerConfig {
            retry: RetryPolicy::patient(),
            ..Default::default()
        },
    )
    .unwrap();

    let plan = FaultPlan::single(kind, Duration::from_millis(50), Duration::from_millis(250));
    let mut actions = ChaosActions::default();
    if let Some(srv) = &server {
        let (crash, restore) = (srv.clone(), srv.clone());
        actions.on_serving_crash = Some(Box::new(move || crash.crash()));
        actions.on_serving_restore = Some(Box::new(move || {
            let _ = restore.restore();
        }));
    }
    let mut injector = FaultInjector::start(
        &plan,
        chaos.clone(),
        InjectorConfig {
            target_topic: "in".into(),
            ..Default::default()
        },
        actions,
    );

    // Pulse records across the fault window...
    let mut next = 0u64;
    while next < FED - 20 {
        feed_chunk(&mut producer, next, next + 5);
        next += 5;
        std::thread::sleep(Duration::from_millis(25));
    }
    // ...then a post-window tail: the first success after the window closes
    // the incident, which is what gives the report a finite MTTR.
    std::thread::sleep(Duration::from_millis(100));
    feed_chunk(&mut producer, next, FED);
    producer.flush();

    let drained = poll_until(Duration::from_secs(30), || {
        distinct(&out_ids(&broker)).len() as u64 >= FED
    });
    injector.stop();
    let all = out_ids(&broker);
    let seen = distinct(&all);
    job.stop();
    if let Some(srv) = &server {
        srv.crash();
    }

    assert!(
        drained,
        "{engine}/{kind:?}: only {} of {FED} distinct records arrived",
        seen.len()
    );
    assert_eq!(seen.len() as u64, FED, "{engine}/{kind:?} lost records");
    // At-least-once: a crash may replay at most one uncommitted fetch per
    // worker, so each record shows up at most a bounded number of times.
    let dups = all.len() as u64 - FED;
    assert!(
        dups <= FED,
        "{engine}/{kind:?}: {dups} duplicate emissions exceed the replay bound"
    );

    let report = chaos.report();
    assert_eq!(report.incidents.len(), 1, "{engine}/{kind:?}: {report}");
    let incident = &report.incidents[0];
    assert!(
        incident.end_ms.is_some(),
        "{engine}/{kind:?}: fault window never closed"
    );
    let mttr = incident.mttr_ms.unwrap_or(-1.0);
    assert!(
        mttr > 0.0,
        "{engine}/{kind:?}: no post-fault recovery observed: {report}"
    );
    if kind != FaultKind::WorkerCrash {
        // Point events (worker crashes) have no window, so they do not dent
        // availability; every windowed fault must.
        assert!(report.availability() < 1.0, "{engine}/{kind:?}: {report}");
    }
}

#[test]
fn partition_outages_are_survived_by_every_engine() {
    for (name, proc) in registry::all_processors() {
        run_case(name, proc.as_ref(), FaultKind::PartitionOutage);
    }
}

#[test]
fn serving_crashes_are_survived_by_every_engine() {
    for (name, proc) in registry::all_processors() {
        run_case(name, proc.as_ref(), FaultKind::ServingCrash);
    }
}

#[test]
fn network_degradation_is_survived_by_every_engine() {
    for (name, proc) in registry::all_processors() {
        run_case(name, proc.as_ref(), FaultKind::NetworkDegrade);
    }
}

#[test]
fn consumer_stalls_are_survived_by_every_engine() {
    for (name, proc) in registry::all_processors() {
        run_case(name, proc.as_ref(), FaultKind::ConsumerStall);
    }
}

#[test]
fn worker_crashes_are_survived_by_every_engine() {
    for (name, proc) in registry::all_processors() {
        run_case(name, proc.as_ref(), FaultKind::WorkerCrash);
    }
}

#[test]
fn leader_kills_fail_over_on_every_engine() {
    for (name, proc) in registry::all_processors() {
        run_case_on(
            name,
            proc.as_ref(),
            FaultKind::LeaderKill,
            ClusterConfig::replicated(),
        );
    }
}

#[test]
fn partition_isolation_is_survived_by_every_engine() {
    for (name, proc) in registry::all_processors() {
        run_case_on(
            name,
            proc.as_ref(),
            FaultKind::PartitionIsolate,
            ClusterConfig::replicated(),
        );
    }
}

/// The acceptance drill: kill the leader node of a replicated topic while a
/// producer streams and a consumer group consumes; a second member joins
/// mid-outage. Every record must arrive exactly once past the dedup layer,
/// committed offsets must never regress, the group must rebalance, and the
/// incident must report a finite MTTR. Deterministic for a fixed seed.
#[test]
fn leader_failover_drill_loses_nothing_and_rebalances() {
    use crayfish::broker::GroupConsumer;

    let seed = chaos_seed();
    let chaos = ChaosHandle::enabled();
    let broker = Broker::with_cluster(
        NetworkModel::zero(),
        ObsHandle::disabled(),
        chaos.clone(),
        ClusterConfig::replicated(),
    )
    .unwrap();
    broker.create_topic("t", 4).unwrap();

    const TOTAL: u64 = 120;
    let mut producer = Producer::new(
        broker.clone(),
        "t",
        ProducerConfig {
            retry: RetryPolicy::patient(),
            ..Default::default()
        },
    )
    .unwrap();

    let mut first = GroupConsumer::join(broker.clone(), "t", "drill", "a").unwrap();
    let mut seen: Vec<u64> = Vec::new();
    let mut committed_floor = [0u64; 4];

    let drain = |c: &mut GroupConsumer, seen: &mut Vec<u64>| {
        for r in c.poll(Duration::from_millis(20)).unwrap_or_default() {
            seen.push(u64::from_le_bytes(r.value[..8].try_into().unwrap()));
        }
        let _ = c.commit();
    };

    let mut second: Option<GroupConsumer> = None;
    let mut incident = None;
    for id in 0..TOTAL {
        producer
            .send(None, id.to_le_bytes().to_vec().into())
            .unwrap();
        if id % 8 == seed % 8 {
            producer.flush();
        }
        if id == TOTAL / 3 {
            // Kill partition 0's leader (node 0) mid-stream.
            incident = chaos.open_incident(FaultKind::LeaderKill);
            chaos.set_broker_dead(0, true);
        }
        if id == TOTAL / 2 {
            // Rebalance while the cluster is degraded.
            second = Some(GroupConsumer::join(broker.clone(), "t", "drill", "b").unwrap());
        }
        if id == 2 * TOTAL / 3 {
            // Node 0 returns; the incident window ends.
            chaos.set_broker_dead(0, false);
            chaos.end_fault(incident.take());
        }
        drain(&mut first, &mut seen);
        if let Some(c) = second.as_mut() {
            drain(c, &mut seen);
        }
        // Commits observed broker-side never move backwards.
        for p in 0..4u32 {
            let c = broker.committed_offset("drill", "t", p);
            assert!(
                c >= committed_floor[p as usize],
                "partition {p}: committed offset regressed {} -> {c}",
                committed_floor[p as usize]
            );
            committed_floor[p as usize] = c;
        }
    }
    producer.flush();
    drop(producer);

    let drained = poll_until(Duration::from_secs(20), || {
        // Keep draining both members until every id has been delivered.
        drain(&mut first, &mut seen);
        if let Some(c) = second.as_mut() {
            drain(c, &mut seen);
        }
        distinct(&seen).len() as u64 >= TOTAL
    });
    assert!(
        drained,
        "only {} of {TOTAL} ids arrived",
        distinct(&seen).len()
    );
    assert_eq!(
        seen.len() as u64,
        TOTAL,
        "duplicate deliveries past the dedup layer"
    );

    // The group really rebalanced: both members hold disjoint, non-empty
    // assignments covering all four partitions.
    let second = second.unwrap();
    let mut parts: Vec<u32> = first
        .assignment()
        .iter()
        .chain(second.assignment().iter())
        .copied()
        .collect();
    parts.sort_unstable();
    assert_eq!(parts, vec![0, 1, 2, 3]);
    assert!(!first.assignment().is_empty() && !second.assignment().is_empty());

    // Failover really happened: partition 0 moved off node 0 and back into
    // a full ISR after the node returned.
    let status = broker.replication_status("t").unwrap();
    assert_eq!(status[0].leader, 1, "partition 0 must have failed over");
    assert!(status[0].epoch >= 1);

    let report = chaos.report();
    assert_eq!(report.incidents.len(), 1, "{report}");
    assert!(
        report.incidents[0].mttr_ms.unwrap_or(-1.0) > 0.0,
        "MTTR must be measured to lag-zero: {report}"
    );
}

#[test]
fn same_seed_replays_the_identical_schedule() {
    let seed = chaos_seed();
    let horizon = Duration::from_secs(2);
    let a = FaultPlan::generate(seed, horizon, &FaultKind::ALL);
    let b = FaultPlan::generate(seed, horizon, &FaultKind::ALL);
    assert_eq!(a, b, "seed {seed} must replay bit-for-bit");
    let c = FaultPlan::generate(seed.wrapping_add(1), horizon, &FaultKind::ALL);
    assert_ne!(a.windows, c.windows, "adjacent seeds must differ");
}

#[test]
fn runner_reports_recovery_for_a_generated_plan() {
    let seed = chaos_seed();
    let mut spec = ExperimentSpec::quick(
        ModelSpec::TinyMlp,
        ServingChoice::External {
            kind: ExternalKind::TfServing,
            device: Device::Cpu,
        },
    );
    spec.duration = Duration::from_millis(1500);
    spec.chaos = ChaosHandle::enabled();
    spec.chaos_plan = FaultPlan::generate(
        seed,
        Duration::from_millis(1200),
        &[FaultKind::PartitionOutage, FaultKind::ServingCrash],
    );
    let result = run_experiment(&FlinkProcessor::new(), &spec).unwrap();
    assert!(result.consumed > 0, "nothing flowed through the chaos run");
    let report = result
        .recovery
        .expect("chaos-enabled run must carry a report");
    assert_eq!(report.incidents.len(), 2, "{report}");
    assert!(
        report.incidents.iter().all(|i| i.end_ms.is_some()),
        "{report}"
    );
    assert_eq!(report.unrecovered, 0, "{report}");
    assert!(report.mean_mttr_ms.unwrap_or(-1.0) > 0.0, "{report}");
    assert!(report.availability() < 1.0, "{report}");
}

#[test]
fn empty_plan_with_resilience_enabled_runs_clean() {
    // Resilience on, no faults scheduled: nothing is injected, no injector
    // thread is spawned, and the report comes back empty — the layer must
    // be inert when idle.
    let mut spec = ExperimentSpec::quick(
        ModelSpec::TinyMlp,
        ServingChoice::Embedded {
            lib: EmbeddedLib::Onnx,
            device: Device::Cpu,
        },
    );
    spec.duration = Duration::from_millis(800);
    spec.chaos = ChaosHandle::enabled();
    let result = run_experiment(&FlinkProcessor::new(), &spec).unwrap();
    assert!(result.consumed > 0);
    let report = result
        .recovery
        .expect("chaos-enabled run must carry a report");
    assert!(report.incidents.is_empty(), "{report}");
    assert_eq!(report.availability(), 1.0);
}
