//! Property tests for the replication protocol's two safety invariants:
//!
//! 1. the high watermark never exceeds the minimum log-end offset across
//!    the current ISR (a committed record is on every in-sync replica), and
//!    never moves backwards;
//! 2. committed consumer offsets never regress, whatever sequence of
//!    leader kills, isolations, heals, appends, and commits interleaves
//!    with them.
//!
//! Fault schedules are driven by proptest-generated op sequences, so every
//! failing case shrinks to a minimal kill/append/commit script.

use bytes::Bytes;
use crayfish_broker::replication::ReplicatedPartition;
use crayfish_broker::{Broker, ClusterConfig};
use crayfish_chaos::ChaosHandle;
use crayfish_obs::ObsHandle;
use crayfish_sim::NetworkModel;
use proptest::prelude::*;

/// One step of a generated chaos script against a replicated partition.
#[derive(Debug, Clone)]
enum Op {
    /// Append a batch of n records (via the idempotent dedup path).
    Append(u8),
    /// Kill / revive broker node (id % 3).
    Kill(u8),
    Revive(u8),
    /// Isolate / heal broker node (id % 3).
    Isolate(u8),
    Heal(u8),
    /// Commit the group's offset to the current high watermark.
    Commit,
}

/// Decode one generated word into an op (weights: appends and commits
/// dominate, node faults interleave). Plain integer encoding keeps the
/// strategy portable and the shrunk counterexample readable as a script.
fn decode(word: u16) -> Op {
    let node = ((word / 13) % 3) as u8;
    match word % 13 {
        0..=3 => Op::Append((word % 3) as u8 + 1),
        4 | 5 => Op::Kill(node),
        6 | 7 => Op::Revive(node),
        8 => Op::Isolate(node),
        9 => Op::Heal(node),
        _ => Op::Commit,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Invariant 1, checked on the raw partition after every op: the high
    /// watermark is monotonic and never exceeds the log end of any ISR
    /// member (commits exist on every in-sync replica).
    #[test]
    fn high_watermark_never_exceeds_min_isr_end(words in proptest::collection::vec(0u16..1024, 1..60)) {
        let chaos = ChaosHandle::enabled();
        let p = ReplicatedPartition::new(&[0, 1, 2], 2, usize::MAX);
        let mut seq = 0u64;
        let mut last_hw = 0u64;
        for op in words.iter().map(|&w| decode(w)) {
            match op {
                Op::Append(n) => {
                    let values: Vec<_> = (0..n).map(|_| (Bytes::from_static(b"x"), 0.0)).collect();
                    // NotEnoughReplicas / NoLeader are legitimate refusals
                    // under the generated fault pattern; safety is what we
                    // check, not availability.
                    if p.append(&chaos, None, Some((1, seq)), values).is_ok() {
                        seq += n as u64;
                    }
                }
                Op::Kill(b) => chaos.set_broker_dead(b as u32 % 3, true),
                Op::Revive(b) => chaos.set_broker_dead(b as u32 % 3, false),
                Op::Isolate(b) => chaos.set_broker_isolated(b as u32 % 3, true),
                Op::Heal(b) => chaos.set_broker_isolated(b as u32 % 3, false),
                Op::Commit => {}
            }
            let st = p.status();
            prop_assert!(st.high_watermark >= last_hw, "high watermark regressed");
            last_hw = st.high_watermark;
            // Every ISR member holds the full committed prefix: the commit
            // point never exceeds the shortest in-sync log. (Vacuous while
            // the partition is leaderless with an empty ISR.)
            prop_assert!(
                st.isr == 0 || st.high_watermark <= st.min_isr_end,
                "hw {} above min ISR end {}: {st:?}",
                st.high_watermark,
                st.min_isr_end
            );
            prop_assert!(
                st.high_watermark <= st.log_end,
                "hw {} above leader log end {}",
                st.high_watermark,
                st.log_end
            );
            for r in p.read(&chaos, 0, 0, usize::MAX, usize::MAX) {
                prop_assert!(r.offset < st.high_watermark.max(1));
            }
        }
    }

    /// Invariant 2, checked through the full broker API: a consumer
    /// group's committed offsets never regress across any failover
    /// pattern, and never point past the committed high watermark.
    #[test]
    fn committed_offsets_never_regress_across_failover(words in proptest::collection::vec(0u16..1024, 1..60)) {
        let chaos = ChaosHandle::enabled();
        let broker = Broker::with_cluster(
            NetworkModel::zero(),
            ObsHandle::disabled(),
            chaos.clone(),
            ClusterConfig::replicated(),
        )
        .unwrap();
        broker.create_topic("t", 1).unwrap();
        let mut seq = 0u64;
        let mut floor = 0u64;
        for op in words.iter().map(|&w| decode(w)) {
            match op {
                Op::Append(n) => {
                    let values: Vec<_> = (0..n).map(|_| (Bytes::from_static(b"x"), 0.0)).collect();
                    if broker.append_dedup("t", 0, 1, seq, values).is_ok() {
                        seq += n as u64;
                    }
                }
                Op::Kill(b) => chaos.set_broker_dead(b as u32 % 3, true),
                Op::Revive(b) => chaos.set_broker_dead(b as u32 % 3, false),
                Op::Isolate(b) => chaos.set_broker_isolated(b as u32 % 3, true),
                Op::Heal(b) => chaos.set_broker_isolated(b as u32 % 3, false),
                Op::Commit => {
                    if let Ok(end) = broker.end_offset("t", 0) {
                        broker.commit_offset("g", "t", 0, end);
                        // A stale replayed commit must be a no-op.
                        broker.commit_offset("g", "t", 0, end / 2);
                    }
                }
            }
            let committed = broker.committed_offset("g", "t", 0);
            prop_assert!(committed >= floor, "committed offset regressed {floor} -> {committed}");
            floor = committed;
            if let Ok(end) = broker.end_offset("t", 0) {
                prop_assert!(
                    committed <= end,
                    "committed {committed} beyond high watermark {end}"
                );
            }
        }
    }
}
