//! The input-workload producer (the paper's *input producer* component).
//!
//! Generates synthetic `CrayfishDataBatch` events at a configured rate —
//! constant ("open loop" / "closed loop" scenarios) or with periodic bursts
//! (`bd` / `tbb` in Table 1) — stamps each batch's creation time immediately
//! before handing it to the broker producer (§3.3 step 1), and writes it to
//! the input topic.
//!
//! Synthetic inputs are image-like: integer pixel values in `[0, 255]`,
//! which makes one FFNN data point ~3 KB on the JSON wire, matching the
//! paper's measured packet size (§4.2). Data content is irrelevant to the
//! measured quantities (§4.1), so each event reuses one of a small pool of
//! pre-rendered payload bodies; the id and timestamp are stamped per event.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use bytes::Bytes;

use crayfish_broker::{BrokerApi, Producer, ProducerConfig};
use crayfish_sim::{now_millis_f64, RatePacer, Stopwatch};
use crayfish_tensor::Shape;

use crate::dataset::Dataset;
use crate::Result;

/// Where the producer's payload bodies come from.
#[derive(Debug, Clone)]
pub enum InputSource {
    /// Synthetic image-like data, seeded.
    Synthetic {
        /// Data seed.
        seed: u64,
    },
    /// Items replayed cyclically from a loaded dataset file (§3.1 option 2).
    Dataset(Dataset),
}

/// The input-rate scenario (§4.1 "Workload Design").
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Workload {
    /// Constant rate in events/second (`ir`). Covers both the open-loop
    /// (high rate) and closed-loop (low rate) scenarios.
    Constant {
        /// Events per second.
        rate: f64,
    },
    /// Periodic bursts: `burst` events/s for `burst_secs`, then `base`
    /// events/s for `between_secs`, repeating. The paper generates 110 % of
    /// sustainable throughput during bursts and 70 % otherwise.
    Bursty {
        /// Baseline rate between bursts.
        base: f64,
        /// Rate during bursts.
        burst: f64,
        /// Burst duration in seconds (`bd`).
        burst_secs: f64,
        /// Time between bursts in seconds (`tbb`).
        between_secs: f64,
    },
}

impl Workload {
    /// The target rate at `elapsed` seconds into the run. Bursty runs start
    /// with a quiet period, then burst (so warmup discards quiet data).
    pub fn rate_at(&self, elapsed_secs: f64) -> f64 {
        match *self {
            Workload::Constant { rate } => rate,
            Workload::Bursty {
                base,
                burst,
                burst_secs,
                between_secs,
            } => {
                let cycle = burst_secs + between_secs;
                let phase = elapsed_secs % cycle;
                if phase < between_secs {
                    base
                } else {
                    burst
                }
            }
        }
    }

    /// True while a bursty workload is inside a burst at `elapsed` seconds.
    pub fn in_burst(&self, elapsed_secs: f64) -> bool {
        match *self {
            Workload::Constant { .. } => false,
            Workload::Bursty {
                burst_secs,
                between_secs,
                ..
            } => (elapsed_secs % (burst_secs + between_secs)) >= between_secs,
        }
    }
}

/// Handle to the generator thread.
#[derive(Debug)]
pub struct InputProducerHandle {
    stop: Arc<AtomicBool>,
    produced: Arc<AtomicU64>,
    thread: Option<JoinHandle<()>>,
}

impl InputProducerHandle {
    /// Events produced so far.
    pub fn produced(&self) -> u64 {
        self.produced.load(Ordering::Relaxed)
    }

    /// Stop generating and join the thread. Returns the final count.
    pub fn stop(mut self) -> u64 {
        self.halt();
        self.produced()
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for InputProducerHandle {
    fn drop(&mut self) {
        self.halt();
    }
}

/// Pre-render `variants` JSON payload bodies (everything after the
/// timestamp fields) for an `item_shape` batch of `bsz` points.
fn render_bodies(item_shape: &Shape, bsz: usize, variants: usize, seed: u64) -> Vec<String> {
    let numel = item_shape.numel() * bsz;
    let shape_json = serde_json::to_string(item_shape.dims()).expect("shape to json");
    (0..variants)
        .map(|v| {
            // Image-like integer pixels, deterministic per variant.
            let mut state = seed.wrapping_add(v as u64).wrapping_mul(0x9E3779B97F4A7C15) | 1;
            let mut body = String::with_capacity(numel * 4 + shape_json.len() + 64);
            write!(body, "\"shape\":{shape_json},\"bsz\":{bsz},\"data\":[")
                .expect("write to string");
            for i in 0..numel {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                if i > 0 {
                    body.push(',');
                }
                write!(body, "{}", state % 256).expect("write to string");
            }
            body.push_str("]}");
            body
        })
        .collect()
}

/// Render payload bodies from a dataset: each body packs `bsz` consecutive
/// dataset items (cyclic), serialized with exact float values.
fn render_dataset_bodies(ds: &Dataset, bsz: usize, variants: usize) -> Result<Vec<String>> {
    let shape_json = serde_json::to_string(ds.shape().dims())
        .map_err(|e| crate::CoreError::Codec(format!("shape to json: {e}")))?;
    let mut bodies = Vec::with_capacity(variants);
    for v in 0..variants {
        let mut data: Vec<f32> = Vec::with_capacity(ds.shape().numel() * bsz);
        for b in 0..bsz {
            data.extend_from_slice(ds.item(v * bsz + b));
        }
        let data_json = serde_json::to_string(&data)
            .map_err(|e| crate::CoreError::Codec(format!("data to json: {e}")))?;
        bodies.push(format!(
            "\"shape\":{shape_json},\"bsz\":{bsz},\"data\":{data_json}}}"
        ));
    }
    Ok(bodies)
}

/// Start the input producer: generates batches of `bsz` items of
/// `item_shape` at the rate `workload` dictates, into `topic`.
pub fn start_producer(
    broker: Arc<dyn BrokerApi>,
    topic: &str,
    item_shape: Shape,
    bsz: usize,
    workload: Workload,
    seed: u64,
) -> Result<InputProducerHandle> {
    start_producer_with_source(
        broker,
        topic,
        item_shape,
        bsz,
        workload,
        InputSource::Synthetic { seed },
    )
}

/// [`start_producer`] with an explicit input source (synthetic or a real
/// dataset).
pub fn start_producer_with_source(
    broker: Arc<dyn BrokerApi>,
    topic: &str,
    item_shape: Shape,
    bsz: usize,
    workload: Workload,
    source: InputSource,
) -> Result<InputProducerHandle> {
    let obs = broker.obs().clone();
    let mut producer = Producer::new(broker, topic, ProducerConfig::default())?;
    let stop = Arc::new(AtomicBool::new(false));
    let produced = Arc::new(AtomicU64::new(0));
    let bodies = match &source {
        InputSource::Synthetic { seed } => render_bodies(&item_shape, bsz.max(1), 4, *seed),
        InputSource::Dataset(ds) => {
            if *ds.shape() != item_shape {
                return Err(crate::CoreError::Config(format!(
                    "dataset items of shape {} for a model expecting {item_shape}",
                    ds.shape()
                )));
            }
            let variants = ds.len().div_ceil(bsz.max(1)).clamp(1, 8);
            render_dataset_bodies(ds, bsz.max(1), variants)?
        }
    };

    let stop_flag = stop.clone();
    let counter = produced.clone();
    let thread = std::thread::Builder::new()
        .name("crayfish-input-producer".into())
        .spawn(move || {
            let sw = Stopwatch::start();
            let mut pacer = RatePacer::new(workload.rate_at(0.0));
            let mut id = 0u64;
            let records_in = obs.counter("records_in");
            while !stop_flag.load(Ordering::SeqCst) {
                pacer.set_rate(workload.rate_at(sw.elapsed().as_secs_f64()));
                pacer.pace();
                if stop_flag.load(Ordering::SeqCst) {
                    break;
                }
                // The `batch` span covers assembling one wire batch: stamping
                // the id/creation time and rendering the payload bytes.
                let span = obs.timer(crate::obs::Stage::Batch);
                let body = &bodies[(id % bodies.len() as u64) as usize];
                let mut payload = String::with_capacity(body.len() + 48);
                // The *start* timestamp, recorded prior to the broker write.
                write!(
                    payload,
                    "{{\"id\":{id},\"created_ms\":{:.3},",
                    now_millis_f64()
                )
                .expect("write to string");
                payload.push_str(body);
                let payload = Bytes::from(payload);
                span.stop();
                if producer.send(None, payload).is_err() {
                    break;
                }
                records_in.inc();
                id += 1;
                counter.store(id, Ordering::Relaxed);
            }
            producer.flush();
        })
        .map_err(|e| crate::CoreError::Config(format!("spawn producer: {e}")))?;

    Ok(InputProducerHandle {
        stop,
        produced,
        thread: Some(thread),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::CrayfishDataBatch;
    use crayfish_broker::Broker;
    use crayfish_sim::NetworkModel;
    use std::time::Duration;

    #[test]
    fn constant_workload_rate() {
        let w = Workload::Constant { rate: 100.0 };
        assert_eq!(w.rate_at(0.0), 100.0);
        assert_eq!(w.rate_at(1e6), 100.0);
        assert!(!w.in_burst(5.0));
    }

    #[test]
    fn bursty_workload_phases() {
        let w = Workload::Bursty {
            base: 70.0,
            burst: 110.0,
            burst_secs: 30.0,
            between_secs: 120.0,
        };
        assert_eq!(w.rate_at(0.0), 70.0);
        assert_eq!(w.rate_at(119.0), 70.0);
        assert_eq!(w.rate_at(121.0), 110.0);
        assert!(w.in_burst(125.0));
        // Next cycle repeats.
        assert_eq!(w.rate_at(151.0), 70.0);
        assert!(w.in_burst(150.0 + 125.0));
    }

    #[test]
    fn produced_payloads_are_valid_batches() {
        let broker = Broker::new(NetworkModel::zero());
        broker.create_topic("in", 4).unwrap();
        let handle = start_producer(
            broker.clone(),
            "in",
            Shape::from([28, 28]),
            2,
            Workload::Constant { rate: 500.0 },
            7,
        )
        .unwrap();
        std::thread::sleep(Duration::from_millis(100));
        let produced = handle.stop();
        assert!(produced > 10, "only {produced} produced");
        let recs = broker.read("in", 0, 0, 10, usize::MAX).unwrap();
        assert!(!recs.is_empty());
        let batch = CrayfishDataBatch::decode(&recs[0].value).unwrap();
        assert_eq!(batch.bsz, 2);
        assert_eq!(batch.shape, vec![28, 28]);
        assert!(batch.created_ms > 0.0);
        // Pixel-valued data.
        assert!(batch.data.iter().all(|&v| (0.0..256.0).contains(&v)));
        // The tensor reassembles.
        assert_eq!(batch.to_tensor().unwrap().shape().dims(), &[2, 28, 28]);
    }

    #[test]
    fn wire_size_matches_paper_3kb_per_ffnn_point() {
        let bodies = render_bodies(&Shape::from([28, 28]), 1, 1, 1);
        let size = bodies[0].len();
        assert!((2_000..4_500).contains(&size), "body is {size} bytes");
    }

    #[test]
    fn rate_is_approximately_honoured() {
        let broker = Broker::new(NetworkModel::zero());
        broker.create_topic("in", 2).unwrap();
        let handle = start_producer(
            broker,
            "in",
            Shape::from([4]),
            1,
            Workload::Constant { rate: 1000.0 },
            1,
        )
        .unwrap();
        std::thread::sleep(Duration::from_millis(300));
        let produced = handle.stop() as f64;
        // 300 ms at 1 kHz ≈ 300 events; allow wide scheduling noise but not
        // unpaced generation.
        assert!(produced > 100.0 && produced < 400.0, "{produced} events");
    }

    #[test]
    fn dataset_sourced_payloads_replay_real_items() {
        use crate::dataset::{write_dataset, Dataset};
        let dir = std::env::temp_dir().join("crayfish-workload-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("producer.crfd");
        let shape = Shape::from([2, 2]);
        let items: Vec<crayfish_tensor::Tensor> = (0..3)
            .map(|i| crayfish_tensor::Tensor::seeded_uniform([2, 2], i, 0.0, 9.0))
            .collect();
        write_dataset(&path, &shape, &items).unwrap();
        let ds = Dataset::load(&path).unwrap();

        let broker = Broker::new(NetworkModel::zero());
        broker.create_topic("in", 1).unwrap();
        let handle = start_producer_with_source(
            broker.clone(),
            "in",
            shape,
            1,
            Workload::Constant { rate: 500.0 },
            InputSource::Dataset(ds),
        )
        .unwrap();
        std::thread::sleep(Duration::from_millis(100));
        handle.stop();
        let recs = broker.read("in", 0, 0, 10, usize::MAX).unwrap();
        assert!(!recs.is_empty());
        let batch = CrayfishDataBatch::decode(&recs[0].value).unwrap();
        // Payload data comes from the dataset, not the synthetic generator.
        assert_eq!(batch.data, items[0].data());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dataset_shape_mismatch_is_rejected() {
        use crate::dataset::{write_dataset, Dataset};
        let dir = std::env::temp_dir().join("crayfish-workload-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mismatch.crfd");
        write_dataset(
            &path,
            &Shape::from([3]),
            &[crayfish_tensor::Tensor::zeros([3])],
        )
        .unwrap();
        let ds = Dataset::load(&path).unwrap();
        let broker = Broker::new(NetworkModel::zero());
        broker.create_topic("in", 1).unwrap();
        let res = start_producer_with_source(
            broker,
            "in",
            Shape::from([4]),
            1,
            Workload::Constant { rate: 10.0 },
            InputSource::Dataset(ds),
        );
        assert!(res.is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn ids_are_monotonic_from_zero() {
        let broker = Broker::new(NetworkModel::zero());
        broker.create_topic("in", 1).unwrap();
        let handle = start_producer(
            broker.clone(),
            "in",
            Shape::from([4]),
            1,
            Workload::Constant { rate: 2000.0 },
            1,
        )
        .unwrap();
        std::thread::sleep(Duration::from_millis(100));
        handle.stop();
        let recs = broker.read("in", 0, 0, 1000, usize::MAX).unwrap();
        let ids: Vec<u64> = recs
            .iter()
            .map(|r| CrayfishDataBatch::decode(&r.value).unwrap().id)
            .collect();
        for pair in ids.windows(2) {
            assert_eq!(pair[1], pair[0] + 1);
        }
        assert_eq!(ids.first(), Some(&0));
    }
}
