//! The bounded cross-connection batch queue.
//!
//! One `BatchQueue` fronts one deployment (model). Transport threads
//! `push` decoded requests; scoring workers call `next_batch` and receive
//! up to `max_batch` requests in arrival order. The front of the FIFO is
//! always the request whose `max_wait` deadline expires first, so a FIFO
//! drain *is* oldest-deadline-first flushing.
//!
//! Built on `crayfish-sync` so the producer/flusher/shutdown handoff is
//! loom-checkable: under `--cfg loom` the clock-dependent pieces (enqueue
//! stamps, the `max_wait` timeout) degrade to pure condition-variable
//! waits, which is exactly the discipline the shim documents — timeouts
//! are a liveness bound, never the sole wakeup path.

use std::collections::VecDeque;
use std::time::Duration;

use crayfish_sync::atomic::{AtomicU64, Ordering};
use crayfish_sync::{Arc, Condvar, Mutex};

use crate::metrics::AdmissionMetrics;
use crate::{AdmissionConfig, AdmissionError};

/// Monotonic enqueue stamp. Under loom there is no clock; every wait is a
/// plain condvar wait and `waited` reports zero.
#[derive(Debug, Clone)]
pub(crate) struct Stamp {
    #[cfg(not(loom))]
    start: crayfish_sim::Stopwatch,
}

impl Stamp {
    fn now() -> Stamp {
        Stamp {
            #[cfg(not(loom))]
            start: crayfish_sim::Stopwatch::start(),
        }
    }

    fn elapsed(&self) -> Duration {
        #[cfg(not(loom))]
        {
            self.start.elapsed()
        }
        #[cfg(loom)]
        {
            Duration::ZERO
        }
    }
}

/// One admitted request: the caller's payload plus its queue-entry stamp.
#[derive(Debug)]
pub struct Pending<P> {
    /// The transport-supplied payload (decoded request plus completion
    /// token).
    pub payload: P,
    stamp: Stamp,
}

impl<P> Pending<P> {
    /// How long this request has been waiting since admission.
    pub fn waited(&self) -> Duration {
        self.stamp.elapsed()
    }
}

/// A rejected `push`: the admission error plus the payload handed back to
/// the transport, so the caller's completion token is never dropped
/// silently.
#[derive(Debug)]
pub struct Rejected<P> {
    /// Why admission failed.
    pub error: AdmissionError,
    /// The payload that was not admitted.
    pub payload: P,
}

struct QState<P> {
    items: VecDeque<Pending<P>>,
    shutdown: bool,
}

struct Shared<P> {
    config: AdmissionConfig,
    /// Scoring replica count, for the drain-time estimate behind
    /// `retry_after`.
    replicas: usize,
    state: Mutex<QState<P>>,
    /// Wakes scoring workers (new work, or shutdown) and re-evaluates
    /// batch-full conditions. Every waiter re-checks its predicate.
    cv: Condvar,
    /// EWMA of observed batch service time in nanoseconds (relaxed; an
    /// approximate hint, not a synchronisation edge). Zero = no history.
    ewma_batch_ns: AtomicU64,
    metrics: AdmissionMetrics,
}

/// A cloneable handle to one deployment's admission queue.
pub struct BatchQueue<P> {
    shared: Arc<Shared<P>>,
}

impl<P> Clone for BatchQueue<P> {
    fn clone(&self) -> Self {
        BatchQueue {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<P> BatchQueue<P> {
    /// A queue for one deployment scored by `replicas` workers, reporting
    /// into `metrics`.
    pub fn new(config: AdmissionConfig, replicas: usize, metrics: AdmissionMetrics) -> Self {
        BatchQueue {
            shared: Arc::new(Shared {
                config: config.normalized(),
                replicas: replicas.max(1),
                state: Mutex::new(QState {
                    items: VecDeque::new(),
                    shutdown: false,
                }),
                cv: Condvar::new(),
                ewma_batch_ns: AtomicU64::new(0),
                metrics,
            }),
        }
    }

    /// The active configuration (normalized).
    pub fn config(&self) -> AdmissionConfig {
        self.shared.config
    }

    /// Admit one request, or fail fast. Never blocks: a full queue returns
    /// [`AdmissionError::Overloaded`] with a drain-time hint and the
    /// request is counted as shed; a stopped queue returns
    /// [`AdmissionError::Shutdown`]. Rejections hand the payload back so
    /// the transport can still answer the caller (e.g. with an
    /// `Overloaded` wire response carrying the hint).
    pub fn push(&self, payload: P) -> Result<(), Rejected<P>> {
        let sh = &*self.shared;
        let mut st = sh.state.lock();
        if st.shutdown {
            return Err(Rejected {
                error: AdmissionError::Shutdown,
                payload,
            });
        }
        if st.items.len() >= sh.config.queue_capacity {
            drop(st);
            sh.metrics.shed.inc();
            return Err(Rejected {
                error: AdmissionError::Overloaded {
                    retry_after: self.retry_after(),
                },
                payload,
            });
        }
        st.items.push_back(Pending {
            payload,
            stamp: Stamp::now(),
        });
        sh.metrics.queue_depth.set(st.items.len() as i64);
        drop(st);
        // Wake a worker; a worker parked on the oldest request's deadline
        // also re-checks whether the batch just filled.
        sh.cv.notify_all();
        Ok(())
    }

    /// Block until a batch is ready and drain it (arrival order, at most
    /// `max_batch`) into `out`. Returns `false` — with `out` untouched —
    /// only once the queue is shut down *and* empty, so every admitted
    /// request is delivered exactly once even across shutdown.
    ///
    /// A batch is ready when it is full (`max_batch` requests waiting),
    /// when the oldest waiting request has been queued for `max_wait`, or
    /// when the queue is shutting down (drain whatever remains).
    pub fn next_batch(&self, out: &mut Vec<Pending<P>>) -> bool {
        let sh = &*self.shared;
        let mut st = sh.state.lock();
        loop {
            if st.items.is_empty() {
                if st.shutdown {
                    return false;
                }
                st = sh.cv.wait(st);
                continue;
            }
            if st.items.len() >= sh.config.max_batch || st.shutdown {
                break;
            }
            // Park until the oldest request's deadline. Front of the FIFO
            // is the oldest, so its deadline is the earliest.
            let waited = st.items.front().map(|p| p.waited()).unwrap_or_default();
            let Some(remaining) = sh.config.max_wait.checked_sub(waited) else {
                break;
            };
            if remaining.is_zero() {
                break;
            }
            let (guard, _timed_out) = sh.cv.wait_timeout(st, remaining);
            st = guard;
        }
        let take = st.items.len().min(sh.config.max_batch);
        out.extend(st.items.drain(..take));
        let left = st.items.len();
        sh.metrics.queue_depth.set(left as i64);
        drop(st);
        if left > 0 {
            // More work remains: hand it to another parked worker.
            sh.cv.notify_all();
        }
        true
    }

    /// Stop admitting work and wake every worker. Requests already queued
    /// are still delivered by `next_batch`; once drained, workers see
    /// `false` and exit.
    pub fn shutdown(&self) {
        let sh = &*self.shared;
        let mut st = sh.state.lock();
        st.shutdown = true;
        drop(st);
        sh.cv.notify_all();
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        self.shared.state.lock().items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Record one completed batch: service time feeds the EWMA behind
    /// `retry_after`, and the batch size / per-request wait go to the
    /// histograms. Called by the dispatcher.
    pub(crate) fn note_batch(&self, service: Duration, size: usize) {
        let sh = &*self.shared;
        sh.metrics.batch_size.observe_ns(size as u64);
        let sample = service.as_nanos() as u64;
        let old = sh.ewma_batch_ns.load(Ordering::Relaxed);
        let new = if old == 0 {
            sample
        } else {
            // 0.8 old + 0.2 new, in integer arithmetic.
            old - old / 5 + sample / 5
        };
        sh.ewma_batch_ns.store(new, Ordering::Relaxed);
    }

    /// Per-request admission-wait histogram handle (recorded by the
    /// dispatcher as it drains).
    pub(crate) fn metrics(&self) -> &AdmissionMetrics {
        &self.shared.metrics
    }

    /// Estimated time until a full queue drains enough to admit new work:
    /// the batches ahead of a new arrival divided across replicas, priced
    /// at the observed batch service time. Falls back to `max_wait` before
    /// any batch has completed.
    fn retry_after(&self) -> Duration {
        let sh = &*self.shared;
        let ewma = sh.ewma_batch_ns.load(Ordering::Relaxed);
        if ewma == 0 {
            return sh.config.max_wait.max(Duration::from_millis(5));
        }
        let batches_ahead = sh.config.queue_capacity.div_ceil(sh.config.max_batch);
        let per_replica = batches_ahead.div_ceil(sh.replicas) as u64;
        let est = Duration::from_nanos(ewma.saturating_mul(per_replica));
        est.clamp(Duration::from_millis(1), Duration::from_secs(2))
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use crayfish_obs::ObsHandle;

    fn queue(config: AdmissionConfig) -> BatchQueue<u64> {
        BatchQueue::new(config, 1, AdmissionMetrics::new(&ObsHandle::disabled()))
    }

    #[test]
    fn full_batch_flushes_without_waiting() {
        let q = queue(AdmissionConfig {
            max_batch: 4,
            max_wait: Duration::from_secs(60),
            queue_capacity: 16,
        });
        for i in 0..4 {
            q.push(i).unwrap();
        }
        let mut out = Vec::new();
        let sw = crayfish_sim::Stopwatch::start();
        assert!(q.next_batch(&mut out));
        assert!(sw.elapsed() < Duration::from_secs(5), "full batch blocked");
        let got: Vec<u64> = out.iter().map(|p| p.payload).collect();
        assert_eq!(got, vec![0, 1, 2, 3], "arrival order violated");
    }

    #[test]
    fn max_wait_flushes_a_partial_batch() {
        let q = queue(AdmissionConfig {
            max_batch: 64,
            max_wait: Duration::from_millis(20),
            queue_capacity: 128,
        });
        q.push(7).unwrap();
        let mut out = Vec::new();
        let sw = crayfish_sim::Stopwatch::start();
        assert!(q.next_batch(&mut out));
        let waited = sw.elapsed();
        assert_eq!(out.len(), 1);
        assert!(
            waited >= Duration::from_millis(10),
            "flushed before the deadline: {waited:?}"
        );
        assert!(out[0].waited() >= Duration::from_millis(10));
    }

    #[test]
    fn zero_max_wait_flushes_a_partial_batch_immediately() {
        // The default continuous-batching mode: an idle worker drains
        // whatever is queued without holding the batch open, so low load
        // pays no batching latency tax.
        let q = queue(AdmissionConfig {
            max_batch: 64,
            max_wait: Duration::ZERO,
            queue_capacity: 128,
        });
        q.push(7).unwrap();
        let mut out = Vec::new();
        let sw = crayfish_sim::Stopwatch::start();
        assert!(q.next_batch(&mut out));
        assert!(
            sw.elapsed() < Duration::from_millis(50),
            "zero max_wait still parked"
        );
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn overflow_sheds_with_a_hint() {
        let q = queue(AdmissionConfig {
            max_batch: 2,
            max_wait: Duration::from_millis(1),
            queue_capacity: 2,
        });
        q.push(1).unwrap();
        q.push(2).unwrap();
        match q.push(3) {
            Err(Rejected {
                error: AdmissionError::Overloaded { retry_after },
                payload,
            }) => {
                assert!(retry_after > Duration::ZERO);
                assert_eq!(payload, 3, "rejected payload not handed back");
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        // Draining reopens admission.
        let mut out = Vec::new();
        assert!(q.next_batch(&mut out));
        q.push(3).unwrap();
    }

    #[test]
    fn shutdown_drains_then_ends() {
        let q = queue(AdmissionConfig {
            max_batch: 2,
            max_wait: Duration::from_secs(60),
            queue_capacity: 16,
        });
        for i in 0..5 {
            q.push(i).unwrap();
        }
        q.shutdown();
        assert!(matches!(
            q.push(9),
            Err(Rejected {
                error: AdmissionError::Shutdown,
                payload: 9,
            })
        ));
        let mut seen = Vec::new();
        let mut out = Vec::new();
        while q.next_batch(&mut out) {
            assert!(out.len() <= 2, "batch cap ignored during drain");
            seen.extend(out.drain(..).map(|p| p.payload));
        }
        assert_eq!(seen, vec![0, 1, 2, 3, 4], "requests lost across shutdown");
    }

    #[test]
    fn retry_after_tracks_observed_service_time() {
        let q = queue(AdmissionConfig {
            max_batch: 4,
            max_wait: Duration::from_millis(1),
            queue_capacity: 8,
        });
        q.note_batch(Duration::from_millis(10), 4);
        for i in 0..8 {
            q.push(i).unwrap();
        }
        match q.push(99) {
            Err(Rejected {
                error: AdmissionError::Overloaded { retry_after },
                ..
            }) => {
                // 2 batches ahead on 1 replica at ~10 ms each.
                assert!(retry_after >= Duration::from_millis(10), "{retry_after:?}");
                assert!(retry_after <= Duration::from_secs(2));
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
    }
}
