//! The fixed pipeline-stage taxonomy.
//!
//! Every span an engine, broker client, or serving component records is
//! tagged with one of these stages, so a run's time budget decomposes the
//! same way regardless of which engine × serving configuration produced it.

/// One stage of the streaming-inference pipeline.
///
/// The stages are chosen so that, for a given record, the instrumented
/// spans do not overlap: their sum is a lower bound on the record's
/// end-to-end latency (the remainder is queueing — broker residency,
/// mailbox waits, batching delay — which no single component owns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Stage {
    /// Engine-side input handling: per-record framework cost between the
    /// fetch response and the scoring operator.
    Ingest = 0,
    /// Wire-format decode: `CrayfishDataBatch` JSON parse + tensor rebuild.
    Decode = 1,
    /// Batch assembly (input producer) and micro-batch planning (Spark).
    Batch = 2,
    /// Model execution proper (embedded library or a server-side worker).
    Inference = 3,
    /// Blocking client round trip to an external serving process.
    ServingRpc = 4,
    /// Wire-format encode of the scored result.
    Encode = 5,
    /// Engine-side output handling: handing the result to the sink producer.
    Emit = 6,
    /// Broker producer request: batch ship + log append (client view).
    BrokerAppend = 7,
    /// Broker fetch: reading available records (excludes long-poll waiting,
    /// which is idle time, not record latency).
    BrokerFetch = 8,
}

impl Stage {
    /// Number of stages in the taxonomy.
    pub const COUNT: usize = 9;

    /// All stages, in pipeline order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::Ingest,
        Stage::Decode,
        Stage::Batch,
        Stage::Inference,
        Stage::ServingRpc,
        Stage::Encode,
        Stage::Emit,
        Stage::BrokerAppend,
        Stage::BrokerFetch,
    ];

    /// Stable label used in metric exposition and configuration.
    pub fn name(&self) -> &'static str {
        match self {
            Stage::Ingest => "ingest",
            Stage::Decode => "decode",
            Stage::Batch => "batch",
            Stage::Inference => "inference",
            Stage::ServingRpc => "serving_rpc",
            Stage::Encode => "encode",
            Stage::Emit => "emit",
            Stage::BrokerAppend => "broker_append",
            Stage::BrokerFetch => "broker_fetch",
        }
    }

    /// Look a stage up by its exposition label.
    pub fn by_name(name: &str) -> Option<Stage> {
        Stage::ALL.into_iter().find(|s| s.name() == name)
    }

    /// Dense index into per-stage arrays.
    pub fn index(&self) -> usize {
        *self as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip_and_indices_are_dense() {
        for (i, s) in Stage::ALL.into_iter().enumerate() {
            assert_eq!(s.index(), i);
            assert_eq!(Stage::by_name(s.name()), Some(s));
        }
        assert_eq!(Stage::by_name("warp_drive"), None);
    }
}
