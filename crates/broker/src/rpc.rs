//! Typed broker RPC: [`BrokerApi`] over a [`crayfish_net::Transport`].
//!
//! The wire format is one JSON document per length-prefixed frame (the
//! shared `crayfish-net` codec — the same framing the serving tier's gRPC
//! analog uses). A request is a [`BrokerRequest`]; the response is a
//! [`BrokerReply`], an explicit `Ok`/`Err` envelope whose error arm is the
//! *full typed* [`BrokerError`] — `FencedLeaderEpoch { current }`,
//! `NotEnoughReplicas { isr, min_isr }` and friends round-trip with their
//! fields intact, so a remote producer's retry/fence logic matches the
//! in-process one exactly (no lossy `to_string()` anywhere on the path).
//!
//! [`serve`] exposes any `BrokerApi` on a TCP address via the shared
//! reactor; [`RemoteBroker`] is the client side, itself a `BrokerApi`, so
//! producers and consumers cannot tell the difference.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use crayfish_net::{spawn_rpc_server, RpcHandler, ServerHandle, Transport};
use crayfish_sim::NetworkModel;

use crate::api::BrokerApi;
use crate::error::BrokerError;
use crate::replication::ReplicationStatus;
use crate::topic::FetchedRecord;
use crate::Result;

/// Longest long-poll the server honours per `WaitForData` RPC. Kept safely
/// below the client transport's read timeout so a quiet topic never reads
/// as a dead connection.
const MAX_SERVER_POLL: Duration = Duration::from_secs(8);

/// Long-poll slice a [`RemoteBroker`] asks for per RPC; the client loops
/// slices until its caller's deadline so a mid-poll failover is noticed
/// within one slice.
const CLIENT_POLL_SLICE: Duration = Duration::from_secs(1);

/// One record value as carried by an append request.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WireValue {
    /// Record payload.
    pub value: Vec<u8>,
    /// Client-side send time.
    pub produce_time_ms: f64,
}

/// One fetched record as carried by a read response.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WireRecord {
    /// Partition the record came from.
    pub partition: u32,
    /// Offset within the partition.
    pub offset: u64,
    /// Record payload.
    pub value: Vec<u8>,
    /// Client-side send time.
    pub produce_time_ms: f64,
    /// Broker-side `LogAppendTime`.
    pub append_time_ms: f64,
}

impl From<FetchedRecord> for WireRecord {
    fn from(r: FetchedRecord) -> WireRecord {
        WireRecord {
            partition: r.partition,
            offset: r.offset,
            value: r.value.to_vec(),
            produce_time_ms: r.produce_time_ms,
            append_time_ms: r.append_time_ms,
        }
    }
}

impl From<WireRecord> for FetchedRecord {
    fn from(r: WireRecord) -> FetchedRecord {
        FetchedRecord {
            partition: r.partition,
            offset: r.offset,
            value: Bytes::from(r.value),
            produce_time_ms: r.produce_time_ms,
            append_time_ms: r.append_time_ms,
        }
    }
}

pub(crate) fn wire_values(values: Vec<(Bytes, f64)>) -> Vec<WireValue> {
    values
        .into_iter()
        .map(|(value, produce_time_ms)| WireValue {
            value: value.to_vec(),
            produce_time_ms,
        })
        .collect()
}

pub(crate) fn unwire_values(values: Vec<WireValue>) -> Vec<(Bytes, f64)> {
    values
        .into_iter()
        .map(|v| (Bytes::from(v.value), v.produce_time_ms))
        .collect()
}

/// Every operation of [`BrokerApi`] as a wire message.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum BrokerRequest {
    /// `create_topic` / `create_topic_with_retention`.
    CreateTopic {
        /// Topic name.
        name: String,
        /// Partition count.
        partitions: u32,
        /// Retention override (`None` = default).
        retention_bytes: Option<u64>,
    },
    /// `delete_topic`.
    DeleteTopic {
        /// Topic name.
        name: String,
    },
    /// `partitions`.
    Partitions {
        /// Topic name.
        topic: String,
    },
    /// `earliest_offset`.
    EarliestOffset {
        /// Topic name.
        topic: String,
        /// Partition.
        partition: u32,
    },
    /// `end_offset`.
    EndOffset {
        /// Topic name.
        topic: String,
        /// Partition.
        partition: u32,
    },
    /// `total_records`.
    TotalRecords {
        /// Topic name.
        topic: String,
    },
    /// `append`.
    Append {
        /// Topic name.
        topic: String,
        /// Partition.
        partition: u32,
        /// Records.
        values: Vec<WireValue>,
    },
    /// `append_dedup`.
    AppendDedup {
        /// Topic name.
        topic: String,
        /// Partition.
        partition: u32,
        /// Producer id for the dedup window.
        producer_id: u64,
        /// Sequence number of the first record.
        first_seq: u64,
        /// Records.
        values: Vec<WireValue>,
    },
    /// `read`.
    Read {
        /// Topic name.
        topic: String,
        /// Partition.
        partition: u32,
        /// Start offset.
        offset: u64,
        /// Record cap.
        max_records: u64,
        /// Byte cap.
        max_bytes: u64,
    },
    /// `replication_status`.
    ReplicationStatus {
        /// Topic name.
        topic: String,
    },
    /// `commit_offset`.
    CommitOffset {
        /// Consumer group.
        group: String,
        /// Topic name.
        topic: String,
        /// Partition.
        partition: u32,
        /// Next offset to read.
        next: u64,
    },
    /// `committed_offset`.
    CommittedOffset {
        /// Consumer group.
        group: String,
        /// Topic name.
        topic: String,
        /// Partition.
        partition: u32,
    },
    /// `group_lag`.
    GroupLag {
        /// Consumer group.
        group: String,
        /// Topic name.
        topic: String,
    },
    /// `join_group`.
    JoinGroup {
        /// Consumer group.
        group: String,
        /// Member id.
        member: String,
    },
    /// `leave_group`.
    LeaveGroup {
        /// Consumer group.
        group: String,
        /// Member id.
        member: String,
    },
    /// `group_generation`.
    GroupGeneration {
        /// Consumer group.
        group: String,
    },
    /// `group_assignment`.
    GroupAssignment {
        /// Consumer group.
        group: String,
        /// Topic name.
        topic: String,
        /// Member id.
        member: String,
    },
    /// `commit_offsets_fenced`.
    CommitOffsetsFenced {
        /// Consumer group.
        group: String,
        /// Topic name.
        topic: String,
        /// Member id.
        member: String,
        /// The member's generation.
        generation: u64,
        /// `(partition, next_offset)` pairs.
        offsets: Vec<(u32, u64)>,
    },
    /// `topic_version`.
    TopicVersion {
        /// Topic name.
        topic: String,
    },
    /// `wait_for_data` (server-side clamped to [`MAX_SERVER_POLL`]).
    WaitForData {
        /// Topic name.
        topic: String,
        /// Version already observed.
        seen: u64,
        /// Long-poll budget in milliseconds.
        timeout_ms: u64,
    },
    /// Liveness probe (used by process supervisors to wait for readiness).
    Ping,
}

/// The success arm of a [`BrokerReply`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum BrokerResponse {
    /// Operation with no payload.
    Unit,
    /// A partition count.
    Count(u32),
    /// An offset, lag, generation, or version.
    Offset(u64),
    /// An append acknowledgement.
    Appended {
        /// First assigned offset.
        offset: u64,
        /// Broker-side `LogAppendTime`.
        append_time_ms: f64,
    },
    /// A read response.
    Records(Vec<WireRecord>),
    /// A replication-status snapshot.
    Status(Vec<ReplicationStatus>),
    /// A group assignment.
    Assignment(Vec<u32>),
    /// Liveness acknowledgement.
    Pong,
}

/// The wire envelope: a typed result. (The serde layer has no blanket
/// `Result` representation, so the envelope is explicit.)
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum BrokerReply {
    /// The operation succeeded.
    Ok(BrokerResponse),
    /// The operation failed broker-side; the full typed error.
    Err(BrokerError),
}

impl From<Result<BrokerResponse>> for BrokerReply {
    fn from(r: Result<BrokerResponse>) -> BrokerReply {
        match r {
            Ok(resp) => BrokerReply::Ok(resp),
            Err(e) => BrokerReply::Err(e),
        }
    }
}

/// Execute one decoded request against a broker. Shared by [`serve`] and
/// the multi-process node's client path, so both speak byte-identical
/// protocol.
pub fn dispatch(broker: &dyn BrokerApi, req: BrokerRequest) -> BrokerReply {
    use BrokerRequest as Req;
    use BrokerResponse as Resp;
    let out: Result<BrokerResponse> = match req {
        Req::CreateTopic {
            name,
            partitions,
            retention_bytes,
        } => match retention_bytes {
            Some(bytes) => broker
                .create_topic_with_retention(&name, partitions, bytes as usize)
                .map(|()| Resp::Unit),
            None => broker.create_topic(&name, partitions).map(|()| Resp::Unit),
        },
        Req::DeleteTopic { name } => broker.delete_topic(&name).map(|()| Resp::Unit),
        Req::Partitions { topic } => broker.partitions(&topic).map(Resp::Count),
        Req::EarliestOffset { topic, partition } => {
            broker.earliest_offset(&topic, partition).map(Resp::Offset)
        }
        Req::EndOffset { topic, partition } => {
            broker.end_offset(&topic, partition).map(Resp::Offset)
        }
        Req::TotalRecords { topic } => broker.total_records(&topic).map(Resp::Offset),
        Req::Append {
            topic,
            partition,
            values,
        } => broker.append(&topic, partition, unwire_values(values)).map(
            |(offset, append_time_ms)| Resp::Appended {
                offset,
                append_time_ms,
            },
        ),
        Req::AppendDedup {
            topic,
            partition,
            producer_id,
            first_seq,
            values,
        } => broker
            .append_dedup(
                &topic,
                partition,
                producer_id,
                first_seq,
                unwire_values(values),
            )
            .map(|(offset, append_time_ms)| Resp::Appended {
                offset,
                append_time_ms,
            }),
        Req::Read {
            topic,
            partition,
            offset,
            max_records,
            max_bytes,
        } => broker
            .read(
                &topic,
                partition,
                offset,
                max_records as usize,
                max_bytes as usize,
            )
            .map(|recs| Resp::Records(recs.into_iter().map(WireRecord::from).collect())),
        Req::ReplicationStatus { topic } => broker.replication_status(&topic).map(Resp::Status),
        Req::CommitOffset {
            group,
            topic,
            partition,
            next,
        } => broker
            .commit_offset(&group, &topic, partition, next)
            .map(|()| Resp::Unit),
        Req::CommittedOffset {
            group,
            topic,
            partition,
        } => broker
            .committed_offset(&group, &topic, partition)
            .map(Resp::Offset),
        Req::GroupLag { group, topic } => broker.group_lag(&group, &topic).map(Resp::Offset),
        Req::JoinGroup { group, member } => broker.join_group(&group, &member).map(Resp::Offset),
        Req::LeaveGroup { group, member } => {
            broker.leave_group(&group, &member).map(|()| Resp::Unit)
        }
        Req::GroupGeneration { group } => broker.group_generation(&group).map(Resp::Offset),
        Req::GroupAssignment {
            group,
            topic,
            member,
        } => broker
            .group_assignment(&group, &topic, &member)
            .map(Resp::Assignment),
        Req::CommitOffsetsFenced {
            group,
            topic,
            member,
            generation,
            offsets,
        } => {
            let offsets = offsets.into_iter().collect();
            broker
                .commit_offsets_fenced(&group, &topic, &member, generation, &offsets)
                .map(|()| Resp::Unit)
        }
        Req::TopicVersion { topic } => broker.topic_version(&topic).map(Resp::Offset),
        Req::WaitForData {
            topic,
            seen,
            timeout_ms,
        } => broker
            .wait_for_data(
                &topic,
                seen,
                Duration::from_millis(timeout_ms).min(MAX_SERVER_POLL),
            )
            .map(Resp::Offset),
        Req::Ping => Ok(Resp::Pong),
    };
    out.into()
}

/// Decode one request frame, dispatch it against `broker`, and encode the
/// reply. Malformed requests answer with a typed `Transport` error rather
/// than killing the connection — the framing layer already dropped
/// anything unframeable.
pub fn handle_frame(broker: &dyn BrokerApi, frame: &[u8]) -> Vec<u8> {
    let reply = match serde_json::from_slice::<BrokerRequest>(frame) {
        Ok(req) => dispatch(broker, req),
        Err(e) => BrokerReply::Err(BrokerError::Transport(format!("bad request: {e}"))),
    };
    serde_json::to_vec(&reply).unwrap_or_default()
}

/// Expose `broker` on `addr` over the shared reactor, decoding requests on
/// `workers` dispatcher threads (long-polls park a worker, so size this to
/// the expected concurrent client count). Returns the listener handle;
/// dropping it stops the server.
pub fn serve(broker: Arc<dyn BrokerApi>, addr: SocketAddr, workers: usize) -> Result<ServerHandle> {
    let handler: RpcHandler = Arc::new(move |frame: &[u8]| handle_frame(broker.as_ref(), frame));
    spawn_rpc_server("broker-rpc", addr, workers, handler)
        .map_err(|e| BrokerError::Transport(format!("serve: {e}")))
}

/// A [`BrokerApi`] client over a [`Transport`]: the remote half of the
/// broker seam. Producers/consumers built on it behave exactly as against
/// an in-process [`crate::Broker`] — transient transport failures surface
/// as [`BrokerError::Transport`], which the retry policies already treat
/// like any other transient broker fault.
pub struct RemoteBroker {
    transport: Box<dyn Transport>,
    obs: crayfish_obs::ObsHandle,
    chaos: crayfish_chaos::ChaosHandle,
    rpc_append: crayfish_obs::HistHandle,
    rpc_read: crayfish_obs::HistHandle,
    rpc_poll: crayfish_obs::HistHandle,
    rpc_commit: crayfish_obs::HistHandle,
    rpc_admin: crayfish_obs::HistHandle,
}

impl std::fmt::Debug for RemoteBroker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteBroker").finish_non_exhaustive()
    }
}

impl RemoteBroker {
    /// Connect to a broker served at `addr` (lazy dial — the first RPC
    /// opens the connection).
    pub fn connect(addr: SocketAddr) -> Arc<RemoteBroker> {
        RemoteBroker::with_parts(
            Box::new(crayfish_net::TcpTransport::new(addr)),
            crayfish_obs::ObsHandle::disabled(),
            crayfish_chaos::ChaosHandle::disabled(),
        )
    }

    /// Connect with live observability (RPC latency histograms, byte
    /// counters on the transport) and chaos handles.
    pub fn connect_with(
        addr: SocketAddr,
        obs: crayfish_obs::ObsHandle,
        chaos: crayfish_chaos::ChaosHandle,
    ) -> Arc<RemoteBroker> {
        RemoteBroker::with_parts(
            Box::new(crayfish_net::TcpTransport::with_instruments(
                addr,
                &obs,
                chaos.clone(),
            )),
            obs,
            chaos,
        )
    }

    /// Build over an arbitrary transport (in-proc transports make the
    /// equivalence tests exact: same client code, no socket).
    pub fn with_parts(
        transport: Box<dyn Transport>,
        obs: crayfish_obs::ObsHandle,
        chaos: crayfish_chaos::ChaosHandle,
    ) -> Arc<RemoteBroker> {
        Arc::new(RemoteBroker {
            rpc_append: obs.histogram_ns("rpc_append_ns"),
            rpc_read: obs.histogram_ns("rpc_read_ns"),
            rpc_poll: obs.histogram_ns("rpc_poll_ns"),
            rpc_commit: obs.histogram_ns("rpc_commit_ns"),
            rpc_admin: obs.histogram_ns("rpc_admin_ns"),
            transport,
            obs,
            chaos,
        })
    }

    /// One RPC round-trip: encode, call, decode, unwrap the typed result.
    fn call(&self, req: &BrokerRequest, hist: &crayfish_obs::HistHandle) -> Result<BrokerResponse> {
        let started = hist.start();
        let payload = serde_json::to_vec(req)
            .map_err(|e| BrokerError::Transport(format!("encode request: {e}")))?;
        let raw = self
            .transport
            .call(&payload)
            .map_err(|e| BrokerError::Transport(e.to_string()))?;
        let reply: BrokerReply = serde_json::from_slice(&raw)
            .map_err(|e| BrokerError::Transport(format!("decode reply: {e}")))?;
        hist.observe_since(started);
        match reply {
            BrokerReply::Ok(resp) => Ok(resp),
            BrokerReply::Err(e) => Err(e),
        }
    }

    fn unexpected(resp: BrokerResponse) -> BrokerError {
        BrokerError::Transport(format!("unexpected response shape: {resp:?}"))
    }

    fn expect_unit(&self, req: &BrokerRequest, hist: &crayfish_obs::HistHandle) -> Result<()> {
        match self.call(req, hist)? {
            BrokerResponse::Unit => Ok(()),
            other => Err(Self::unexpected(other)),
        }
    }

    fn expect_offset(&self, req: &BrokerRequest, hist: &crayfish_obs::HistHandle) -> Result<u64> {
        match self.call(req, hist)? {
            BrokerResponse::Offset(n) => Ok(n),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Liveness probe: true once the served broker answers a `Ping`.
    pub fn ping(&self) -> bool {
        matches!(
            self.call(&BrokerRequest::Ping, &self.rpc_admin),
            Ok(BrokerResponse::Pong)
        )
    }
}

impl BrokerApi for RemoteBroker {
    fn create_topic(&self, name: &str, partitions: u32) -> Result<()> {
        self.expect_unit(
            &BrokerRequest::CreateTopic {
                name: name.to_string(),
                partitions,
                retention_bytes: None,
            },
            &self.rpc_admin,
        )
    }

    fn create_topic_with_retention(
        &self,
        name: &str,
        partitions: u32,
        retention_bytes: usize,
    ) -> Result<()> {
        self.expect_unit(
            &BrokerRequest::CreateTopic {
                name: name.to_string(),
                partitions,
                retention_bytes: Some(retention_bytes as u64),
            },
            &self.rpc_admin,
        )
    }

    fn delete_topic(&self, name: &str) -> Result<()> {
        self.expect_unit(
            &BrokerRequest::DeleteTopic {
                name: name.to_string(),
            },
            &self.rpc_admin,
        )
    }

    fn partitions(&self, topic: &str) -> Result<u32> {
        match self.call(
            &BrokerRequest::Partitions {
                topic: topic.to_string(),
            },
            &self.rpc_admin,
        )? {
            BrokerResponse::Count(n) => Ok(n),
            other => Err(Self::unexpected(other)),
        }
    }

    fn earliest_offset(&self, topic: &str, partition: u32) -> Result<u64> {
        self.expect_offset(
            &BrokerRequest::EarliestOffset {
                topic: topic.to_string(),
                partition,
            },
            &self.rpc_admin,
        )
    }

    fn end_offset(&self, topic: &str, partition: u32) -> Result<u64> {
        self.expect_offset(
            &BrokerRequest::EndOffset {
                topic: topic.to_string(),
                partition,
            },
            &self.rpc_admin,
        )
    }

    fn total_records(&self, topic: &str) -> Result<u64> {
        self.expect_offset(
            &BrokerRequest::TotalRecords {
                topic: topic.to_string(),
            },
            &self.rpc_admin,
        )
    }

    fn append(&self, topic: &str, partition: u32, values: Vec<(Bytes, f64)>) -> Result<(u64, f64)> {
        match self.call(
            &BrokerRequest::Append {
                topic: topic.to_string(),
                partition,
                values: wire_values(values),
            },
            &self.rpc_append,
        )? {
            BrokerResponse::Appended {
                offset,
                append_time_ms,
            } => Ok((offset, append_time_ms)),
            other => Err(Self::unexpected(other)),
        }
    }

    fn append_dedup(
        &self,
        topic: &str,
        partition: u32,
        producer_id: u64,
        first_seq: u64,
        values: Vec<(Bytes, f64)>,
    ) -> Result<(u64, f64)> {
        match self.call(
            &BrokerRequest::AppendDedup {
                topic: topic.to_string(),
                partition,
                producer_id,
                first_seq,
                values: wire_values(values),
            },
            &self.rpc_append,
        )? {
            BrokerResponse::Appended {
                offset,
                append_time_ms,
            } => Ok((offset, append_time_ms)),
            other => Err(Self::unexpected(other)),
        }
    }

    fn read(
        &self,
        topic: &str,
        partition: u32,
        offset: u64,
        max_records: usize,
        max_bytes: usize,
    ) -> Result<Vec<FetchedRecord>> {
        match self.call(
            &BrokerRequest::Read {
                topic: topic.to_string(),
                partition,
                offset,
                max_records: max_records as u64,
                max_bytes: max_bytes as u64,
            },
            &self.rpc_read,
        )? {
            BrokerResponse::Records(recs) => {
                Ok(recs.into_iter().map(FetchedRecord::from).collect())
            }
            other => Err(Self::unexpected(other)),
        }
    }

    fn replication_status(&self, topic: &str) -> Result<Vec<ReplicationStatus>> {
        match self.call(
            &BrokerRequest::ReplicationStatus {
                topic: topic.to_string(),
            },
            &self.rpc_admin,
        )? {
            BrokerResponse::Status(status) => Ok(status),
            other => Err(Self::unexpected(other)),
        }
    }

    fn commit_offset(&self, group: &str, topic: &str, partition: u32, next: u64) -> Result<()> {
        self.expect_unit(
            &BrokerRequest::CommitOffset {
                group: group.to_string(),
                topic: topic.to_string(),
                partition,
                next,
            },
            &self.rpc_commit,
        )
    }

    fn committed_offset(&self, group: &str, topic: &str, partition: u32) -> Result<u64> {
        self.expect_offset(
            &BrokerRequest::CommittedOffset {
                group: group.to_string(),
                topic: topic.to_string(),
                partition,
            },
            &self.rpc_commit,
        )
    }

    fn group_lag(&self, group: &str, topic: &str) -> Result<u64> {
        self.expect_offset(
            &BrokerRequest::GroupLag {
                group: group.to_string(),
                topic: topic.to_string(),
            },
            &self.rpc_admin,
        )
    }

    fn join_group(&self, group: &str, member: &str) -> Result<u64> {
        self.expect_offset(
            &BrokerRequest::JoinGroup {
                group: group.to_string(),
                member: member.to_string(),
            },
            &self.rpc_admin,
        )
    }

    fn leave_group(&self, group: &str, member: &str) -> Result<()> {
        self.expect_unit(
            &BrokerRequest::LeaveGroup {
                group: group.to_string(),
                member: member.to_string(),
            },
            &self.rpc_admin,
        )
    }

    fn group_generation(&self, group: &str) -> Result<u64> {
        self.expect_offset(
            &BrokerRequest::GroupGeneration {
                group: group.to_string(),
            },
            &self.rpc_admin,
        )
    }

    fn group_assignment(&self, group: &str, topic: &str, member: &str) -> Result<Vec<u32>> {
        match self.call(
            &BrokerRequest::GroupAssignment {
                group: group.to_string(),
                topic: topic.to_string(),
                member: member.to_string(),
            },
            &self.rpc_admin,
        )? {
            BrokerResponse::Assignment(parts) => Ok(parts),
            other => Err(Self::unexpected(other)),
        }
    }

    fn commit_offsets_fenced(
        &self,
        group: &str,
        topic: &str,
        member: &str,
        generation: u64,
        offsets: &std::collections::HashMap<u32, u64>,
    ) -> Result<()> {
        let mut pairs: Vec<(u32, u64)> = offsets.iter().map(|(&p, &n)| (p, n)).collect();
        pairs.sort_unstable();
        self.expect_unit(
            &BrokerRequest::CommitOffsetsFenced {
                group: group.to_string(),
                topic: topic.to_string(),
                member: member.to_string(),
                generation,
                offsets: pairs,
            },
            &self.rpc_commit,
        )
    }

    fn topic_version(&self, topic: &str) -> Result<u64> {
        self.expect_offset(
            &BrokerRequest::TopicVersion {
                topic: topic.to_string(),
            },
            &self.rpc_poll,
        )
    }

    fn wait_for_data(&self, topic: &str, seen: u64, timeout: Duration) -> Result<u64> {
        // Loop short server-side slices up to the caller's deadline: a
        // leader that dies mid-long-poll is noticed within one slice, and
        // each slice stays far below the transport's read timeout.
        let deadline = crayfish_sim::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(crayfish_sim::now());
            let slice = remaining.min(CLIENT_POLL_SLICE);
            let req = BrokerRequest::WaitForData {
                topic: topic.to_string(),
                seen,
                timeout_ms: slice.as_millis() as u64,
            };
            match self.call(&req, &self.rpc_poll) {
                Ok(BrokerResponse::Offset(version)) => {
                    if version > seen || remaining <= slice {
                        return Ok(version);
                    }
                }
                Ok(other) => return Err(Self::unexpected(other)),
                Err(e) if e.is_transient() => {
                    if remaining <= slice {
                        // Deadline reached with the link down: report "no
                        // progress observed", like a timed-out long-poll.
                        return Ok(seen);
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn obs(&self) -> &crayfish_obs::ObsHandle {
        &self.obs
    }

    fn chaos(&self) -> &crayfish_chaos::ChaosHandle {
        &self.chaos
    }

    fn network(&self) -> NetworkModel {
        // The wire is real; no modelled hop on top.
        NetworkModel::zero()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::Broker;
    use crate::consumer::PartitionConsumer;
    use crate::producer::{Producer, ProducerConfig};

    fn local() -> Arc<Broker> {
        Broker::new(NetworkModel::zero())
    }

    fn remote_over_inproc(broker: Arc<Broker>) -> Arc<RemoteBroker> {
        let server: Arc<dyn BrokerApi> = broker;
        let transport = crayfish_net::InProcTransport::new(Arc::new(move |frame: &[u8]| {
            handle_frame(server.as_ref(), frame)
        }));
        RemoteBroker::with_parts(
            Box::new(transport),
            crayfish_obs::ObsHandle::disabled(),
            crayfish_chaos::ChaosHandle::disabled(),
        )
    }

    #[test]
    fn requests_roundtrip_the_wire_encoding() {
        let req = BrokerRequest::AppendDedup {
            topic: "t".into(),
            partition: 3,
            producer_id: 9,
            first_seq: 42,
            values: vec![WireValue {
                value: vec![1, 2, 3],
                produce_time_ms: 1.5,
            }],
        };
        let bytes = serde_json::to_vec(&req).unwrap();
        let back: BrokerRequest = serde_json::from_slice(&bytes).unwrap();
        match back {
            BrokerRequest::AppendDedup {
                partition,
                first_seq,
                values,
                ..
            } => {
                assert_eq!(partition, 3);
                assert_eq!(first_seq, 42);
                assert_eq!(values[0].value, vec![1, 2, 3]);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn typed_errors_roundtrip_without_stringification() {
        for err in [
            BrokerError::FencedLeaderEpoch {
                topic: "t".into(),
                partition: 2,
                current: 7,
            },
            BrokerError::NotEnoughReplicas {
                topic: "t".into(),
                partition: 0,
                isr: 1,
                min_isr: 2,
            },
            BrokerError::NotLeader { epoch: 3 },
            BrokerError::UnknownTopic("gone".into()),
            BrokerError::RebalanceInProgress { group: "g".into() },
        ] {
            let reply = BrokerReply::Err(err.clone());
            let bytes = serde_json::to_vec(&reply).unwrap();
            let back: BrokerReply = serde_json::from_slice(&bytes).unwrap();
            match back {
                BrokerReply::Err(e) => assert_eq!(e, err, "lossy error round-trip"),
                BrokerReply::Ok(_) => panic!("error decoded as success"),
            }
            // Transience must survive the wire: remote retry policies key
            // off the decoded variant.
            let decoded = match serde_json::from_slice::<BrokerReply>(&bytes).unwrap() {
                BrokerReply::Err(e) => e,
                BrokerReply::Ok(_) => unreachable!(),
            };
            assert_eq!(err.is_transient(), decoded.is_transient());
        }
    }

    #[test]
    fn remote_broker_over_inproc_transport_matches_local_semantics() {
        let local = local();
        let remote = remote_over_inproc(local.clone());
        remote.create_topic("t", 2).unwrap();
        let (off, ts) = remote
            .append("t", 1, vec![(Bytes::from_static(b"hello"), 4.0)])
            .unwrap();
        assert_eq!(off, 0);
        assert!(ts > 0.0);
        // Visible through the local handle too: same broker.
        assert_eq!(local.end_offset("t", 1).unwrap(), 1);
        let recs = BrokerApi::read(remote.as_ref(), "t", 1, 0, 10, usize::MAX).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(&recs[0].value[..], b"hello");
        assert_eq!(recs[0].produce_time_ms, 4.0);
        assert!(matches!(
            remote.append("nope", 0, vec![]),
            Err(BrokerError::UnknownTopic(_))
        ));
    }

    #[test]
    fn producer_and_consumer_run_unchanged_over_rpc() {
        let local = local();
        local.create_topic("t", 2).unwrap();
        let remote = remote_over_inproc(local.clone());
        let mut producer = Producer::new(remote.clone(), "t", ProducerConfig::default()).unwrap();
        for i in 0..10u8 {
            producer
                .send(Some(u32::from(i % 2)), Bytes::from(vec![i]))
                .unwrap();
        }
        producer.flush();
        let mut consumer = PartitionConsumer::new(remote, "t", "g", vec![0, 1]).unwrap();
        let mut got = Vec::new();
        while got.len() < 10 {
            let recs = consumer.poll(Duration::from_millis(200)).unwrap();
            assert!(!recs.is_empty(), "timed out with {} records", got.len());
            got.extend(recs);
        }
        consumer.commit();
        assert_eq!(local.group_lag("g", "t").unwrap(), 0);
    }

    #[test]
    fn served_broker_answers_over_real_tcp() {
        let local: Arc<dyn BrokerApi> = local();
        let server = serve(local.clone(), SocketAddr::from(([127, 0, 0, 1], 0)), 2).unwrap();
        let remote = RemoteBroker::connect(server.addr());
        assert!(remote.ping());
        remote.create_topic("t", 1).unwrap();
        remote
            .append("t", 0, vec![(Bytes::from_static(b"x"), 0.0)])
            .unwrap();
        assert_eq!(remote.end_offset("t", 0).unwrap(), 1);
        assert_eq!(local.end_offset("t", 0).unwrap(), 1);
        // Typed error over the real socket.
        assert!(matches!(
            remote.partitions("missing"),
            Err(BrokerError::UnknownTopic(_))
        ));
        server.shutdown();
        // Transport errors surface as the transient Transport variant.
        match remote.end_offset("t", 0) {
            Err(BrokerError::Transport(_)) => {}
            other => panic!("expected transport error, got {other:?}"),
        }
    }

    #[test]
    fn long_poll_wakes_remote_consumers() {
        let local = local();
        local.create_topic("t", 1).unwrap();
        let server = serve(
            local.clone() as Arc<dyn BrokerApi>,
            SocketAddr::from(([127, 0, 0, 1], 0)),
            // Two workers: one parks in the long-poll, the other serves the
            // append that wakes it.
            2,
        )
        .unwrap();
        let remote = RemoteBroker::connect(server.addr());
        let waiter = remote.clone();
        let handle = std::thread::spawn(move || {
            BrokerApi::wait_for_data(waiter.as_ref(), "t", 0, Duration::from_secs(5))
        });
        std::thread::sleep(Duration::from_millis(30));
        local
            .append("t", 0, vec![(Bytes::from_static(b"x"), 0.0)])
            .unwrap();
        let version = handle.join().expect("waiter panicked").unwrap();
        assert!(
            version > 0,
            "long-poll returned without observing the append"
        );
        server.shutdown();
    }
}
