//! Tensor shapes.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The extent of a tensor along each dimension.
///
/// Shapes are value types: cheap to clone, comparable, and serializable (they
/// travel inside serialized model formats and inference requests).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Create a shape from dimensions. An empty vector is a scalar shape.
    pub fn new(dims: Vec<usize>) -> Self {
        Shape(dims)
    }

    /// The dimensions.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (1 for a scalar shape).
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Extent along dimension `i`.
    ///
    /// # Panics
    /// Panics if `i >= rank()`.
    pub fn dim(&self, i: usize) -> usize {
        self.0[i]
    }

    /// Row-major strides for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// A new shape with the leading (batch) dimension replaced.
    pub fn with_batch(&self, batch: usize) -> Shape {
        let mut dims = self.0.clone();
        if dims.is_empty() {
            dims.push(batch);
        } else {
            dims[0] = batch;
        }
        Shape(dims)
    }

    /// The shape of one element of a batch: the dimensions after the first.
    pub fn per_item(&self) -> Shape {
        Shape(self.0.get(1..).unwrap_or(&[]).to_vec())
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape(dims.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_rank() {
        let s = Shape::from([2, 3, 4]);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.dim(1), 3);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::new(vec![]);
        assert_eq!(s.numel(), 1);
        assert_eq!(s.rank(), 0);
        assert_eq!(s.strides(), Vec::<usize>::new());
    }

    #[test]
    fn row_major_strides() {
        let s = Shape::from([2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
    }

    #[test]
    fn with_batch_replaces_leading_dim() {
        let s = Shape::from([1, 3, 224, 224]);
        assert_eq!(s.with_batch(8).dims(), &[8, 3, 224, 224]);
        assert_eq!(s.per_item().dims(), &[3, 224, 224]);
    }

    #[test]
    fn display_format() {
        assert_eq!(Shape::from([28, 28]).to_string(), "[28, 28]");
        assert_eq!(Shape::new(vec![]).to_string(), "[]");
    }

    #[test]
    fn serde_roundtrip() {
        let s = Shape::from([5, 7]);
        let json = serde_json::to_string(&s).unwrap();
        assert_eq!(serde_json::from_str::<Shape>(&json).unwrap(), s);
    }
}
