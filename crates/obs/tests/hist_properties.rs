//! Property tests for histogram merging. The benchmark report merges
//! per-shard and per-worker snapshots in whatever order threads finish, so
//! merge must behave like a commutative monoid over recorded values —
//! otherwise percentile tables would depend on scheduling.

use crayfish_obs::HistogramSnapshot;
use proptest::prelude::*;

fn snap(values: &[u64]) -> HistogramSnapshot {
    HistogramSnapshot::from_values(values.iter().copied())
}

/// Observable equality: the stats the exporter and report actually read.
fn assert_same(a: &HistogramSnapshot, b: &HistogramSnapshot) {
    assert_eq!(a.count(), b.count());
    assert_eq!(a.sum(), b.sum());
    assert_eq!(a.min(), b.min());
    assert_eq!(a.max(), b.max());
    for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
        let (pa, pb) = (a.percentile(q), b.percentile(q));
        assert!(
            (pa - pb).abs() < 1e-9,
            "p{q}: {pa} != {pb} (count {})",
            a.count()
        );
    }
}

fn values() -> impl Strategy<Value = Vec<u64>> {
    // Span the bucket layout: sub-microsecond to minutes-scale values.
    prop::collection::vec(0u64..=10_000_000_000, 0..200)
}

proptest! {
    #[test]
    fn merge_is_commutative(xs in values(), ys in values()) {
        let (a, b) = (snap(&xs), snap(&ys));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_same(&ab, &ba);
    }

    #[test]
    fn merge_is_associative(xs in values(), ys in values(), zs in values()) {
        let (a, b, c) = (snap(&xs), snap(&ys), snap(&zs));
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_same(&left, &right);
    }

    #[test]
    fn merge_equals_recording_everything_in_one_histogram(
        xs in values(),
        ys in values(),
    ) {
        let mut merged = snap(&xs);
        merged.merge(&snap(&ys));
        let mut all = xs.clone();
        all.extend_from_slice(&ys);
        assert_same(&merged, &snap(&all));
    }

    #[test]
    fn empty_is_the_identity(xs in values()) {
        let a = snap(&xs);
        let mut left = HistogramSnapshot::empty();
        left.merge(&a);
        let mut right = a.clone();
        right.merge(&HistogramSnapshot::empty());
        assert_same(&left, &right);
        assert_same(&left, &a);
    }
}
