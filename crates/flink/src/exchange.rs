//! Network-buffer exchanges between unchained operators.
//!
//! Flink serializes records into fixed-size network buffers (32 KB by
//! default) that are shipped downstream when full or when the *buffer
//! timeout* expires (100 ms by default in the Flink 1.13 line the paper
//! uses). Records larger than a buffer ship immediately. Channels are
//! bounded, so a full downstream exerts backpressure on the producer —
//! both effects shape the paper's Flink results.

use std::time::{Duration, Instant};

use bytes::Bytes;
use crayfish_core::obs::Counter;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, SendError, Sender};

/// A shipped network buffer: a group of serialized records.
pub type NetBuffer = Vec<Bytes>;

/// Build an exchange from one upstream task to `downstream` tasks.
/// Returns the per-task receivers; each upstream task creates its own
/// [`ExchangeSender`] over clones of the senders.
pub fn channels(
    downstream: usize,
    capacity: usize,
) -> (Vec<Sender<NetBuffer>>, Vec<Receiver<NetBuffer>>) {
    let mut txs = Vec::with_capacity(downstream);
    let mut rxs = Vec::with_capacity(downstream);
    for _ in 0..downstream {
        let (tx, rx) = bounded(capacity.max(1));
        txs.push(tx);
        rxs.push(rx);
    }
    (txs, rxs)
}

/// The upstream half of an exchange for one producing task: accumulates
/// records into a buffer and rebalances full buffers round-robin across
/// downstream tasks.
pub struct ExchangeSender {
    outputs: Vec<Sender<NetBuffer>>,
    buffer: NetBuffer,
    buffered_bytes: usize,
    buffer_bytes: usize,
    timeout: Duration,
    last_flush: Instant,
    rr: usize,
    shipped: Option<Counter>,
}

impl ExchangeSender {
    /// Create a sender over the downstream channels.
    pub fn new(outputs: Vec<Sender<NetBuffer>>, buffer_bytes: usize, timeout: Duration) -> Self {
        ExchangeSender {
            outputs,
            buffer: Vec::new(),
            buffered_bytes: 0,
            buffer_bytes: buffer_bytes.max(1),
            timeout,
            last_flush: Instant::now(),
            rr: 0,
            shipped: None,
        }
    }

    /// Count every shipped buffer on `counter` (the job-level
    /// `flink_exchange_buffers` personality marker).
    pub fn with_counter(mut self, counter: Counter) -> Self {
        self.shipped = Some(counter);
        self
    }

    /// Push one record; ships the current buffer if it is full. Blocks on
    /// backpressure. Errors when every downstream task is gone.
    pub fn push(&mut self, record: Bytes) -> Result<(), SendError<NetBuffer>> {
        self.buffered_bytes += record.len();
        self.buffer.push(record);
        if self.buffered_bytes >= self.buffer_bytes {
            self.flush()?;
        }
        Ok(())
    }

    /// Ship the buffer if the buffer timeout has expired. Call regularly
    /// from the task loop (Flink's output flusher thread).
    pub fn maybe_flush(&mut self) -> Result<(), SendError<NetBuffer>> {
        if !self.buffer.is_empty() && self.last_flush.elapsed() >= self.timeout {
            self.flush()?;
        }
        Ok(())
    }

    /// Ship whatever is buffered now.
    pub fn flush(&mut self) -> Result<(), SendError<NetBuffer>> {
        self.last_flush = Instant::now();
        if self.buffer.is_empty() {
            return Ok(());
        }
        let buf = std::mem::take(&mut self.buffer);
        self.buffered_bytes = 0;
        let n = self.outputs.len();
        let target = &self.outputs[self.rr % n];
        self.rr = (self.rr + 1) % n;
        target.send(buf)?;
        if let Some(c) = &self.shipped {
            c.inc();
        }
        Ok(())
    }
}

/// All upstream tasks of an exchange have terminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EndOfStream;

/// Receive the next buffer, waiting up to `timeout`. `Ok(None)` on timeout,
/// `Err(EndOfStream)` when all upstream tasks are gone.
pub fn recv_buffer(
    rx: &Receiver<NetBuffer>,
    timeout: Duration,
) -> Result<Option<NetBuffer>, EndOfStream> {
    match rx.recv_timeout(timeout) {
        Ok(buf) => Ok(Some(buf)),
        Err(RecvTimeoutError::Timeout) => Ok(None),
        Err(RecvTimeoutError::Disconnected) => Err(EndOfStream),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_records_accumulate_until_full() {
        let (txs, rxs) = channels(1, 4);
        let mut sender = ExchangeSender::new(txs, 100, Duration::from_secs(60));
        for _ in 0..9 {
            sender.push(Bytes::from(vec![0u8; 10])).unwrap();
        }
        // 90 bytes buffered, nothing shipped yet.
        assert!(rxs[0].try_recv().is_err());
        sender.push(Bytes::from(vec![0u8; 10])).unwrap();
        // 100 bytes -> shipped as one buffer of 10 records.
        let buf = rxs[0].try_recv().unwrap();
        assert_eq!(buf.len(), 10);
    }

    #[test]
    fn oversized_records_ship_immediately() {
        let (txs, rxs) = channels(1, 4);
        let mut sender = ExchangeSender::new(txs, 100, Duration::from_secs(60));
        sender.push(Bytes::from(vec![0u8; 5000])).unwrap();
        assert_eq!(rxs[0].try_recv().unwrap().len(), 1);
    }

    #[test]
    fn timeout_flushes_partial_buffers() {
        let (txs, rxs) = channels(1, 4);
        let mut sender = ExchangeSender::new(txs, 1 << 20, Duration::from_millis(20));
        sender.push(Bytes::from_static(b"x")).unwrap();
        sender.maybe_flush().unwrap();
        assert!(rxs[0].try_recv().is_err(), "flushed before timeout");
        std::thread::sleep(Duration::from_millis(25));
        sender.maybe_flush().unwrap();
        assert_eq!(rxs[0].try_recv().unwrap().len(), 1);
    }

    #[test]
    fn rebalances_round_robin() {
        let (txs, rxs) = channels(3, 4);
        let mut sender = ExchangeSender::new(txs, 1, Duration::ZERO);
        for _ in 0..6 {
            sender.push(Bytes::from_static(b"abc")).unwrap();
        }
        for rx in &rxs {
            assert_eq!(rx.try_iter().count(), 2);
        }
    }

    #[test]
    fn bounded_channels_backpressure() {
        let (txs, rxs) = channels(1, 1);
        let mut sender = ExchangeSender::new(txs, 1, Duration::ZERO);
        sender.push(Bytes::from_static(b"a")).unwrap();
        // Channel now full; the next push must block until we drain.
        let h = std::thread::spawn(move || {
            sender.push(Bytes::from_static(b"b")).unwrap();
            sender
        });
        std::thread::sleep(Duration::from_millis(30));
        assert!(!h.is_finished(), "no backpressure on full channel");
        rxs[0].recv().unwrap();
        h.join().unwrap();
    }

    #[test]
    fn shipped_buffers_are_counted() {
        let obs = crayfish_core::obs::ObsHandle::enabled();
        let (txs, _rxs) = channels(1, 4);
        let mut sender = ExchangeSender::new(txs, 1, Duration::ZERO)
            .with_counter(obs.counter("flink_exchange_buffers"));
        sender.push(Bytes::from_static(b"abc")).unwrap();
        sender.push(Bytes::from_static(b"abc")).unwrap();
        assert_eq!(obs.counter("flink_exchange_buffers").get(), 2);
    }

    #[test]
    fn recv_buffer_distinguishes_timeout_and_eos() {
        let (txs, rxs) = channels(1, 1);
        assert_eq!(recv_buffer(&rxs[0], Duration::from_millis(10)), Ok(None));
        drop(txs);
        assert_eq!(
            recv_buffer(&rxs[0], Duration::from_millis(10)),
            Err(EndOfStream)
        );
    }
}
