//! Integration checks for the bursty workload path and the simulated GPU.

use std::time::Duration;

use crayfish::framework::metrics::{bucketize, summarize};
use crayfish::prelude::*;

#[test]
fn bursts_raise_latency_then_it_recovers() {
    let mut spec = ExperimentSpec::quick(
        ModelSpec::TinyCnn,
        ServingChoice::Embedded {
            lib: EmbeddedLib::Dl4j,
            device: Device::Cpu,
        },
    );
    // DL4J's per-op marshalling over a conv model with a 8-point batch
    // keeps sustainable throughput low enough to overload reliably.
    spec.bsz = 8;
    spec.workload = Workload::Bursty {
        base: 50.0,
        burst: 800.0,
        burst_secs: 1.0,
        between_secs: 3.0,
    };
    spec.mp = 1;
    spec.duration = Duration::from_secs(10);
    spec.warmup_fraction = 0.0;
    let result = run_experiment(&FlinkProcessor::new(), &spec).unwrap();
    assert!(result.consumed > 100, "only {} consumed", result.consumed);

    let buckets = bucketize(&result.samples, 500.0);
    let peak = buckets
        .iter()
        .map(|b| b.mean_latency_ms)
        .fold(0.0, f64::max);
    // Quiet-period latency: first bucket with data.
    let quiet = buckets
        .iter()
        .find(|b| b.count > 0)
        .map(|b| b.mean_latency_ms)
        .unwrap_or(0.0);
    assert!(
        peak > quiet * 3.0,
        "burst did not raise latency: quiet {quiet:.2} ms, peak {peak:.2} ms"
    );
    // After the run's final quiet stretch, latency is back near baseline
    // for the last samples (the system recovered at least once).
    let tail: Vec<f64> = result
        .samples
        .iter()
        .rev()
        .take(20)
        .map(|s| s.latency_ms)
        .collect();
    let tail_p50 = summarize(&tail).p50;
    assert!(
        tail_p50 < peak / 2.0,
        "no recovery: tail p50 {tail_p50:.2} ms vs peak {peak:.2} ms"
    );
}

#[test]
fn gpu_experiment_runs_end_to_end() {
    let mut spec = ExperimentSpec::quick(
        ModelSpec::TinyCnn,
        ServingChoice::Embedded {
            lib: EmbeddedLib::Onnx,
            device: Device::gpu(),
        },
    );
    spec.workload = Workload::Constant { rate: 100.0 };
    spec.duration = Duration::from_millis(1500);
    let result = run_experiment(&FlinkProcessor::new(), &spec).unwrap();
    assert!(result.consumed > 20, "only {} consumed", result.consumed);
    assert!(result.latency.mean > 0.0);
}

#[test]
fn external_gpu_server_runs_end_to_end() {
    let mut spec = ExperimentSpec::quick(
        ModelSpec::TinyCnn,
        ServingChoice::External {
            kind: ExternalKind::TfServing,
            device: Device::gpu(),
        },
    );
    spec.workload = Workload::Constant { rate: 50.0 };
    spec.duration = Duration::from_millis(1500);
    let result = run_experiment(&FlinkProcessor::new(), &spec).unwrap();
    assert!(result.consumed > 10, "only {} consumed", result.consumed);
}

#[test]
fn gpu_cost_model_beats_cpu_for_resnet_scale_work() {
    // Fig. 9's premise, checked against the cost model without paying for a
    // full ResNet CPU run: the modelled accelerator forward pass for a
    // ResNet50-sized batch must undercut single-threaded CPU execution.
    use crayfish::runtime::exec::GpuExec;
    use crayfish::runtime::GpuSpec;
    let resnet = ModelSpec::Resnet50.build(1);
    let gpu = GpuExec::new(&resnet, GpuSpec::t4()).unwrap();
    let modelled = gpu.modelled_seconds(8);
    // Single-threaded CPU ResNet50 runs at a handful of GFLOP/s; 8 images
    // at ~8.2 GFLOPs each take multiple seconds. The T4 model must be far
    // below that and above zero.
    assert!(modelled > 0.01, "GPU model suspiciously fast: {modelled}s");
    assert!(
        modelled < 2.0,
        "GPU model slower than plausible CPU: {modelled}s"
    );
}
