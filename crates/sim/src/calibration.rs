//! Calibration constants for every modelled (non-executed) cost.
//!
//! This file is the single audit point for the reproduction: everything the
//! repository does **not** execute for real is quantified here, with the
//! reasoning for each number. Two caveats apply to all constants:
//!
//! 1. They are *first-order* figures taken from public measurements of the
//!    real systems (JNI, gRPC, TorchServe, Ray, PCIe, T4), not from the
//!    paper's testbed — the goal is to reproduce the paper's *orderings and
//!    rough factors*, not its absolute numbers.
//! 2. The Rust substrates here are considerably faster than the JVM/Python
//!    systems they stand in for, so fixed overheads were derated (roughly
//!    2–5×) to keep the modelled costs proportionate to the real costs of
//!    this codebase. EXPERIMENTS.md records how the resulting shapes compare
//!    against the paper.

use crate::overhead::{Cost, OverheadModel};

/// One JNI downcall with INDArray construction, as performed per tensor op
/// by a DL4J-style binding. Raw JNI round trips cost 1–20 µs, but DL4J's
/// Keras-import path additionally allocates INDArray handles, runs shape
/// bookkeeping, and triggers JVM allocation/GC pressure per op; public DL4J
/// issue-tracker benchmarks put the per-op overhead of the ND4J boundary at
/// ~0.1 ms for small tensors. We charge 100 µs per call plus a tiny
/// per-byte term — the per-byte marshalling copy (f32→f64→f32) is executed
/// for real by `crayfish-runtime::dl4j`.
pub const FFI_CALL: Cost = Cost::new(100_000.0, 0.01);

/// Python work done by a TorchServe handler per request: request envelope
/// decode, tensor pre/post-processing glue, response assembly. TorchServe's
/// own benchmarks show ~1–3 ms of non-model overhead per request on CPU; we
/// charge 0.8 ms fixed plus 0.5 ns/byte for interpreter-speed byte shuffling
/// (the JSON re-encode the handler performs is executed for real).
pub const PY_HANDLER: Cost = Cost::new(800_000.0, 0.5);

/// One Ray actor method dispatch: Python function-call machinery, task-spec
/// handling, argument pickling, and an object-store put/get pair. Ray's own
/// documentation and microbenchmarks place remote-actor call overhead at
/// ~1–3 ms per message for kilobyte-scale payloads on CPython. We charge
/// 2.5 ms per hop plus 0.1 ns/byte for Plasma bookkeeping — the object copy
/// itself is executed for real by `crayfish-ray`.
pub const ACTOR_DISPATCH: Cost = Cost::new(2_500_000.0, 0.1);

/// Combined client+server gRPC stack traversal for one unary call (HTTP/2
/// framing, protobuf envelope, completion-queue hops), excluding the network
/// itself. Public gRPC microbenchmarks put unary-call framework overhead at
/// ~60–250 µs on commodity CPUs; we charge 250 µs (the JVM-client end of
/// that range, matching the paper's Java stream processors) plus
/// 0.02 ns/byte.
pub const GRPC_STACK: Cost = Cost::new(250_000.0, 0.02);

/// Combined client+server HTTP/1.1 stack traversal for one request/response
/// (header parsing, connection handling, chunking). Above gRPC per request
/// because Ray Serve's ingress is a Python (Starlette/uvicorn) proxy that
/// re-handles the request at the proxy and at the replica; 300 µs plus
/// 0.05 ns/byte.
pub const HTTP_STACK: Cost = Cost::new(300_000.0, 0.05);

/// One CUDA kernel launch. The canonical figure is 5–15 µs of launch latency
/// per kernel on a PCIe-attached GPU; we charge 10 µs per fused graph op.
pub const GPU_KERNEL_LAUNCH: Cost = Cost::new(10_000.0, 0.0);

/// Host↔device PCIe transfer: the T4 sits on PCIe 3.0 x16 (≈ 15.8 GB/s
/// theoretical, ~12 GB/s achieved). 1 / 12 GB/s ≈ 0.0833 ns per byte, plus
/// 10 µs fixed per transfer for the DMA setup.
pub const PCIE_TRANSFER: Cost = Cost::new(10_000.0, 0.0833);

/// Spark Structured Streaming driver work per triggered micro-batch: offset
/// resolution, logical/physical planning, task serialization and scheduling.
/// Real Spark spends tens to hundreds of milliseconds per micro-batch; we
/// charge 10 ms, derated for the in-process substrate.
pub const MICROBATCH_SCHEDULE: Cost = Cost::new(10_000_000.0, 0.0);

/// Achieved fp32 throughput of the simulated T4 for dense conv/GEMM work.
/// The T4 peaks at 8.1 TFLOPS fp32; cuDNN-style kernels on ResNet-class
/// shapes typically achieve 30–45 % of peak. We use 2.8 TFLOPS.
pub const GPU_FP32_FLOPS: f64 = 2.8e12;

/// Per-record cost of the Flink task chain for a small record: JVM record
/// de/serialization into `StreamRecord`s, operator-chain dispatch, metrics,
/// and Kafka connector overhead. The paper measures Flink+ONNX at 1 373
/// events/s on a 60-core worker with `mp = 1` (Table 4), i.e. ~0.73 ms per
/// event end to end, of which the model inference itself is tens of
/// microseconds — the remainder is framework. We charge 600 µs plus
/// 0.02 ns/byte; the equivalent Rust-side work this crate executes for real
/// supplies the rest.
pub const RECORD_OVERHEAD_FLINK: Cost = Cost::new(600_000.0, 0.02);

/// Per-record cost of a Kafka Streams stream thread. Same derivation as
/// [`RECORD_OVERHEAD_FLINK`] from the paper's 2 054 events/s (Table 5):
/// ~0.49 ms/event, less the real work; Kafka Streams' runtime is lighter
/// (no network-buffer layer, direct broker integration).
pub const RECORD_OVERHEAD_KSTREAMS: Cost = Cost::new(420_000.0, 0.02);

/// Per-record cost inside a Spark SS micro-batch task. Spark's whole-stage
/// code generation amortises per-record overheads across the batch, which
/// is precisely why the paper measures Spark SS at ~4 000 events/s (Table
/// 5, ~0.25 ms/event) despite its 10 ms-scale driver cost per trigger. We
/// charge 150 µs per record, *applied as one aggregate sleep per task
/// chunk* (vectorised execution does not pay it call by call).
pub const RECORD_OVERHEAD_SPARK: Cost = Cost::new(150_000.0, 0.02);

/// How [`RECORD_OVERHEAD_FLINK`] distributes across the three operators of
/// the pipeline when Flink runs them as separate (unchained) tasks. Derived
/// from Fig. 12 of the paper: `flink[32-1-32]` sustains 5 373 events/s
/// (scoring-op cost ≈ 0.19 ms) while `flink[1-1-1]` sustains 1 393 events/s
/// (total ≈ 0.72 ms), so the source+sink share is ~74 % of the chain cost.
pub const FLINK_SOURCE_SHARE: f64 = 0.40;
/// Scoring operator's share of the Flink chain cost (see
/// [`FLINK_SOURCE_SHARE`]).
pub const FLINK_SCORING_SHARE: f64 = 0.26;
/// Sink operator's share of the Flink chain cost.
pub const FLINK_SINK_SHARE: f64 = 0.34;

/// One TensorFlow `session.run` dispatch: feed/fetch tensor marshalling and
/// the session execution machinery the SavedModel Java binding pays per
/// call on top of the kernels. This is the (small) reason the paper ranks
/// SavedModel just behind ONNX (Table 4: 1 290 vs 1 373 events/s).
pub const TF_SESSION_RUN: Cost = Cost::new(25_000.0, 0.0);

/// The default calibrated overhead model assembled from the constants above.
pub fn default_model() -> OverheadModel {
    OverheadModel {
        ffi_call: FFI_CALL,
        py_handler: PY_HANDLER,
        actor_dispatch: ACTOR_DISPATCH,
        grpc_stack: GRPC_STACK,
        http_stack: HTTP_STACK,
        gpu_kernel_launch: GPU_KERNEL_LAUNCH,
        pcie_transfer: PCIE_TRANSFER,
        microbatch_schedule: MICROBATCH_SCHEDULE,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_model_uses_published_constants() {
        let m = default_model();
        assert_eq!(m.ffi_call, FFI_CALL);
        assert_eq!(m.gpu_kernel_launch, GPU_KERNEL_LAUNCH);
        assert_eq!(m.microbatch_schedule, MICROBATCH_SCHEDULE);
    }

    #[test]
    fn pcie_matches_12_gbps() {
        // Transferring 1.2 MB (a ResNet50 input) should take ~0.1 ms + setup.
        let d = PCIE_TRANSFER.duration(1_204_224);
        let ms = d.as_secs_f64() * 1e3;
        assert!(ms > 0.1 && ms < 0.2, "PCIe transfer {ms} ms");
    }

    #[test]
    fn gpu_resnet_compute_is_submillisecond_per_image() {
        // ResNet50 forward ≈ 4 GFLOPs on our simulated T4.
        let secs = 4.0e9 / GPU_FP32_FLOPS;
        assert!(secs < 2.0e-3, "GPU ResNet forward {secs} s");
    }
}
