//! Named overhead costs for foreign-runtime behaviour.
//!
//! A [`Cost`] is an affine model `fixed + per_byte * bytes`, spent as wall
//! time. An [`OverheadModel`] is a set of named costs; every simulated
//! foreign-runtime component (JNI boundary, Python handler, gRPC stack, …)
//! draws its costs from one model instance so experiments can switch the
//! whole calibration on/off or swap it atomically.

use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::time::{precise_sleep, spin_exact};

/// An affine time cost: `fixed_ns + per_byte_ns * bytes`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Cost {
    /// Fixed cost per invocation, in nanoseconds.
    pub fixed_ns: f64,
    /// Marginal cost per payload byte, in nanoseconds.
    pub per_byte_ns: f64,
}

impl Cost {
    /// A free cost.
    pub const ZERO: Cost = Cost {
        fixed_ns: 0.0,
        per_byte_ns: 0.0,
    };

    /// Construct from nanosecond components.
    pub const fn new(fixed_ns: f64, per_byte_ns: f64) -> Self {
        Self {
            fixed_ns,
            per_byte_ns,
        }
    }

    /// A purely fixed cost given in microseconds.
    pub const fn fixed_us(us: f64) -> Self {
        Self {
            fixed_ns: us * 1e3,
            per_byte_ns: 0.0,
        }
    }

    /// The modelled duration for a payload of `bytes`.
    pub fn duration(&self, bytes: usize) -> Duration {
        let ns = self.fixed_ns + self.per_byte_ns * bytes as f64;
        if ns <= 0.0 {
            Duration::ZERO
        } else {
            Duration::from_nanos(ns as u64)
        }
    }

    /// Spend the modelled time for `bytes` as wall time. Long waits are OS
    /// sleeps (they model off-CPU time or work that parallelises across the
    /// paper's many-core hosts), so they overlap across threads.
    pub fn spend(&self, bytes: usize) {
        let d = self.duration(bytes);
        if !d.is_zero() {
            precise_sleep(d);
        }
    }

    /// Spend the modelled time as a busy-wait, consuming CPU for the whole
    /// duration. Use for foreign work that is CPU-bound (JNI marshalling,
    /// interpreter loops) and therefore must contend with the benchmark's
    /// real computation instead of overlapping with it.
    pub fn spend_spinning(&self, bytes: usize) {
        let d = self.duration(bytes);
        if !d.is_zero() {
            spin_exact(d);
        }
    }

    /// Scale both components (used to derate costs in quick-test profiles).
    pub fn scaled(&self, factor: f64) -> Self {
        Self {
            fixed_ns: self.fixed_ns * factor,
            per_byte_ns: self.per_byte_ns * factor,
        }
    }
}

/// Calibrated overhead constants for every simulated foreign runtime.
///
/// Defaults come from [`crate::calibration`]; see that module for the
/// provenance of each number.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverheadModel {
    /// One JNI/FFI call from JVM code into a native library (DL4J-style
    /// embedded serving performs one per layer/op plus one per apply).
    pub ffi_call: Cost,
    /// Python interpreter work performed by a TorchServe custom handler for
    /// one request (pre/post-processing glue, per byte of payload touched).
    pub py_handler: Cost,
    /// Per-message overhead of one Python actor method dispatch plus an
    /// object-store put/get pair (Ray).
    pub actor_dispatch: Cost,
    /// Client+server gRPC stack traversal per request (HTTP/2 framing,
    /// protobuf envelope), excluding the modelled network hop.
    pub grpc_stack: Cost,
    /// Client+server HTTP/1.1 stack traversal per request (header parse,
    /// connection handling), excluding the network hop.
    pub http_stack: Cost,
    /// One GPU kernel launch (applies per fused graph op on the GPU device).
    pub gpu_kernel_launch: Cost,
    /// Host↔device transfer over PCIe (applies per byte moved each way).
    pub pcie_transfer: Cost,
    /// Micro-batch planning/scheduling work done by the Spark SS driver per
    /// triggered batch (JVM task serialization, scheduler bookkeeping).
    pub microbatch_schedule: Cost,
}

impl OverheadModel {
    /// The calibrated default model (see [`crate::calibration`]).
    pub fn calibrated() -> Self {
        crate::calibration::default_model()
    }

    /// A model where every overhead is zero; useful for unit tests and for
    /// ablation benchmarks isolating real-compute behaviour.
    pub const fn zero() -> Self {
        Self {
            ffi_call: Cost::ZERO,
            py_handler: Cost::ZERO,
            actor_dispatch: Cost::ZERO,
            grpc_stack: Cost::ZERO,
            http_stack: Cost::ZERO,
            gpu_kernel_launch: Cost::ZERO,
            pcie_transfer: Cost::ZERO,
            microbatch_schedule: Cost::ZERO,
        }
    }
}

impl Default for OverheadModel {
    fn default() -> Self {
        Self::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_cost_spends_nothing() {
        let sw = crate::Stopwatch::start();
        Cost::ZERO.spend(1 << 20);
        assert!(sw.elapsed_millis() < 1.0);
    }

    #[test]
    fn duration_is_affine() {
        let c = Cost::new(1000.0, 2.0);
        assert_eq!(c.duration(0), Duration::from_nanos(1000));
        assert_eq!(c.duration(500), Duration::from_nanos(2000));
    }

    #[test]
    fn negative_components_clamp_to_zero() {
        let c = Cost::new(-50.0, 0.0);
        assert_eq!(c.duration(10), Duration::ZERO);
    }

    #[test]
    fn scaled_scales_both_components() {
        let c = Cost::new(100.0, 4.0).scaled(0.5);
        assert_eq!(c.fixed_ns, 50.0);
        assert_eq!(c.per_byte_ns, 2.0);
    }

    #[test]
    fn spend_takes_wall_time() {
        let c = Cost::fixed_us(1500.0);
        let sw = crate::Stopwatch::start();
        c.spend(0);
        assert!(sw.elapsed_millis() >= 1.4);
    }

    #[test]
    fn calibrated_model_has_positive_costs() {
        let m = OverheadModel::calibrated();
        for c in [
            m.ffi_call,
            m.py_handler,
            m.actor_dispatch,
            m.grpc_stack,
            m.http_stack,
            m.gpu_kernel_launch,
            m.pcie_transfer,
            m.microbatch_schedule,
        ] {
            assert!(c.fixed_ns > 0.0 || c.per_byte_ns > 0.0);
        }
    }
}
