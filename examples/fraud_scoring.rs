//! Fraud scoring: choose a serving design for a transaction stream.
//!
//! The motivating scenario from the paper's introduction: a business
//! pipeline needs model predictions inline. Should the team embed the model
//! in the stream processor or call a dedicated serving service? This
//! example runs the same workload (the FFNN as a stand-in fraud model on a
//! Kafka-Streams-style engine) against both designs and prints the
//! comparison a platform team would use to decide.
//!
//! ```sh
//! cargo run --release --example fraud_scoring
//! ```

use std::time::Duration;

use crayfish::prelude::*;

fn run(label: &str, serving: ServingChoice) {
    let mut spec = ExperimentSpec::quick(ModelSpec::Ffnn, serving);
    spec.workload = Workload::Constant { rate: 400.0 };
    spec.duration = Duration::from_secs(4);
    spec.mp = 2;
    spec.network = NetworkModel::lan_1gbps();

    let result = run_experiment(&KStreamsProcessor::new(), &spec).expect("experiment failed");
    println!(
        "{label:<28} {:>9.1} ev/s {:>9.2} ms {:>9.2} ms {:>9.2} ms",
        result.throughput_eps, result.latency.p50, result.latency.p95, result.latency.p99
    );
}

fn main() {
    println!("Fraud scoring on a Kafka-Streams-style engine (FFNN, 400 events/s, mp = 2)");
    println!(
        "{:<28} {:>14} {:>12} {:>12} {:>12}",
        "serving design", "throughput", "p50", "p95", "p99"
    );
    run(
        "embedded / onnx",
        ServingChoice::Embedded {
            lib: EmbeddedLib::Onnx,
            device: Device::Cpu,
        },
    );
    run(
        "embedded / dl4j",
        ServingChoice::Embedded {
            lib: EmbeddedLib::Dl4j,
            device: Device::Cpu,
        },
    );
    run(
        "external / tf-serving",
        ServingChoice::External {
            kind: ExternalKind::TfServing,
            device: Device::Cpu,
        },
    );
    run(
        "external / torchserve",
        ServingChoice::External {
            kind: ExternalKind::TorchServe,
            device: Device::Cpu,
        },
    );
    println!();
    println!("Embedded ONNX minimises latency; an optimised external server stays close");
    println!("while keeping model rollout independent of the streaming job (paper §5.1).");
}
