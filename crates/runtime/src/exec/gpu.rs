//! The simulated-GPU executor.
//!
//! We do not have the paper's NVIDIA T4, so GPU execution is a *performance
//! simulation*: wall-clock time per forward pass follows the first-order
//! cost model in [`GpuSpec`] (PCIe upload, one launch per fused kernel,
//! compute at the achieved FLOP rate, PCIe download), spent as real time so
//! end-to-end pipeline measurements include it naturally.
//!
//! Outputs come from a cheap deterministic surrogate (an input-statistics
//! projection through a seeded classifier) rather than the full network —
//! shape- and distribution-correct, stable for identical inputs, but not
//! bit-identical to the CPU path (real GPUs do not match CPUs bitwise
//! either). The quantity under test in the paper's GPU experiments (Fig. 9)
//! is latency, which the cost model provides; DESIGN.md documents this
//! substitution.

use crayfish_sim::{precise_sleep, Stopwatch};
use crayfish_tensor::kernels::activation::softmax_rows;
use crayfish_tensor::{NnGraph, Shape, Tensor};

use crate::device::GpuSpec;
use crate::error::RuntimeError;
use crate::exec::check_batched_input;
use crate::exec::fused::FusedExec;
use crate::Result;

/// Simulated accelerator executor for one loaded model.
#[derive(Debug)]
pub struct GpuExec {
    spec: GpuSpec,
    input_shape: Shape,
    classes: usize,
    per_item_flops: u64,
    kernels: usize,
    /// Surrogate classifier: `classes` (weight, bias) pairs applied to the
    /// per-item input mean.
    surrogate: Vec<(f32, f32)>,
}

impl GpuExec {
    /// Prepare a model for simulated-GPU execution.
    pub fn new(graph: &NnGraph, spec: GpuSpec) -> Result<Self> {
        // Compile the fused plan only for its statistics: the number of
        // kernels a fused engine would launch and the FLOP count.
        let plan = FusedExec::new(graph)?;
        let out_shape = plan.output_item_shape().clone();
        if out_shape.rank() != 1 {
            return Err(RuntimeError::Unsupported(format!(
                "GPU surrogate requires a flat output, model produces {out_shape}"
            )));
        }
        let classes = out_shape.dim(0);
        let surrogate = Tensor::seeded_uniform([classes, 2], 0xC0FFEE, -1.0, 1.0)
            .data()
            .chunks_exact(2)
            .map(|c| (c[0], c[1]))
            .collect();
        Ok(GpuExec {
            spec,
            input_shape: plan.input_shape().clone(),
            classes,
            per_item_flops: plan.per_item_flops(),
            kernels: plan.kernel_count(),
            surrogate,
        })
    }

    /// The modelled forward-pass duration for a given batch size.
    pub fn modelled_seconds(&self, batch: usize) -> f64 {
        let in_bytes = batch * self.input_shape.numel() * 4;
        let out_bytes = batch * self.classes * 4;
        self.spec.forward_seconds(
            self.per_item_flops * batch as u64,
            self.kernels,
            in_bytes,
            out_bytes,
        )
    }

    /// Run a simulated forward pass.
    pub fn run(&mut self, input: &Tensor) -> Result<Tensor> {
        let batch = check_batched_input(input, &self.input_shape)?;
        let budget = self.modelled_seconds(batch);
        let sw = Stopwatch::start();

        // Surrogate output: project each item's mean through the seeded
        // classifier and normalise. This pass doubles as the host-side
        // staging read a real transfer would perform.
        let mut out = Vec::with_capacity(batch * self.classes);
        for b in 0..batch {
            let item = input.batch_item(b);
            let mean = item.iter().sum::<f32>() / item.len().max(1) as f32;
            for &(w, bias) in &self.surrogate {
                out.push(w * mean + bias);
            }
        }
        softmax_rows(&mut out, batch, self.classes);

        // Spend whatever the cost model says remains of the forward pass.
        let elapsed = sw.elapsed().as_secs_f64();
        if budget > elapsed {
            precise_sleep(std::time::Duration::from_secs_f64(budget - elapsed));
        }
        Tensor::from_vec([batch, self.classes], out).map_err(RuntimeError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::GpuSpec;
    use crayfish_models::tiny;

    fn exec() -> GpuExec {
        GpuExec::new(&tiny::tiny_cnn(2), GpuSpec::t4()).unwrap()
    }

    #[test]
    fn outputs_are_valid_distributions() {
        let mut gpu = exec();
        let input = Tensor::seeded_uniform([3, 3, 8, 8], 1, 0.0, 1.0);
        let out = gpu.run(&input).unwrap();
        assert_eq!(out.shape().dims(), &[3, 4]);
        for i in 0..3 {
            let row = out.batch_item(i);
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-4);
            assert!(row.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn deterministic_for_identical_inputs() {
        let mut gpu = exec();
        let input = Tensor::seeded_uniform([2, 3, 8, 8], 7, 0.0, 1.0);
        let a = gpu.run(&input).unwrap();
        let b = gpu.run(&input).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn wall_time_respects_cost_model() {
        let mut gpu = exec();
        let batch = 4;
        let budget = gpu.modelled_seconds(batch);
        let input = Tensor::seeded_uniform([batch, 3, 8, 8], 7, 0.0, 1.0);
        let sw = Stopwatch::start();
        gpu.run(&input).unwrap();
        let elapsed = sw.elapsed().as_secs_f64();
        assert!(elapsed >= budget, "elapsed {elapsed} < modelled {budget}");
        assert!(
            elapsed < budget + 0.05,
            "elapsed {elapsed} far over {budget}"
        );
    }

    #[test]
    fn modelled_time_scales_with_batch() {
        let gpu = exec();
        let t1 = gpu.modelled_seconds(1);
        let t8 = gpu.modelled_seconds(8);
        assert!(t8 > t1);
        // Launch overhead is per-kernel, not per-item, so 8x batch must be
        // cheaper than 8x the single-item time.
        assert!(t8 < 8.0 * t1);
    }

    #[test]
    fn rejects_bad_shapes() {
        let mut gpu = exec();
        assert!(gpu.run(&Tensor::zeros([3, 8, 8])).is_err());
    }
}
