//! The Flink-style job: topology construction over the engine kernel.
//!
//! Flink's three deployment shapes are three arrangements of the same
//! kernel pieces:
//!
//! * **Chained** (`flink[N-N-N]`): each subtask is the kernel's full-chain
//!   pipeline worker — the same loop as a Kafka Streams thread, minus the
//!   pre-commit sink flush (Flink checkpoints without flushing).
//! * **Unchained** (`flink[32-N-32]`): supervised source pumps feed
//!   network-buffer exchanges (see [`crate::exchange`]) that repartition
//!   records round-robin across scoring tasks and again across sink tasks;
//!   every shipped buffer increments `flink_exchange_buffers`.
//! * **Async chained**: the chain keeps up to `async_io` scoring calls in
//!   flight on a worker pool behind a bounded queue.

use std::time::Duration;

use bytes::Bytes;
use crayfish_broker::{Broker, Producer, ProducerConfig};
use crayfish_core::{DataProcessor, ProcessorContext, Result, RunningJob};
use crayfish_engine_kernel::{
    charge_ingest, pipeline_workers, source_pump, EnginePersonality, PipelineSettings,
    ProducerSink, PumpSettings, RecordSink, ScoreStage, SinkClosed, WorkerSet,
};
use crayfish_sim::{calibration, Cost};

use crate::exchange::{channels, recv_buffer, ExchangeSender};

/// Explicit operator-level parallelism (`flink[source-N-sink]`, Fig. 12).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OperatorParallelism {
    /// Source task count (the paper matches it to the partition count, 32).
    pub source: usize,
    /// Sink task count.
    pub sink: usize,
}

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct FlinkOptions {
    /// Chain source → scoring → sink into one task (Flink's default). The
    /// paper's `flink[N-N-N]` runs chained; `flink[32-N-32]` disables
    /// chaining.
    pub chaining: bool,
    /// Source/sink parallelism when unchained; scoring always runs at `mp`.
    /// `None` uses `mp` for all three operators.
    pub operator_parallelism: Option<OperatorParallelism>,
    /// Network-buffer size between unchained operators.
    pub buffer_bytes: usize,
    /// Buffer timeout (Flink 1.13 default: 100 ms).
    pub buffer_timeout: Duration,
    /// Buffers in flight per exchange channel before backpressure.
    pub channel_capacity: usize,
    /// Calibrated per-record framework cost of the JVM task chain (see
    /// [`calibration::RECORD_OVERHEAD_FLINK`]); ablations set it to
    /// [`Cost::ZERO`] to measure the bare Rust substrate.
    pub record_overhead: Cost,
    /// Asynchronous-I/O capacity of the scoring operator (Flink's
    /// `AsyncDataStream`, which the paper deliberately did *not* use for
    /// fairness, §4.3). `0` keeps scoring calls blocking; `k > 0` lets each
    /// chained subtask keep up to `k` scoring calls in flight — the main
    /// lever real deployments have against external-serving round trips.
    pub async_io: usize,
}

impl Default for FlinkOptions {
    fn default() -> Self {
        FlinkOptions {
            chaining: true,
            operator_parallelism: None,
            buffer_bytes: 32 * 1024,
            buffer_timeout: Duration::from_millis(100),
            channel_capacity: 8,
            record_overhead: calibration::RECORD_OVERHEAD_FLINK,
            async_io: 0,
        }
    }
}

impl FlinkOptions {
    /// The paper's `flink[32-N-32]` configuration: operator-level
    /// parallelism with chaining disabled.
    pub fn operator_level(source: usize, sink: usize) -> FlinkOptions {
        FlinkOptions {
            chaining: false,
            operator_parallelism: Some(OperatorParallelism { source, sink }),
            ..Default::default()
        }
    }
}

/// The Flink-style `DataProcessor`.
#[derive(Debug, Default, Clone, Copy)]
pub struct FlinkProcessor {
    /// Engine options.
    pub options: FlinkOptions,
}

impl FlinkProcessor {
    /// Engine with default (chained) options.
    pub fn new() -> Self {
        Self::default()
    }

    /// Engine with explicit options.
    pub fn with_options(options: FlinkOptions) -> Self {
        FlinkProcessor { options }
    }
}

impl EnginePersonality for FlinkProcessor {
    fn name(&self) -> &'static str {
        "flink"
    }

    fn deploy(&self, ctx: &ProcessorContext, set: &mut WorkerSet) -> Result<()> {
        if self.options.async_io > 0 {
            deploy_async_chained(ctx, set, self.options)
        } else if self.options.chaining {
            deploy_chained(ctx, set, self.options)
        } else {
            deploy_unchained(ctx, set, self.options)
        }
    }
}

impl DataProcessor for FlinkProcessor {
    fn name(&self) -> &'static str {
        EnginePersonality::name(self)
    }

    fn start(&self, ctx: ProcessorContext) -> Result<Box<dyn RunningJob>> {
        crayfish_engine_kernel::start(self, ctx)
    }
}

/// Chained topology: `mp` subtasks each running the kernel's whole
/// pipeline. Unlike Kafka Streams, the chain commits its checkpoint-style
/// offsets without flushing the producer first.
fn deploy_chained(
    ctx: &ProcessorContext,
    set: &mut WorkerSet,
    options: FlinkOptions,
) -> Result<()> {
    pipeline_workers(
        set,
        ctx,
        "flink-chain",
        PipelineSettings {
            ingest_cost: options.record_overhead,
            flush_before_commit: false,
            ..Default::default()
        },
    )
}

/// Chained topology with asynchronous scoring I/O: each of the `mp`
/// subtasks keeps up to `async_io` scoring calls in flight on a pool of
/// async workers, so a slow external server no longer serialises the chain.
fn deploy_async_chained(
    ctx: &ProcessorContext,
    set: &mut WorkerSet,
    options: FlinkOptions,
) -> Result<()> {
    use crossbeam::channel::bounded;

    let partitions = ctx.broker.partitions(&ctx.input_topic)?;
    let assignment = Broker::range_assignment(partitions, ctx.mp);
    let capacity = options.async_io.max(1);
    for (i, assigned) in assignment.into_iter().enumerate() {
        // The bounded queue is the async operator's in-flight capacity:
        // the subtask blocks once `capacity` requests are outstanding.
        let (work_tx, work_rx) = bounded::<Bytes>(capacity);

        // The chain itself: a supervised source pump charging the chain's
        // framework cost before the async dispatch. Registered before its
        // workers so stopping joins it first, `work_tx` drops, and the
        // workers exit on disconnect.
        source_pump(
            set,
            ctx,
            format!("flink-chain-async-{i}"),
            assigned,
            PumpSettings {
                ingest_cost: Some(options.record_overhead),
                ..Default::default()
            },
            work_tx,
        )?;

        // Async scoring workers (Flink runs the callbacks on a pool). Once
        // a record leaves the source's commit scope it must not be dropped,
        // so transient scoring failures are retried in place.
        for w in 0..capacity {
            let rx = work_rx.clone();
            let obs = ctx.obs().clone();
            let mut score = ScoreStage::in_place(ctx.scorer.build()?, &obs);
            let producer = Producer::new(
                ctx.broker.clone(),
                &ctx.output_topic,
                ProducerConfig::default(),
            )?;
            let mut sink = ProducerSink::new(producer, &obs);
            set.task(format!("flink-async-{i}-{w}"), move || {
                while let Ok(rec) = rx.recv() {
                    if let Ok(Some(out)) = score.score(&rec) {
                        if sink.emit(out).is_err() {
                            return;
                        }
                    }
                }
            })?;
        }
    }
    Ok(())
}

/// An [`ExchangeSender`] as a source pump's transport: push on deliver,
/// honour the buffer timeout after each poll cycle, drain on shutdown.
struct ExchangeLink(ExchangeSender);

impl RecordSink for ExchangeLink {
    fn deliver(&mut self, value: Bytes) -> std::result::Result<(), SinkClosed> {
        self.0.push(value).map_err(|_| SinkClosed)
    }

    fn after_cycle(&mut self) -> std::result::Result<(), SinkClosed> {
        self.0.maybe_flush().map_err(|_| SinkClosed)
    }

    fn on_stop(&mut self) {
        let _ = self.0.flush();
    }
}

/// Unchained topology: source pumps → exchange → scoring tasks → exchange →
/// sink tasks. Registration order is upstream-first, so stopping joins the
/// sources away, the exchanges drain, and downstream tasks observe
/// end-of-stream.
fn deploy_unchained(
    ctx: &ProcessorContext,
    set: &mut WorkerSet,
    options: FlinkOptions,
) -> Result<()> {
    let partitions = ctx.broker.partitions(&ctx.input_topic)?;
    let op = options.operator_parallelism.unwrap_or(OperatorParallelism {
        source: ctx.mp,
        sink: ctx.mp,
    });
    let sources = op.source.max(1);
    let sinks = op.sink.max(1);
    let scorers = ctx.mp;

    let (score_txs, score_rxs) = channels(scorers, options.channel_capacity);
    let (sink_txs, sink_rxs) = channels(sinks, options.channel_capacity);
    let shipped = ctx.obs().counter("flink_exchange_buffers");

    // The chain's framework cost splits across the now-independent
    // operators (see `calibration::FLINK_SOURCE_SHARE` and friends).
    let source_cost = options
        .record_overhead
        .scaled(calibration::FLINK_SOURCE_SHARE);
    let scoring_cost = options
        .record_overhead
        .scaled(calibration::FLINK_SCORING_SHARE);
    let sink_cost = options
        .record_overhead
        .scaled(calibration::FLINK_SINK_SHARE);

    // Source tasks: supervised pumps whose exchange sender survives across
    // incarnations — only the consumer is rebuilt on restart.
    let assignment = Broker::range_assignment(partitions, sources);
    for (i, assigned) in assignment.into_iter().enumerate() {
        let out = ExchangeSender::new(
            score_txs.clone(),
            options.buffer_bytes,
            options.buffer_timeout,
        )
        .with_counter(shipped.clone());
        source_pump(
            set,
            ctx,
            format!("flink-source-{i}"),
            assigned,
            PumpSettings {
                poll_timeout: Duration::from_millis(10),
                ingest_cost: Some(source_cost),
            },
            ExchangeLink(out),
        )?;
    }
    drop(score_txs);

    // Scoring tasks: past the sources' commit scope, so transient scoring
    // failures retry in place.
    for (i, rx) in score_rxs.into_iter().enumerate() {
        let obs = ctx.obs().clone();
        let mut score = ScoreStage::in_place(ctx.scorer.build()?, &obs);
        let mut out = ExchangeSender::new(
            sink_txs.clone(),
            options.buffer_bytes,
            options.buffer_timeout,
        )
        .with_counter(shipped.clone());
        set.task(format!("flink-score-{i}"), move || {
            loop {
                match recv_buffer(&rx, Duration::from_millis(10)) {
                    Ok(Some(buffer)) => {
                        for rec in buffer {
                            charge_ingest(&obs, scoring_cost, rec.len());
                            if let Ok(Some(scored)) = score.score(&rec) {
                                if out.push(scored).is_err() {
                                    return;
                                }
                            }
                        }
                        if out.maybe_flush().is_err() {
                            return;
                        }
                    }
                    Ok(None) => {
                        if out.maybe_flush().is_err() {
                            return;
                        }
                    }
                    // All sources gone: drain done.
                    Err(_) => break,
                }
            }
            let _ = out.flush();
        })?;
    }
    drop(sink_txs);

    // Sink tasks: the sink operator's cost share is charged inside the
    // kernel sink's `emit` span.
    for (i, rx) in sink_rxs.into_iter().enumerate() {
        let obs = ctx.obs().clone();
        let producer = Producer::new(
            ctx.broker.clone(),
            &ctx.output_topic,
            ProducerConfig::default(),
        )?;
        let mut sink = ProducerSink::with_cost(producer, &obs, sink_cost);
        set.task(format!("flink-sink-{i}"), move || loop {
            match recv_buffer(&rx, Duration::from_millis(50)) {
                Ok(Some(buffer)) => {
                    for rec in buffer {
                        if sink.emit(rec).is_err() {
                            return;
                        }
                    }
                }
                Ok(None) => {}
                Err(_) => return,
            }
        })?;
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    use crayfish_broker::Broker;
    use crayfish_core::batch::testkit::{distinct_ids, drain_scored, feed, onnx_ctx};
    use crayfish_core::chaos::ChaosHandle;
    use crayfish_core::obs::ObsHandle;
    use crayfish_core::scoring::ScorerSpec;
    use crayfish_models::tiny;
    use crayfish_sim::{now_millis_f64, NetworkModel};

    /// Options with the JVM framework cost zeroed, so unit tests measure
    /// only the mechanisms they target.
    fn bare_options() -> FlinkOptions {
        FlinkOptions {
            record_overhead: Cost::ZERO,
            ..Default::default()
        }
    }

    #[test]
    fn unchained_pipeline_repartitions_and_scores_every_batch() {
        // The personality's defining mechanism: records cross two
        // exchanges (source → scoring → sink), every shipped buffer is
        // counted, and repartitioning loses nothing.
        let obs = ObsHandle::enabled();
        let broker = Broker::with_parts(NetworkModel::zero(), obs.clone(), ChaosHandle::disabled());
        let ctx = onnx_ctx(broker.clone(), 8, 2);
        let options = FlinkOptions {
            buffer_timeout: Duration::from_millis(5),
            record_overhead: Cost::ZERO,
            ..FlinkOptions::operator_level(4, 3)
        };
        let job = FlinkProcessor::with_options(options).start(ctx).unwrap();
        feed(broker.as_ref(), "in", 8, 60);
        let scored = drain_scored(broker.as_ref(), "out", 8, 60, Duration::from_secs(10));
        assert_eq!(distinct_ids(&scored).len(), 60);
        assert!(obs.counter("flink_exchange_buffers").get() > 0);
        job.stop();
    }

    #[test]
    fn async_io_scores_everything_exactly_once() {
        let ctx = onnx_ctx(Broker::new(NetworkModel::zero()), 8, 2);
        let broker = ctx.broker.clone();
        let options = FlinkOptions {
            async_io: 4,
            ..bare_options()
        };
        let job = FlinkProcessor::with_options(options).start(ctx).unwrap();
        feed(broker.as_ref(), "in", 8, 50);
        let scored = drain_scored(broker.as_ref(), "out", 8, 50, Duration::from_secs(10));
        assert_eq!(distinct_ids(&scored).len(), 50);
        job.stop();
    }

    #[test]
    fn async_io_overlaps_slow_external_calls() {
        // A server pool with 4 workers and blocking calls from one subtask
        // serialises; async_io = 4 overlaps the calls. Compare wall time to
        // score a fixed backlog.
        let graph = tiny::tiny_mlp(1);
        let server = crayfish_serving::tf_serving::start(
            &graph,
            crayfish_serving::ServingConfig {
                replicas: 4,
                ..Default::default()
            },
        )
        .unwrap();
        // A slow modelled LAN makes each call ~10 ms.
        let slow_net = NetworkModel {
            base_latency_s: 0.005,
            bandwidth_bytes_per_s: f64::INFINITY,
        };
        let mut elapsed = Vec::new();
        for async_io in [0usize, 4] {
            let mut ctx = onnx_ctx(Broker::new(NetworkModel::zero()), 8, 1);
            ctx.scorer = ScorerSpec::External {
                kind: crayfish_serving::ExternalKind::TfServing,
                addr: server.addr(),
                network: slow_net,
            };
            let broker = ctx.broker.clone();
            let options = FlinkOptions {
                async_io,
                ..bare_options()
            };
            let job = FlinkProcessor::with_options(options).start(ctx).unwrap();
            let sw = crayfish_sim::Stopwatch::start();
            feed(broker.as_ref(), "in", 8, 40);
            let scored = drain_scored(broker.as_ref(), "out", 8, 40, Duration::from_secs(10));
            assert_eq!(scored.len(), 40, "async_io={async_io}");
            elapsed.push(sw.elapsed_millis());
            job.stop();
        }
        assert!(
            elapsed[1] < elapsed[0] / 2.0,
            "async {} ms not faster than blocking {} ms",
            elapsed[1],
            elapsed[0]
        );
        server.shutdown();
    }

    #[test]
    fn buffer_timeout_shapes_unchained_latency() {
        // With a long buffer timeout and small records, unchained latency
        // must include the buffering delay.
        let ctx = onnx_ctx(Broker::new(NetworkModel::zero()), 8, 1);
        let broker = ctx.broker.clone();
        let options = FlinkOptions {
            buffer_timeout: Duration::from_millis(120),
            record_overhead: Cost::ZERO,
            ..FlinkOptions::operator_level(1, 1)
        };
        let job = FlinkProcessor::with_options(options).start(ctx).unwrap();
        let start = now_millis_f64();
        feed(broker.as_ref(), "in", 8, 1);
        let scored = drain_scored(broker.as_ref(), "out", 8, 1, Duration::from_secs(10));
        let elapsed = now_millis_f64() - start;
        assert_eq!(scored.len(), 1);
        assert!(elapsed >= 100.0, "buffered latency only {elapsed} ms");
        job.stop();
    }
}
