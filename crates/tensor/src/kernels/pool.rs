//! Pooling kernels.

/// 2-D max pooling over NCHW data with square window `k`, stride `s`, and
/// zero padding `pad` (padded positions are treated as `-inf`, i.e. ignored).
///
/// Returns `([batch, c, oh, ow]` data, `(oh, ow))`. Allocating wrapper over
/// [`maxpool2d_into`].
#[allow(clippy::too_many_arguments)] // a BLAS-style kernel signature: dims are positional by convention
pub fn maxpool2d(
    input: &[f32],
    batch: usize,
    c: usize,
    h: usize,
    w: usize,
    k: usize,
    s: usize,
    pad: usize,
) -> (Vec<f32>, (usize, usize)) {
    let oh = (h + 2 * pad - k) / s + 1;
    let ow = (w + 2 * pad - k) / s + 1;
    let mut out = vec![0.0f32; batch * c * oh * ow];
    maxpool2d_into(input, batch, c, h, w, k, s, pad, &mut out);
    (out, (oh, ow))
}

/// [`maxpool2d`] into a caller-provided buffer (fully overwritten) — the
/// allocation-free form the executors drive from their arenas. Returns
/// `(oh, ow)`.
#[allow(clippy::too_many_arguments)] // a BLAS-style kernel signature: dims are positional by convention
pub fn maxpool2d_into(
    input: &[f32],
    batch: usize,
    c: usize,
    h: usize,
    w: usize,
    k: usize,
    s: usize,
    pad: usize,
    out: &mut [f32],
) -> (usize, usize) {
    let oh = (h + 2 * pad - k) / s + 1;
    let ow = (w + 2 * pad - k) / s + 1;
    assert_eq!(input.len(), batch * c * h * w, "maxpool2d: input length");
    assert_eq!(out.len(), batch * c * oh * ow, "maxpool2d: out length");
    for bc in 0..batch * c {
        let chan = &input[bc * h * w..(bc + 1) * h * w];
        let out_chan = &mut out[bc * oh * ow..(bc + 1) * oh * ow];
        for oy in 0..oh {
            for ox in 0..ow {
                let mut best = f32::NEG_INFINITY;
                for ky in 0..k {
                    let iy = (oy * s + ky) as isize - pad as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    for kx in 0..k {
                        let ix = (ox * s + kx) as isize - pad as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        best = best.max(chan[iy as usize * w + ix as usize]);
                    }
                }
                out_chan[oy * ow + ox] = best;
            }
        }
    }
    (oh, ow)
}

/// Global average pooling: reduce each channel's spatial plane to its mean.
/// `[batch, c, h, w]` → `[batch, c]`. Allocating wrapper over
/// [`avgpool_global_into`].
pub fn avgpool_global(input: &[f32], batch: usize, c: usize, h: usize, w: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; batch * c];
    avgpool_global_into(input, batch, c, h, w, &mut out);
    out
}

/// [`avgpool_global`] into a caller-provided buffer (fully overwritten) —
/// the allocation-free form the executors drive from their arenas.
pub fn avgpool_global_into(
    input: &[f32],
    batch: usize,
    c: usize,
    h: usize,
    w: usize,
    out: &mut [f32],
) {
    assert_eq!(
        input.len(),
        batch * c * h * w,
        "avgpool_global: input length"
    );
    assert_eq!(out.len(), batch * c, "avgpool_global: out length");
    let plane = (h * w) as f32;
    for (bc, slot) in out.iter_mut().enumerate() {
        let chan = &input[bc * h * w..(bc + 1) * h * w];
        *slot = chan.iter().sum::<f32>() / plane;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_2x2_stride2() {
        // One 4x4 channel.
        #[rustfmt::skip]
        let input = vec![
            1.0, 2.0, 5.0, 6.0,
            3.0, 4.0, 7.0, 8.0,
            9.0, 10.0, 13.0, 14.0,
            11.0, 12.0, 15.0, 16.0,
        ];
        let (out, (oh, ow)) = maxpool2d(&input, 1, 1, 4, 4, 2, 2, 0);
        assert_eq!((oh, ow), (2, 2));
        assert_eq!(out, vec![4.0, 8.0, 12.0, 16.0]);
    }

    #[test]
    fn maxpool_with_padding_ignores_border() {
        // 2x2 input, k=3, s=2, pad=1 -> 1x1 output = max of everything.
        let input = vec![1.0, -2.0, 3.0, 0.5];
        let (out, (oh, ow)) = maxpool2d(&input, 1, 1, 2, 2, 3, 2, 1);
        assert_eq!((oh, ow), (1, 1));
        assert_eq!(out, vec![3.0]);
    }

    #[test]
    fn maxpool_resnet_stem_shape() {
        // ResNet50: 112x112, k=3, s=2, p=1 -> 56x56.
        let input = vec![0.0; 64 * 112 * 112];
        let (_, (oh, ow)) = maxpool2d(&input, 1, 64, 112, 112, 3, 2, 1);
        assert_eq!((oh, ow), (56, 56));
    }

    #[test]
    fn avgpool_global_means_channels() {
        // batch=1, c=2, 2x2 planes
        let input = vec![1.0, 2.0, 3.0, 4.0, 10.0, 10.0, 10.0, 10.0];
        let out = avgpool_global(&input, 1, 2, 2, 2);
        assert_eq!(out, vec![2.5, 10.0]);
    }

    #[test]
    fn avgpool_handles_batches() {
        let input = vec![2.0, 4.0, 6.0, 8.0]; // batch=2, c=1, 1x2
        let out = avgpool_global(&input, 2, 1, 1, 2);
        assert_eq!(out, vec![3.0, 7.0]);
    }
}
