//! The partition consumer client.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use crate::api::BrokerApi;
use crate::topic::FetchedRecord;
use crate::Result;

/// A consumer with a static partition assignment (the engines assign
/// partitions to parallel tasks themselves, see
/// [`crate::Broker::range_assignment`]). Fetches long-poll: a `poll` with
/// no data available blocks on the topic's notifier until the deadline.
///
/// The consumer is written against [`BrokerApi`], so the same code fetches
/// from an in-process broker or a remote one over TCP.
#[derive(Debug)]
pub struct PartitionConsumer {
    broker: Arc<dyn BrokerApi>,
    topic: String,
    group: String,
    assigned: Vec<u32>,
    positions: HashMap<u32, u64>,
    next_idx: usize,
    /// Kafka's `max.poll.records`.
    pub max_poll_records: usize,
    /// Fetch response size cap (the paper raises it to 50 MB).
    pub max_fetch_bytes: usize,
    obs: crayfish_obs::ObsHandle,
    /// Long-poll idle time, recorded separately from `broker_fetch`: waiting
    /// for data is not part of any record's latency.
    poll_wait: crayfish_obs::HistHandle,
    fetch_requests: crayfish_obs::Counter,
    chaos: crayfish_chaos::ChaosHandle,
}

impl PartitionConsumer {
    /// Create a consumer over `assigned` partitions of `topic`, starting
    /// from the group's committed offsets (0 if none).
    pub fn new(
        broker: Arc<dyn BrokerApi>,
        topic: &str,
        group: &str,
        assigned: Vec<u32>,
    ) -> Result<PartitionConsumer> {
        let total = broker.partitions(topic)?;
        let mut positions = HashMap::new();
        for &p in &assigned {
            if p >= total {
                return Err(crate::BrokerError::UnknownPartition {
                    topic: topic.to_string(),
                    partition: p,
                });
            }
            positions.insert(p, broker.committed_offset(group, topic, p)?);
        }
        let obs = broker.obs().clone();
        let poll_wait = obs.histogram_ns("broker_poll_wait");
        let fetch_requests = obs.counter("broker_fetch_requests");
        let chaos = broker.chaos().clone();
        Ok(PartitionConsumer {
            broker,
            topic: topic.to_string(),
            group: group.to_string(),
            assigned,
            positions,
            next_idx: 0,
            max_poll_records: 500,
            max_fetch_bytes: 50 * 1024 * 1024,
            obs,
            poll_wait,
            fetch_requests,
            chaos,
        })
    }

    /// The assigned partitions.
    pub fn assignment(&self) -> &[u32] {
        &self.assigned
    }

    /// Fetch available records, blocking up to `max_wait` when none are
    /// available. Returns an empty vector on timeout. One modelled network
    /// hop is paid per non-empty response.
    pub fn poll(&mut self, max_wait: Duration) -> Result<Vec<FetchedRecord>> {
        let deadline = crayfish_sim::now() + max_wait;
        loop {
            // Fault injection: a stalled consumer or a partition-outage
            // window reads as "no data yet" — back off in short slices and
            // re-check until the poll deadline, then time out empty. A
            // deleted topic still surfaces as an error below.
            if self.chaos.consumer_stalled() || self.chaos.topic_unavailable(&self.topic) {
                if crayfish_sim::now() >= deadline {
                    return Ok(Vec::new());
                }
                std::thread::sleep(Duration::from_millis(5).min(max_wait));
                continue;
            }
            let seen = self.broker.topic_version(&self.topic)?;
            // Speculatively time the fetch; cancelled below if it turns out
            // to be an idle scan (no data), so `broker_fetch` only measures
            // work actually done on behalf of records.
            let span = self.obs.timer(crayfish_obs::Stage::BrokerFetch);
            let mut out: Vec<FetchedRecord> = Vec::new();
            let mut bytes = 0usize;
            // Start at a rotating index for fairness across partitions.
            for k in 0..self.assigned.len() {
                if out.len() >= self.max_poll_records || bytes >= self.max_fetch_bytes {
                    break;
                }
                let p = self.assigned[(self.next_idx + k) % self.assigned.len()];
                let offset = self.positions[&p];
                // A transient failure on one partition (outage window, a
                // dropped remote connection) reads as "no data yet" there;
                // the other partitions still serve.
                let recs = match self.broker.read(
                    &self.topic,
                    p,
                    offset,
                    self.max_poll_records - out.len(),
                    self.max_fetch_bytes - bytes,
                ) {
                    Ok(recs) => recs,
                    Err(e) if e.is_transient() => Vec::new(),
                    Err(e) => {
                        span.cancel();
                        return Err(e);
                    }
                };
                if let Some(last) = recs.last() {
                    self.positions.insert(p, last.offset + 1);
                }
                for r in recs {
                    bytes += r.value.len();
                    out.push(r);
                }
            }
            if !self.assigned.is_empty() {
                self.next_idx = (self.next_idx + 1) % self.assigned.len();
            }
            if !out.is_empty() {
                // One fetch response over the wire.
                self.broker.network().transfer(bytes);
                self.fetch_requests.inc();
                span.stop();
                self.probe_recovery();
                return Ok(out);
            }
            span.cancel();
            let now = crayfish_sim::now();
            if now >= deadline {
                self.probe_recovery();
                return Ok(Vec::new());
            }
            let waited = self.poll_wait.start();
            match self.broker.wait_for_data(&self.topic, seen, deadline - now) {
                Ok(_) => {}
                // A transport drop mid-long-poll reads as an empty wait;
                // back off briefly so a dead link does not spin the loop.
                Err(e) if e.is_transient() => {
                    std::thread::sleep(Duration::from_millis(5).min(max_wait))
                }
                Err(e) => return Err(e),
            }
            self.poll_wait.observe_since(waited);
        }
    }

    /// Broker-domain recovery probe: an incident opened by a broker fault
    /// (outage, leader kill, partition isolation) counts as *recovered*
    /// only once this consumer has fully caught up — committed lag back to
    /// zero — not at the first successful poll after the fault window
    /// lifts. MTTR therefore measures time-to-drained-backlog, matching
    /// the paper's recovery definition.
    fn probe_recovery(&self) {
        if self.chaos.recovery_pending() && matches!(self.lag(), Ok(0)) {
            self.chaos.note_success(crayfish_chaos::Domain::Broker);
        }
    }

    /// Commit current positions for this consumer's group. Best-effort
    /// under a failed transport: a commit the broker never saw just means
    /// the committed offset lags and the records are re-read after a
    /// restart — the at-least-once contract holds either way.
    pub fn commit(&self) {
        for (&p, &next) in &self.positions {
            let _ = self.broker.commit_offset(&self.group, &self.topic, p, next);
        }
    }

    /// Current position (next offset to read) of a partition.
    pub fn position(&self, partition: u32) -> Option<u64> {
        self.positions.get(&partition).copied()
    }

    /// Reset a partition's position.
    pub fn seek(&mut self, partition: u32, offset: u64) {
        self.positions.insert(partition, offset);
    }

    /// Lag of this consumer over its assigned partitions.
    pub fn lag(&self) -> Result<u64> {
        let mut lag = 0u64;
        for (&p, &pos) in &self.positions {
            lag += self.broker.end_offset(&self.topic, p)?.saturating_sub(pos);
        }
        Ok(lag)
    }
}

/// A consumer that participates in a broker-coordinated group: partitions
/// are assigned by the group coordinator rather than statically, and every
/// membership change (join/leave) triggers a rebalance.
///
/// On rebalance the consumer drops back to the group's *committed* offsets
/// — uncommitted progress on partitions it loses is re-read by the new
/// owner, preserving the at-least-once resume-from-committed contract. Its
/// commits are generation-fenced: after losing partitions in a rebalance it
/// can no longer clobber the new owner's progress.
#[derive(Debug)]
pub struct GroupConsumer {
    inner: PartitionConsumer,
    broker: Arc<dyn BrokerApi>,
    topic: String,
    group: String,
    member: String,
    generation: u64,
    rebalances: crayfish_obs::Counter,
}

impl GroupConsumer {
    /// Join `group` as `member` and take the coordinator's partition
    /// assignment for `topic`, resuming from committed offsets. Joining
    /// bumps the group generation, so existing members rebalance on their
    /// next poll.
    pub fn join(
        broker: Arc<dyn BrokerApi>,
        topic: &str,
        group: &str,
        member: &str,
    ) -> Result<GroupConsumer> {
        let generation = broker.join_group(group, member)?;
        let assigned = broker.group_assignment(group, topic, member)?;
        let inner = PartitionConsumer::new(broker.clone(), topic, group, assigned)?;
        let rebalances = broker.obs().counter("consumer_rebalances");
        Ok(GroupConsumer {
            inner,
            broker,
            topic: topic.to_string(),
            group: group.to_string(),
            member: member.to_string(),
            generation,
            rebalances,
        })
    }

    /// The generation this member's current assignment belongs to.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The currently assigned partitions.
    pub fn assignment(&self) -> &[u32] {
        self.inner.assignment()
    }

    /// Re-fetch the assignment if the group generation moved on. Returns
    /// whether a rebalance happened.
    fn rebalance_if_needed(&mut self) -> Result<bool> {
        let current = self.broker.group_generation(&self.group)?;
        if current == self.generation {
            return Ok(false);
        }
        // Membership changed under us: rebuild from committed offsets. If
        // another membership change slips in between these two calls the
        // next poll simply rebalances again.
        let assigned = self
            .broker
            .group_assignment(&self.group, &self.topic, &self.member)?;
        self.inner =
            PartitionConsumer::new(self.broker.clone(), &self.topic, &self.group, assigned)?;
        self.generation = self.broker.group_generation(&self.group)?;
        self.rebalances.inc();
        Ok(true)
    }

    /// Fetch available records, rebalancing first if the group membership
    /// changed since the last call.
    pub fn poll(&mut self, max_wait: Duration) -> Result<Vec<FetchedRecord>> {
        self.rebalance_if_needed()?;
        self.inner.poll(max_wait)
    }

    /// Commit current positions, fenced by this member's generation.
    /// Returns `false` (after rebalancing locally) if the commit was
    /// rejected because a rebalance intervened — the caller should re-poll;
    /// the records it had in flight will be re-read from the committed
    /// offsets by whoever now owns those partitions.
    pub fn commit(&mut self) -> Result<bool> {
        let mut offsets = HashMap::new();
        for &p in self.inner.assignment() {
            if let Some(pos) = self.inner.position(p) {
                offsets.insert(p, pos);
            }
        }
        match self.broker.commit_offsets_fenced(
            &self.group,
            &self.topic,
            &self.member,
            self.generation,
            &offsets,
        ) {
            Ok(()) => Ok(true),
            Err(crate::BrokerError::RebalanceInProgress { .. }) => {
                self.rebalance_if_needed()?;
                Ok(false)
            }
            Err(e) => Err(e),
        }
    }

    /// Lag over the currently assigned partitions.
    pub fn lag(&self) -> Result<u64> {
        self.inner.lag()
    }

    /// Leave the group, bumping the generation so remaining members pick up
    /// the freed partitions. Best-effort over a failed transport — a member
    /// that cannot reach the coordinator is rebalanced away regardless.
    pub fn leave(self) {
        let _ = self.broker.leave_group(&self.group, &self.member);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::Broker;
    use bytes::Bytes;
    use crayfish_sim::NetworkModel;

    fn setup() -> (Arc<Broker>, PartitionConsumer) {
        let b = Broker::new(NetworkModel::zero());
        b.create_topic("t", 4).unwrap();
        let c = PartitionConsumer::new(b.clone(), "t", "g", vec![0, 1, 2, 3]).unwrap();
        (b, c)
    }

    #[test]
    fn polls_across_partitions() {
        let (b, mut c) = setup();
        for p in 0..4 {
            b.append("t", p, vec![(Bytes::from(vec![p as u8]), 0.0)])
                .unwrap();
        }
        let mut got = Vec::new();
        while got.len() < 4 {
            let recs = c.poll(Duration::from_millis(100)).unwrap();
            assert!(!recs.is_empty(), "timed out with {} records", got.len());
            got.extend(recs);
        }
        let mut parts: Vec<u32> = got.iter().map(|r| r.partition).collect();
        parts.sort_unstable();
        assert_eq!(parts, vec![0, 1, 2, 3]);
    }

    #[test]
    fn poll_times_out_empty() {
        let (_b, mut c) = setup();
        let sw = crayfish_sim::Stopwatch::start();
        let recs = c.poll(Duration::from_millis(30)).unwrap();
        assert!(recs.is_empty());
        assert!(sw.elapsed_millis() >= 25.0);
    }

    #[test]
    fn long_poll_wakes_on_new_data() {
        let (b, mut c) = setup();
        let b2 = b.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            b2.append("t", 1, vec![(Bytes::from_static(b"x"), 0.0)])
                .unwrap();
        });
        let recs = c.poll(Duration::from_secs(5)).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].partition, 1);
    }

    #[test]
    fn positions_advance_without_rereads() {
        let (b, mut c) = setup();
        b.append(
            "t",
            0,
            vec![
                (Bytes::from_static(b"a"), 0.0),
                (Bytes::from_static(b"b"), 0.0),
            ],
        )
        .unwrap();
        let first = c.poll(Duration::from_millis(50)).unwrap();
        assert_eq!(first.len(), 2);
        let again = c.poll(Duration::from_millis(30)).unwrap();
        assert!(again.is_empty(), "re-read already-consumed records");
        assert_eq!(c.position(0), Some(2));
    }

    #[test]
    fn commit_and_resume_from_committed() {
        let (b, mut c) = setup();
        b.append("t", 0, vec![(Bytes::from_static(b"a"), 0.0)])
            .unwrap();
        c.poll(Duration::from_millis(50)).unwrap();
        c.commit();
        drop(c);
        // A new consumer in the same group resumes after the commit.
        let mut c2 = PartitionConsumer::new(b.clone(), "t", "g", vec![0]).unwrap();
        b.append("t", 0, vec![(Bytes::from_static(b"b"), 0.0)])
            .unwrap();
        let recs = c2.poll(Duration::from_millis(50)).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(&recs[0].value[..], b"b");
    }

    #[test]
    fn lag_reflects_unread_records() {
        let (b, mut c) = setup();
        assert_eq!(c.lag().unwrap(), 0);
        for _ in 0..5 {
            b.append("t", 2, vec![(Bytes::from_static(b"x"), 0.0)])
                .unwrap();
        }
        assert_eq!(c.lag().unwrap(), 5);
        c.poll(Duration::from_millis(50)).unwrap();
        assert_eq!(c.lag().unwrap(), 0);
    }

    #[test]
    fn seek_rewinds() {
        let (b, mut c) = setup();
        b.append("t", 0, vec![(Bytes::from_static(b"a"), 0.0)])
            .unwrap();
        c.poll(Duration::from_millis(50)).unwrap();
        c.seek(0, 0);
        let recs = c.poll(Duration::from_millis(50)).unwrap();
        assert_eq!(recs.len(), 1, "seek should allow re-reading");
    }

    #[test]
    fn rejects_invalid_assignment() {
        let b = Broker::new(NetworkModel::zero());
        b.create_topic("t", 2).unwrap();
        assert!(PartitionConsumer::new(b, "t", "g", vec![0, 5]).is_err());
    }

    #[test]
    fn deleted_topic_surfaces_error() {
        let (b, mut c) = setup();
        b.delete_topic("t").unwrap();
        assert!(c.poll(Duration::from_millis(10)).is_err());
    }

    fn chaos_setup() -> (Arc<Broker>, PartitionConsumer, crayfish_chaos::ChaosHandle) {
        let chaos = crayfish_chaos::ChaosHandle::enabled();
        let b = Broker::with_parts(
            NetworkModel::zero(),
            crayfish_obs::ObsHandle::disabled(),
            chaos.clone(),
        );
        b.create_topic("t", 1).unwrap();
        let c = PartitionConsumer::new(b.clone(), "t", "g", vec![0]).unwrap();
        (b, c, chaos)
    }

    #[test]
    fn stalled_consumer_times_out_then_recovers() {
        let (b, mut c, chaos) = chaos_setup();
        b.append("t", 0, vec![(Bytes::from_static(b"a"), 0.0)])
            .unwrap();
        chaos.set_consumer_stall(true);
        assert!(c.poll(Duration::from_millis(30)).unwrap().is_empty());
        chaos.set_consumer_stall(false);
        let recs = c.poll(Duration::from_millis(500)).unwrap();
        assert_eq!(recs.len(), 1, "records must survive the stall");
    }

    #[test]
    fn catch_up_poll_closes_broker_incident() {
        let (b, mut c, chaos) = chaos_setup();
        for _ in 0..3 {
            b.append("t", 0, vec![(Bytes::from_static(b"a"), 0.0)])
                .unwrap();
        }
        let id = chaos.open_incident(crayfish_chaos::FaultKind::LeaderKill);
        chaos.end_fault(id);
        assert!(chaos.recovery_pending());
        // First poll drains only part of the backlog: incident stays open.
        c.max_poll_records = 1;
        assert_eq!(c.poll(Duration::from_millis(50)).unwrap().len(), 1);
        assert!(
            chaos.recovery_pending(),
            "MTTR must run to lag zero, not first successful poll"
        );
        c.max_poll_records = 500;
        while !c.poll(Duration::from_millis(50)).unwrap().is_empty() {}
        assert!(!chaos.recovery_pending(), "lag hit zero: incident closed");
        let report = chaos.report();
        assert_eq!(report.incidents.len(), 1);
        assert!(report.incidents[0].mttr_ms.is_some());
    }

    #[test]
    fn group_consumers_rebalance_and_resume_from_committed() {
        let b = broker_with_topic(4);
        let mut a = GroupConsumer::join(b.clone(), "t", "g", "a").unwrap();
        assert_eq!(a.assignment(), &[0, 1, 2, 3]);
        for p in 0..4 {
            b.append("t", p, vec![(Bytes::from(vec![p as u8]), 0.0)])
                .unwrap();
        }
        let mut got = 0;
        while got < 4 {
            got += a.poll(Duration::from_millis(100)).unwrap().len();
        }
        assert!(a.commit().unwrap());
        // A second member joins: both rebalance, cover disjoint halves, and
        // resume from the committed offsets (nothing is re-read).
        let mut b2 = GroupConsumer::join(b.clone(), "t", "g", "b").unwrap();
        assert!(a.poll(Duration::from_millis(20)).unwrap().is_empty());
        assert_eq!(a.generation(), 2);
        let mut all: Vec<u32> = a
            .assignment()
            .iter()
            .chain(b2.assignment().iter())
            .copied()
            .collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3]);
        assert!(b2.poll(Duration::from_millis(20)).unwrap().is_empty());
        // New records flow to whichever member owns the partition.
        for p in 0..4 {
            b.append("t", p, vec![(Bytes::from(vec![p as u8]), 0.0)])
                .unwrap();
        }
        let mut seen = 0;
        while seen < 4 {
            seen += a.poll(Duration::from_millis(50)).unwrap().len();
            seen += b2.poll(Duration::from_millis(50)).unwrap().len();
        }
        assert!(a.commit().unwrap());
        assert!(b2.commit().unwrap());
        assert_eq!(b.group_lag("g", "t").unwrap(), 0);
    }

    #[test]
    fn stale_member_commit_is_fenced_not_lost() {
        let b = broker_with_topic(2);
        let mut a = GroupConsumer::join(b.clone(), "t", "g", "a").unwrap();
        for p in 0..2 {
            b.append("t", p, vec![(Bytes::from_static(b"x"), 0.0)])
                .unwrap();
        }
        let mut got = 0;
        while got < 2 {
            got += a.poll(Duration::from_millis(50)).unwrap().len();
        }
        // Membership changes before the commit: the stale-generation commit
        // is fenced (returns false), committed offsets stay put, and the
        // records are re-readable by the new assignment.
        let _b2 = GroupConsumer::join(b.clone(), "t", "g", "b").unwrap();
        assert!(!a.commit().unwrap());
        assert_eq!(b.committed_offset("g", "t", 0), 0);
        assert_eq!(b.group_lag("g", "t").unwrap(), 2);
    }

    #[test]
    fn leaving_member_frees_partitions() {
        let b = broker_with_topic(4);
        let mut a = GroupConsumer::join(b.clone(), "t", "g", "a").unwrap();
        let b2 = GroupConsumer::join(b.clone(), "t", "g", "b").unwrap();
        a.poll(Duration::from_millis(10)).unwrap();
        assert_eq!(a.assignment().len(), 2);
        b2.leave();
        a.poll(Duration::from_millis(10)).unwrap();
        assert_eq!(a.assignment(), &[0, 1, 2, 3], "sole member takes all");
    }

    fn broker_with_topic(partitions: u32) -> Arc<Broker> {
        let b = Broker::new(NetworkModel::zero());
        b.create_topic("t", partitions).unwrap();
        b
    }

    #[test]
    fn outage_reads_as_no_data_not_error() {
        let (b, mut c, chaos) = chaos_setup();
        b.append("t", 0, vec![(Bytes::from_static(b"a"), 0.0)])
            .unwrap();
        chaos.set_topic_outage("t", true);
        assert!(c.poll(Duration::from_millis(30)).unwrap().is_empty());
        chaos.set_topic_outage("t", false);
        let recs = c.poll(Duration::from_millis(500)).unwrap();
        assert_eq!(recs.len(), 1, "records must survive the outage");
    }
}
