use std::time::Instant;
fn main() {
    let t0 = Instant::now();
    let g = crayfish_models::resnet::build(1);
    eprintln!("build: {:?}", t0.elapsed());
    let t0 = Instant::now();
    let mut exec = crayfish_runtime::exec::FusedExec::new(&g).unwrap();
    eprintln!("compile: {:?}", t0.elapsed());
    let input = crayfish_tensor::Tensor::seeded_uniform([1, 3, 224, 224], 1, 0.0, 1.0);
    let t0 = Instant::now();
    let _ = exec.run(&input).unwrap();
    eprintln!("first inference: {:?}", t0.elapsed());
    let t0 = Instant::now();
    let _ = exec.run(&input).unwrap();
    eprintln!("second inference: {:?}", t0.elapsed());
}
