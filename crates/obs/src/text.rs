//! Parser for the Prometheus text exposition format (0.0.4).
//!
//! Deliberately small: it understands exactly what the exporter emits —
//! `name value`, `name{k="v",...} value`, comments, and blank lines — which
//! is also the subset every real Prometheus server accepts. Shared by
//! `crayfish-top` and the integration tests so "the endpoint serves a
//! parseable payload" is checked by the same code an operator would run.

/// One sample line: `name{labels} value`.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    pub name: String,
    pub labels: Vec<(String, String)>,
    pub value: f64,
}

impl Sample {
    /// Value of one label, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Parse a full exposition payload. Returns `Err` with a line-numbered
/// message on the first malformed line; comments and blanks are skipped.
pub fn parse(body: &str) -> Result<Vec<Sample>, String> {
    let mut out = Vec::new();
    for (lineno, line) in body.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        out.push(parse_line(line).map_err(|e| format!("line {}: {e}: {line:?}", lineno + 1))?);
    }
    Ok(out)
}

fn parse_line(line: &str) -> Result<Sample, String> {
    let (name_part, rest) = match line.find('{') {
        Some(brace) => {
            let close = line.rfind('}').ok_or("unterminated label set")?;
            if close < brace {
                return Err("mismatched braces".into());
            }
            (
                (&line[..brace], parse_labels(&line[brace + 1..close])?),
                &line[close + 1..],
            )
        }
        None => {
            let mut it = line.splitn(2, char::is_whitespace);
            let name = it.next().ok_or("empty line")?;
            ((name, Vec::new()), it.next().unwrap_or(""))
        }
    };
    let (name, labels) = name_part;
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    {
        return Err(format!("invalid metric name {name:?}"));
    }
    // Value is the first whitespace-separated token; an optional timestamp
    // may follow it.
    let value_tok = rest
        .split_whitespace()
        .next()
        .ok_or("missing sample value")?;
    let value = parse_value(value_tok)?;
    Ok(Sample {
        name: name.to_string(),
        labels,
        value,
    })
}

fn parse_value(tok: &str) -> Result<f64, String> {
    match tok {
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        _ => tok
            .parse::<f64>()
            .map_err(|_| format!("bad sample value {tok:?}")),
    }
}

fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = body.trim();
    while !rest.is_empty() {
        let eq = rest.find('=').ok_or("label without '='")?;
        let key = rest[..eq].trim().to_string();
        rest = rest[eq + 1..].trim_start();
        if !rest.starts_with('"') {
            return Err("label value not quoted".into());
        }
        // Scan for the closing quote, honouring backslash escapes.
        let mut value = String::new();
        let mut chars = rest[1..].char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, escaped)) => value.push(escaped),
                    None => return Err("dangling escape".into()),
                },
                '"' => {
                    end = Some(i);
                    break;
                }
                _ => value.push(c),
            }
        }
        let end = end.ok_or("unterminated label value")?;
        labels.push((key, value));
        rest = rest[1 + end + 1..].trim_start();
        if let Some(stripped) = rest.strip_prefix(',') {
            rest = stripped.trim_start();
        } else if !rest.is_empty() {
            return Err("expected ',' between labels".into());
        }
    }
    Ok(labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_plain_and_labeled_samples() {
        let body = "\
# HELP crayfish_records_in_total Records ingested.
# TYPE crayfish_records_in_total counter
crayfish_records_in_total 1500

crayfish_stage_latency_seconds_bucket{stage=\"decode\",le=\"0.001\"} 42
crayfish_stage_latency_seconds_bucket{stage=\"decode\",le=\"+Inf\"} 50
crayfish_consumer_lag 7
";
        let samples = parse(body).unwrap();
        assert_eq!(samples.len(), 4);
        assert_eq!(samples[0].name, "crayfish_records_in_total");
        assert_eq!(samples[0].value, 1500.0);
        assert!(samples[0].labels.is_empty());
        assert_eq!(samples[1].label("stage"), Some("decode"));
        assert_eq!(samples[1].label("le"), Some("0.001"));
        assert_eq!(samples[1].value, 42.0);
        assert_eq!(samples[3].name, "crayfish_consumer_lag");
    }

    #[test]
    fn inf_values_and_escapes() {
        let samples = parse("m{le=\"+Inf\"} 9\nweird{k=\"a\\\"b\"} +Inf\n").unwrap();
        assert_eq!(samples[0].label("le"), Some("+Inf"));
        assert_eq!(samples[1].label("k"), Some("a\"b"));
        assert!(samples[1].value.is_infinite());
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse("no_value\n").is_err());
        assert!(parse("bad{unclosed=\"x} 1\n").is_err());
        assert!(parse("name 12abc\n").is_err());
        assert!(parse("sp ace{} 1\n").is_err());
    }

    #[test]
    fn timestamps_are_tolerated() {
        let samples = parse("m 3.5 1712000000\n").unwrap();
        assert_eq!(samples[0].value, 3.5);
    }
}
