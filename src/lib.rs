//! # Crayfish (Rust reproduction)
//!
//! An end-to-end reproduction of *"Crayfish: Navigating the Labyrinth of
//! Machine Learning Inference in Stream Processing Systems"* (EDBT 2024):
//! an extensible benchmarking framework for ML inference over streaming
//! data, together with from-scratch Rust implementations of every substrate
//! the paper's evaluation needs — a Kafka-like broker, four stream
//! processing engines, three embedded inference runtimes, three external
//! serving frameworks, and the two pre-trained models.
//!
//! ## Quick start
//!
//! ```
//! use crayfish::prelude::*;
//! use std::time::Duration;
//!
//! // Flink-style engine, embedded ONNX serving, tiny model, short run.
//! let mut spec = ExperimentSpec::quick(
//!     ModelSpec::TinyMlp,
//!     ServingChoice::Embedded { lib: EmbeddedLib::Onnx, device: Device::Cpu },
//! );
//! spec.duration = Duration::from_millis(800);
//! let result = run_experiment(&FlinkProcessor::new(), &spec).unwrap();
//! assert!(result.consumed > 0);
//! println!("{:.0} events/s, p50 {:.2} ms", result.throughput_eps, result.latency.p50);
//! ```
//!
//! See the `examples/` directory for realistic scenarios and
//! `crates/bench` for the reproduction of every table and figure in the
//! paper's evaluation.

#![forbid(unsafe_code)]

pub use crayfish_broker as broker;
pub use crayfish_chaos as chaos;
pub use crayfish_core as framework;
pub use crayfish_engine_kernel as kernel;
pub use crayfish_flink as flink;
pub use crayfish_kstreams as kstreams;
pub use crayfish_models as models;
pub use crayfish_net as net;
pub use crayfish_obs as obs;
pub use crayfish_ray as ray;
pub use crayfish_runtime as runtime;
pub use crayfish_serving as serving;
pub use crayfish_sim as sim;
pub use crayfish_sparkss as sparkss;
pub use crayfish_tensor as tensor;

pub mod registry;

/// The most common imports for writing experiments.
pub mod prelude {
    pub use crate::registry;
    pub use crayfish_broker::ClusterConfig;
    pub use crayfish_chaos::{ChaosHandle, FaultKind, FaultPlan, RecoveryReport, RetryPolicy};
    pub use crayfish_core::{
        run_experiment, DataProcessor, ExperimentResult, ExperimentSpec, ServingChoice, Workload,
    };
    pub use crayfish_flink::{FlinkOptions, FlinkProcessor};
    pub use crayfish_kstreams::KStreamsProcessor;
    pub use crayfish_models::ModelSpec;
    pub use crayfish_obs::{ObsHandle, Stage};
    pub use crayfish_ray::RayProcessor;
    pub use crayfish_runtime::{Device, EmbeddedLib};
    pub use crayfish_serving::ExternalKind;
    pub use crayfish_sim::NetworkModel;
    pub use crayfish_sparkss::SparkProcessor;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn registry_is_complete() {
        assert_eq!(
            registry::engine_names(),
            ["flink", "kstreams", "sparkss", "ray"]
        );
        for name in registry::engine_names() {
            let p = registry::processor_by_name(name).unwrap();
            assert_eq!(p.name(), name);
        }
        assert!(registry::processor_by_name("storm").is_none());
    }
}
