//! ResNet50 (He et al., CVPR 2016), the paper's large model.
//!
//! Full architecture: a 7×7/2 stem, 3×3/2 max-pool, four stages of
//! bottleneck blocks (3, 4, 6, 3 blocks with widths 64/128/256/512),
//! global average pooling, and a 1000-way classifier. Inputs are
//! 224×224×3 images (NCHW `[3, 224, 224]` here); output is a 1000-class
//! probability vector. Weights are seeded random (content irrelevant for
//! the benchmarked quantity — see §4.1 of the paper).

use std::sync::Arc;

use crayfish_tensor::kernels::conv::Conv2dParams;
use crayfish_tensor::kernels::norm::BnParams;
use crayfish_tensor::{NnGraph, NodeId, Op, Shape, Tensor};

/// Number of output classes (ImageNet).
pub const CLASSES: usize = 1000;
/// Input channels/side.
pub const INPUT_SHAPE: [usize; 3] = [3, 224, 224];

/// Per-stage (block count, bottleneck width) for ResNet50.
const STAGES: [(usize, usize); 4] = [(3, 64), (4, 128), (6, 256), (3, 512)];
/// Bottleneck expansion factor.
const EXPANSION: usize = 4;

/// Builder state threading the seed counter through the graph.
struct Builder {
    g: NnGraph,
    seed: u64,
}

impl Builder {
    fn next_seed(&mut self) -> u64 {
        self.seed = self.seed.wrapping_add(1);
        self.seed
    }

    #[allow(clippy::too_many_arguments)] // mirrors the conv layer's natural parameter list
    fn conv(
        &mut self,
        name: &str,
        x: NodeId,
        in_c: usize,
        out_c: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
    ) -> NodeId {
        let fan_in = in_c * kernel * kernel;
        let seed = self.next_seed();
        let w = Arc::new(Tensor::seeded_he(
            [out_c, in_c, kernel, kernel],
            seed,
            fan_in,
        ));
        self.g.add(
            name,
            Op::Conv2d {
                w,
                b: None,
                params: Conv2dParams {
                    in_c,
                    out_c,
                    kernel,
                    stride,
                    pad,
                },
            },
            vec![x],
        )
    }

    fn bn(&mut self, name: &str, x: NodeId, channels: usize) -> NodeId {
        // Near-identity batch-norm with mild per-channel variation so the
        // op is not numerically trivial; keeps deep activations bounded.
        let seed = self.next_seed();
        let gamma = Tensor::seeded_uniform([channels], seed, 0.9, 1.1).into_data();
        let beta = Tensor::seeded_uniform([channels], seed ^ 0xbeef, -0.05, 0.05).into_data();
        let params = Arc::new(BnParams {
            gamma,
            beta,
            mean: vec![0.0; channels],
            var: vec![1.0; channels],
            eps: 1e-5,
        });
        self.g.add(name, Op::BatchNorm { params }, vec![x])
    }

    fn relu(&mut self, name: &str, x: NodeId) -> NodeId {
        self.g.add(name, Op::Relu, vec![x])
    }

    /// One bottleneck block: 1×1 reduce → 3×3 → 1×1 expand, with a shortcut
    /// (projected by a 1×1 conv when the shape changes).
    fn bottleneck(
        &mut self,
        prefix: &str,
        x: NodeId,
        in_c: usize,
        width: usize,
        stride: usize,
    ) -> NodeId {
        let out_c = width * EXPANSION;
        let c1 = self.conv(&format!("{prefix}.conv1"), x, in_c, width, 1, 1, 0);
        let b1 = self.bn(&format!("{prefix}.bn1"), c1, width);
        let r1 = self.relu(&format!("{prefix}.relu1"), b1);
        let c2 = self.conv(&format!("{prefix}.conv2"), r1, width, width, 3, stride, 1);
        let b2 = self.bn(&format!("{prefix}.bn2"), c2, width);
        let r2 = self.relu(&format!("{prefix}.relu2"), b2);
        let c3 = self.conv(&format!("{prefix}.conv3"), r2, width, out_c, 1, 1, 0);
        let b3 = self.bn(&format!("{prefix}.bn3"), c3, out_c);
        let shortcut = if stride != 1 || in_c != out_c {
            let sc = self.conv(
                &format!("{prefix}.downsample"),
                x,
                in_c,
                out_c,
                1,
                stride,
                0,
            );
            self.bn(&format!("{prefix}.downsample_bn"), sc, out_c)
        } else {
            x
        };
        let sum = self
            .g
            .add(format!("{prefix}.add"), Op::Add, vec![b3, shortcut]);
        self.relu(&format!("{prefix}.relu_out"), sum)
    }
}

/// Build ResNet50 with weights seeded from `seed`.
pub fn build(seed: u64) -> NnGraph {
    let mut b = Builder {
        g: NnGraph::new("resnet50"),
        seed,
    };
    let input = b.g.add(
        "input",
        Op::Input {
            shape: Shape::from(INPUT_SHAPE),
        },
        vec![],
    );
    // Stem.
    let c = b.conv("stem.conv", input, 3, 64, 7, 2, 3);
    let n = b.bn("stem.bn", c, 64);
    let r = b.relu("stem.relu", n);
    let mut x =
        b.g.add("stem.maxpool", Op::MaxPool { k: 3, s: 2, pad: 1 }, vec![r]);
    // Stages.
    let mut in_c = 64;
    for (stage, &(blocks, width)) in STAGES.iter().enumerate() {
        for block in 0..blocks {
            let stride = if stage > 0 && block == 0 { 2 } else { 1 };
            x = b.bottleneck(
                &format!("layer{}.{}", stage + 1, block),
                x,
                in_c,
                width,
                stride,
            );
            in_c = width * EXPANSION;
        }
    }
    // Head.
    let gap = b.g.add("gap", Op::GlobalAvgPool, vec![x]);
    let seed_fc = b.next_seed();
    let w = Arc::new(Tensor::seeded_he([in_c, CLASSES], seed_fc, in_c));
    let bias = Arc::new(Tensor::zeros([CLASSES]));
    let fc = b.g.add("fc", Op::Dense { w, b: bias }, vec![gap]);
    b.g.add("softmax", Op::Softmax, vec![fc]);
    b.g
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// Building ResNet50 materialises ~25 M random weights; share one
    /// instance across the tests.
    fn graph() -> &'static NnGraph {
        static G: OnceLock<NnGraph> = OnceLock::new();
        G.get_or_init(|| build(3))
    }

    #[test]
    fn io_shapes_match_table2() {
        let g = graph();
        assert_eq!(g.input_shape().unwrap().dims(), &[3, 224, 224]);
        assert_eq!(g.output_shape(1).unwrap().dims(), &[1, 1000]);
    }

    #[test]
    fn parameter_count_is_resnet50_scale() {
        let g = graph();
        let params = g.param_count();
        // Canonical ResNet50 has ~25.6 M parameters (the paper's Table 2
        // rounds the conv trunk to "23 M"). Accept the canonical range.
        assert!(
            (23_000_000..27_000_000).contains(&params),
            "params = {params}"
        );
    }

    #[test]
    fn flops_matches_canonical_resnet50() {
        let g = graph();
        let flops = g.flops(1).unwrap();
        // ResNet50 forward pass is canonically ~4.1 GMACs, i.e. ~8.2 GFLOPs
        // counting multiply and add separately (as `NnGraph::flops` does).
        assert!((7.5e9..9.0e9).contains(&(flops as f64)), "flops = {flops}");
    }

    #[test]
    fn intermediate_shapes_follow_the_paper_architecture() {
        let g = graph();
        let shapes = g.infer_shapes(1).unwrap();
        // After the stem max-pool the activation is [1, 64, 56, 56].
        let stem_pool = g
            .nodes()
            .iter()
            .find(|n| n.name == "stem.maxpool")
            .unwrap()
            .id;
        assert_eq!(shapes[stem_pool].dims(), &[1, 64, 56, 56]);
        // Final stage output is [1, 2048, 7, 7].
        let last_relu = g
            .nodes()
            .iter()
            .rfind(|n| n.name.starts_with("layer4") && n.name.ends_with("relu_out"))
            .unwrap()
            .id;
        assert_eq!(shapes[last_relu].dims(), &[1, 2048, 7, 7]);
    }

    #[test]
    fn has_53_convolutions_and_16_blocks() {
        let g = graph();
        let convs = g
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, Op::Conv2d { .. }))
            .count();
        // 1 stem + 16 blocks * 3 + 4 downsample projections = 53.
        assert_eq!(convs, 53);
        let adds = g.nodes().iter().filter(|n| matches!(n.op, Op::Add)).count();
        assert_eq!(adds, 16);
    }
}
